//! Sample-rate conversion for the receiver chain.
//!
//! The processor emits one activity sample per clock cycle (~1 GHz) while
//! the capture rig digitizes at the measurement bandwidth (20–160 MHz).
//! The ratio is rarely an integer (e.g. 1.008 GHz / 40 MHz = 25.2), so the
//! chain needs both integer decimation and fractional resampling. Both are
//! anti-aliased by filtering *before* rate reduction.

use emprof_par::{pool, Parallelism};

use crate::fir;
use crate::window::WindowKind;
use crate::Complex;

/// Decimates a real signal by an integer factor after applying an
/// anti-aliasing lowpass filter.
///
/// The cutoff is placed at `0.45 / factor` of the input rate (slightly
/// inside Nyquist of the output rate) and the filter length scales with the
/// factor so the transition band stays proportionally narrow.
///
/// # Panics
///
/// Panics if `factor == 0`.
///
/// # Example
///
/// ```
/// use emprof_signal::resample;
///
/// let x = vec![1.0; 1000];
/// let y = resample::decimate(&x, 10);
/// assert_eq!(y.len(), 100);
/// assert!((y[50] - 1.0).abs() < 1e-9);
/// ```
pub fn decimate(signal: &[f64], factor: usize) -> Vec<f64> {
    decimate_par(signal, factor, Parallelism::sequential())
}

/// [`decimate`] with the anti-aliasing filter fanned out over a worker
/// pool; output is bit-identical to [`decimate`] for any thread count.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn decimate_par(signal: &[f64], factor: usize, par: Parallelism) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be nonzero");
    if factor == 1 {
        return signal.to_vec();
    }
    let taps = fir::lowpass_cached(
        anti_alias_taps(factor),
        0.45 / factor as f64,
        WindowKind::Blackman,
    );
    let filtered = fir::filter_par(signal, &taps, par);
    filtered.iter().step_by(factor).copied().collect()
}

/// Resamples a real signal by an arbitrary positive rational-ish ratio
/// `out_rate / in_rate`, anti-alias filtering first when the rate is being
/// reduced.
///
/// Output sample `n` is produced by linear interpolation at input position
/// `n * in_rate / out_rate`. Linear interpolation after proper band-limiting
/// introduces negligible error for the smooth envelope signals this crate
/// processes.
///
/// # Panics
///
/// Panics if either rate is not strictly positive.
pub fn resample(signal: &[f64], in_rate: f64, out_rate: f64) -> Vec<f64> {
    resample_par(signal, in_rate, out_rate, Parallelism::sequential())
}

/// [`resample`] with the anti-aliasing filter and the interpolation loop
/// fanned out over a worker pool.
///
/// Output is bit-identical to [`resample`] for any thread count: every
/// output sample is an independent function of the (identically filtered)
/// source signal.
///
/// # Panics
///
/// Panics if either rate is not strictly positive.
pub fn resample_par(
    signal: &[f64],
    in_rate: f64,
    out_rate: f64,
    par: Parallelism,
) -> Vec<f64> {
    assert!(
        in_rate > 0.0 && out_rate > 0.0,
        "sample rates must be positive (got {in_rate}, {out_rate})"
    );
    if signal.is_empty() {
        return Vec::new();
    }
    let ratio = in_rate / out_rate;
    let filtered: Vec<f64>;
    let src: &[f64] = if ratio > 1.0 {
        // Downsampling: band-limit to the output Nyquist first.
        let factor = ratio.ceil() as usize;
        let taps =
            fir::lowpass_cached(anti_alias_taps(factor), 0.45 / ratio, WindowKind::Blackman);
        filtered = fir::filter_par(signal, &taps, par);
        &filtered
    } else {
        signal
    };
    let out_len = ((signal.len() as f64) / ratio).floor() as usize;
    pool::map_ranges(par, out_len, |range| {
        range.map(|n| sample_linear(src, n as f64 * ratio)).collect()
    })
}

/// Linearly interpolates `signal` at a fractional index, clamping to the
/// final sample at the right edge.
fn sample_linear(signal: &[f64], pos: f64) -> f64 {
    let i = pos.floor() as usize;
    if i + 1 >= signal.len() {
        return *signal.last().expect("non-empty checked by caller");
    }
    let frac = pos - i as f64;
    signal[i] * (1.0 - frac) + signal[i + 1] * frac
}

/// Complex variant of [`resample`] for IQ streams.
///
/// # Panics
///
/// Panics if either rate is not strictly positive.
pub fn resample_complex(signal: &[Complex], in_rate: f64, out_rate: f64) -> Vec<Complex> {
    let re: Vec<f64> = signal.iter().map(|c| c.re).collect();
    let im: Vec<f64> = signal.iter().map(|c| c.im).collect();
    let re_out = resample(&re, in_rate, out_rate);
    let im_out = resample(&im, in_rate, out_rate);
    re_out
        .into_iter()
        .zip(im_out)
        .map(|(re, im)| Complex::new(re, im))
        .collect()
}

/// Picks an anti-aliasing filter length appropriate for a decimation factor:
/// longer filters for larger factors so the transition band stays narrow
/// relative to the output Nyquist. Clamped to keep cost bounded.
fn anti_alias_taps(factor: usize) -> usize {
    (16 * factor + 1).clamp(33, 513)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_by_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(decimate(&x, 1), x);
    }

    #[test]
    fn decimate_length() {
        let x = vec![0.0; 1003];
        assert_eq!(decimate(&x, 10).len(), 101); // ceil(1003/10) via step_by
    }

    #[test]
    fn decimate_preserves_dc() {
        let x = vec![2.5; 2000];
        let y = decimate(&x, 25);
        assert!((y[40] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn decimate_removes_aliasing_tone() {
        // A tone just above the output Nyquist must not alias into the output.
        let factor = 8;
        let f = 0.45 / factor as f64 * 2.2; // above output Nyquist at input rate
        let x: Vec<f64> = (0..4000)
            .map(|i| (std::f64::consts::TAU * f * i as f64).sin())
            .collect();
        let y = decimate(&x, factor);
        let peak = y[50..y.len() - 50]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 0.02, "aliased energy {peak}");
    }

    #[test]
    fn fractional_resample_length_and_dc() {
        // 1.008 GHz -> 40 MHz, the paper's Olimex capture ratio (25.2x).
        let x = vec![1.0; 25200];
        let y = resample(&x, 1.008e9, 40e6);
        assert_eq!(y.len(), 1000);
        assert!((y[500] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upsample_interpolates_between_points() {
        let x = vec![0.0, 1.0];
        let y = resample(&x, 1.0, 4.0);
        assert_eq!(y.len(), 8);
        assert!((y[2] - 0.5).abs() < 1e-12); // position 0.5
    }

    #[test]
    fn resample_tracks_slow_feature_position() {
        // A dip at 60% of the signal should remain at 60% after resampling.
        let n = 10000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let d = (i as f64 - 6000.0) / 200.0;
                1.0 - (-d * d).exp()
            })
            .collect();
        let y = resample(&x, 1.0, 1.0 / 7.3);
        let min_idx = y
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let expected = (6000.0 / 7.3) as i64;
        assert!(
            (min_idx as i64 - expected).abs() <= 2,
            "dip at {min_idx}, expected near {expected}"
        );
    }

    #[test]
    fn complex_resample_matches_componentwise() {
        let x: Vec<Complex> = (0..500)
            .map(|i| Complex::new((i as f64 * 0.01).sin(), (i as f64 * 0.013).cos()))
            .collect();
        let y = resample_complex(&x, 10.0, 3.0);
        let re: Vec<f64> = x.iter().map(|c| c.re).collect();
        let yr = resample(&re, 10.0, 3.0);
        assert_eq!(y.len(), yr.len());
        for (a, b) in y.iter().zip(&yr) {
            assert!((a.re - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(resample(&[], 10.0, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        resample(&[1.0], 0.0, 1.0);
    }

    #[test]
    fn parallel_resample_is_bit_exact() {
        let x: Vec<f64> = (0..40_000usize)
            .map(|i| (i as f64 * 0.002).sin() + ((i * 2_654_435_761) % 89) as f64 / 89.0)
            .collect();
        // Downsampling (filter + interpolate) and upsampling (interpolate
        // only), across thread counts.
        for (in_rate, out_rate) in [(1.008e9, 40e6), (1.0, 2.5)] {
            let seq = resample(&x, in_rate, out_rate);
            for threads in [2, 5] {
                let par = resample_par(&x, in_rate, out_rate, Parallelism::new(threads));
                assert_eq!(seq, par, "{in_rate}->{out_rate} threads {threads}");
            }
        }
        let seq = decimate(&x, 25);
        assert_eq!(seq, decimate_par(&x, 25, Parallelism::new(3)));
    }
}
