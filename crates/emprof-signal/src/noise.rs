//! Noise sources for the synthetic capture rig.
//!
//! A real near-field capture contains thermal noise from the probe and
//! front-end amplifiers plus ambient interference. The reproduction models
//! the aggregate as additive white Gaussian noise (AWGN) at a configurable
//! SNR, which is the standard channel abstraction for this kind of
//! narrow-band receiver.

use crate::Complex;
use rand::Rng;

/// A Gaussian (normal) random source built on the Box–Muller transform.
///
/// Implemented locally so the crate only depends on `rand`'s uniform
/// generator, keeping the noise model self-contained and reproducible from
/// a seed.
#[derive(Debug, Clone)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
    cached: Option<f64>,
}

impl Gaussian {
    /// Creates a Gaussian source with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        Gaussian {
            mean,
            std_dev,
            cached: None,
        }
    }

    /// A standard normal source (mean 0, standard deviation 1).
    pub fn standard() -> Self {
        Gaussian::new(0.0, 1.0)
    }

    /// Draws one sample using the supplied RNG.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let (s, c) = theta.sin_cos();
        self.cached = Some(r * s);
        self.mean + self.std_dev * r * c
    }

    /// Draws one complex sample with independent real/imaginary components,
    /// each with the configured standard deviation.
    pub fn sample_complex<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Complex {
        Complex::new(self.sample(rng), self.sample(rng))
    }
}

/// Adds complex AWGN to an IQ signal at a given signal-to-noise ratio.
///
/// The signal power is measured from the samples themselves (mean of
/// `|x|^2`); the per-component noise standard deviation is then set so the
/// total complex-noise power is `signal_power / 10^(snr_db / 10)`. A signal
/// of all zeros is returned unchanged (its SNR is undefined).
pub fn add_awgn_complex<R: Rng + ?Sized>(
    signal: &mut [Complex],
    snr_db: f64,
    rng: &mut R,
) {
    let power: f64 =
        signal.iter().map(|c| c.norm_sqr()).sum::<f64>() / signal.len().max(1) as f64;
    if power == 0.0 {
        return;
    }
    let noise_power = power / 10f64.powf(snr_db / 10.0);
    // Complex noise power splits evenly between I and Q.
    let sigma = (noise_power / 2.0).sqrt();
    let mut g = Gaussian::new(0.0, sigma);
    for s in signal {
        *s += g.sample_complex(rng);
    }
}

/// Adds real AWGN to a real signal at a given signal-to-noise ratio;
/// see [`add_awgn_complex`] for the power convention.
pub fn add_awgn<R: Rng + ?Sized>(signal: &mut [f64], snr_db: f64, rng: &mut R) {
    let power: f64 = signal.iter().map(|v| v * v).sum::<f64>() / signal.len().max(1) as f64;
    if power == 0.0 {
        return;
    }
    let sigma = (power / 10f64.powf(snr_db / 10.0)).sqrt();
    let mut g = Gaussian::new(0.0, sigma);
    for s in signal {
        *s += g.sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gaussian::new(3.0, 2.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn gaussian_is_deterministic_from_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            let mut g = Gaussian::standard();
            (0..10).map(|_| g.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            let mut g = Gaussian::standard();
            (0..10).map(|_| g.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn awgn_hits_requested_snr() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean: Vec<Complex> = vec![Complex::new(1.0, 0.0); 100_000];
        let mut noisy = clean.clone();
        add_awgn_complex(&mut noisy, 20.0, &mut rng);
        let noise_power: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / clean.len() as f64;
        // Signal power is 1.0, so at 20 dB noise power should be 0.01.
        assert!((noise_power - 0.01).abs() < 0.001, "noise power {noise_power}");
    }

    #[test]
    fn awgn_on_zero_signal_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = vec![Complex::ZERO; 100];
        add_awgn_complex(&mut x, 10.0, &mut rng);
        assert!(x.iter().all(|c| *c == Complex::ZERO));
    }

    #[test]
    fn real_awgn_snr() {
        let mut rng = StdRng::seed_from_u64(9);
        let clean = vec![2.0; 100_000];
        let mut noisy = clean.clone();
        add_awgn(&mut noisy, 10.0, &mut rng);
        let noise_power: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / clean.len() as f64;
        // Signal power 4.0, SNR 10 dB -> noise power 0.4.
        assert!((noise_power - 0.4).abs() < 0.02, "noise power {noise_power}");
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_sigma_panics() {
        Gaussian::new(0.0, -1.0);
    }
}
