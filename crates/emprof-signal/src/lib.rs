//! DSP substrate for the EMPROF reproduction.
//!
//! The EMPROF paper (Dey et al., MICRO 2018) receives EM emanations with a
//! near-field probe, down-converts them around the processor clock frequency,
//! band-limits them to a measurement bandwidth, and analyzes the resulting
//! magnitude signal. This crate provides the signal-processing building
//! blocks that the rest of the reproduction is built on:
//!
//! * [`Complex`] — complex (IQ) baseband samples,
//! * [`fir`] — windowed-sinc FIR filter design and application,
//! * [`resample`] — anti-aliased decimation and fractional resampling,
//! * [`noise`] — additive white Gaussian noise sources,
//! * [`stats`] — O(n) moving minimum/maximum/average used by EMPROF's
//!   normalization stage,
//! * [`fused`] — the one-pass fused normalize-and-detect kernel the
//!   detector hot path runs on,
//! * [`fft`] and [`stft`] — radix-2 FFT and short-time Fourier transform for
//!   the Spectral-Profiling-style code attribution.
//!
//! Everything here is implemented from scratch (no external DSP crates) so
//! that the whole receiver chain is auditable against the paper's
//! description.
//!
//! # Example
//!
//! ```
//! use emprof_signal::{fir, stats};
//!
//! // Band-limit a signal the way the measurement bandwidth limits the
//! // EM capture, then normalize it with a moving min/max as EMPROF does.
//! let signal: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin().abs()).collect();
//! let taps = fir::lowpass(63, 0.1);
//! let filtered = fir::filter(&signal, &taps);
//! let norm = stats::normalize_moving_minmax(&filtered, 200);
//! assert_eq!(norm.len(), filtered.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod fft;
pub mod fir;
pub mod fused;
pub mod noise;
pub mod resample;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
