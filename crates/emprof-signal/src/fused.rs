//! Fused one-pass normalization + dip-run detection.
//!
//! EMPROF's practicality rests on keeping up with tens of millions of EM
//! samples per second; the multi-pass pipeline in [`crate::stats`]
//! (moving min, moving max, normalize, then a threshold scan downstream)
//! reads the signal four times and materializes three intermediate
//! vectors. This module fuses all of it into a single pass: both
//! monotonic wedges advance together, each sample is normalized inline
//! the moment its centered window is complete, and the below-level runs
//! the detector needs are emitted directly — no intermediate vector is
//! written unless the caller explicitly asks for the normalized signal.
//!
//! The output is **bit-identical** to the multi-pass reference: the
//! wedges admit and evict in the same order as
//! [`stats::moving_min_range`](crate::stats::moving_min_range) /
//! [`stats::moving_max_range`](crate::stats::moving_max_range), and the
//! normalization expression is character-for-character the one in
//! [`stats::normalize_moving_minmax`](crate::stats::normalize_moving_minmax).
//! `tests/prop_fused.rs` property-checks this equivalence.
//!
//! The pass also carries the detector's finite-sample admission check:
//! every sample it reads is verified finite *as it enters the wedges*
//! (each sample enters exactly once), so callers no longer need a
//! separate whole-signal pre-scan to know a signal is clean — the
//! overwhelmingly common case costs zero extra reads, and a dirty signal
//! is reported via `Err` with the offending index so the caller can fall
//! back to its sanitize-and-retry path.

use std::collections::VecDeque;

/// Below-level runs found by one fused pass, each as `(start, end)` in
/// **global** signal coordinates (half-open, `end` exclusive).
///
/// The two lists are independent level scans over the same normalized
/// values: `below_threshold` holds the maximal runs where the normalized
/// sample is `< threshold` (the detector's dip candidates), `below_edge`
/// the maximal runs where it is `< edge_level` (the context edge
/// refinement widens dips into). When `threshold <= edge_level` — the
/// invariant EMPROF's configuration validation enforces — every
/// below-threshold run lies inside some below-edge run, which is what
/// lets edge refinement run from these run lists alone, without the
/// normalized signal ever being materialized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelRuns {
    /// Maximal runs of normalized samples `< threshold`.
    pub below_threshold: Vec<(usize, usize)>,
    /// Maximal runs of normalized samples `< edge_level`.
    pub below_edge: Vec<(usize, usize)>,
}

/// One-pass fused normalize + run detection over the whole signal.
///
/// Equivalent to `normalize_moving_minmax(signal, window)` followed by
/// threshold scans at `threshold` and `edge_level`, but reads the signal
/// once and allocates nothing of the signal's size.
///
/// # Errors
///
/// Returns `Err(i)` when `signal[i]` is the first non-finite sample
/// (NaN, ±inf) the pass reads; over the full signal every sample is
/// read, so `Ok` proves the signal clean. Any partially produced state
/// is discarded.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn detect_runs(
    signal: &[f64],
    window: usize,
    threshold: f64,
    edge_level: f64,
) -> Result<LevelRuns, usize> {
    detect_runs_range(signal, window, threshold, edge_level, 0, signal.len(), None)
}

/// [`detect_runs`] restricted to output positions `[start, end)`, with
/// optional materialization of the normalized signal.
///
/// Each output position is normalized against the same centered window
/// *into the full signal* as the full pass would use, so the emitted
/// runs are exactly the full pass's runs clipped to `[start, end)` (a
/// run crossing a range boundary is reported truncated at it) — the
/// chunk-equivalence property the parallel detector stitches on. Runs
/// are in global coordinates.
///
/// When `norm_out` is `Some`, the normalized value of every position in
/// `[start, end)` is appended to it (the vector is not cleared), giving
/// bit-identical output to
/// [`stats::normalize_moving_minmax_range`](crate::stats::normalize_moving_minmax_range).
///
/// # Errors
///
/// Returns `Err(i)` on the first non-finite sample read. The pass reads
/// exactly the samples some window in the range covers:
/// `[start - window/2, end + window/2)` clipped to the signal. On `Err`,
/// `norm_out` may hold partial output; callers that retry must truncate
/// it back themselves.
///
/// # Panics
///
/// Panics if `window == 0` or `start..end` is not a valid range into the
/// signal.
pub fn detect_runs_range(
    signal: &[f64],
    window: usize,
    threshold: f64,
    edge_level: f64,
    start: usize,
    end: usize,
    norm_out: Option<&mut Vec<f64>>,
) -> Result<LevelRuns, usize> {
    detect_runs_range_gated(signal, window, threshold, edge_level, 0.0, start, end, norm_out)
}

/// [`detect_runs_range`] with a **contrast gate**: windows whose dynamic
/// range (`max - min`) does not exceed `min_range` are treated as flat
/// and normalize to `1.0` ("fully busy"), exactly like a constant
/// window. With `min_range == 0.0` this is bit-identical to the ungated
/// pass (`hi - lo > 0.0` iff `hi > lo` for finite samples).
///
/// The gate is what lets the adaptive detector suppress noise-floor
/// false positives: when the probe has drifted far enough that a window
/// contains no dip, its range is pure receiver noise; min/max
/// normalization would stretch that noise across `[0, 1]` and the
/// threshold scan would read the lower tail as dips. A gate slightly
/// below the recent dip-contrast estimate flattens exactly those
/// windows while leaving true dip windows (whose range carries the dip
/// contrast) untouched.
///
/// # Errors / Panics
///
/// Identical to [`detect_runs_range`].
#[allow(clippy::too_many_arguments)]
pub fn detect_runs_range_gated(
    signal: &[f64],
    window: usize,
    threshold: f64,
    edge_level: f64,
    min_range: f64,
    start: usize,
    end: usize,
    mut norm_out: Option<&mut Vec<f64>>,
) -> Result<LevelRuns, usize> {
    assert!(window > 0, "window must be nonzero");
    let n = signal.len();
    assert!(
        start <= end && end <= n,
        "range {start}..{end} out of bounds for length {n}"
    );
    let mut runs = LevelRuns::default();
    if start == end {
        return Ok(runs);
    }
    let half = window / 2;
    let last = n - 1;
    // Monotonic wedges over (index, value): values are stored alongside
    // indices so wedge maintenance never re-reads the signal. Bounded by
    // the window length, so the pass allocates O(window), not O(n).
    let mut min_wedge: VecDeque<(usize, f64)> = VecDeque::with_capacity(window.min(n) + 1);
    let mut max_wedge: VecDeque<(usize, f64)> = VecDeque::with_capacity(window.min(n) + 1);
    let mut right = start.saturating_sub(half); // next index to admit
    // Prime both wedges with the first admitted sample so the hot loop
    // can keep each wedge's front entry cached in locals (`min_front`,
    // `max_front`) instead of going through the ring buffer every
    // iteration; the wedges are non-empty from here on (eviction only
    // removes samples that left the window, and the window always holds
    // at least the output sample itself).
    let v0 = signal[right];
    if !v0.is_finite() {
        return Err(right);
    }
    min_wedge.push_back((right, v0));
    max_wedge.push_back((right, v0));
    let mut min_front = (right, v0);
    let mut max_front = (right, v0);
    right += 1;
    let mut th_start: Option<usize> = None;
    let mut ed_start: Option<usize> = None;
    for (off, &v_i) in signal[start..end].iter().enumerate() {
        let i = start + off;
        // Admit every sample the window centered on `i` can see. Each
        // sample is admitted exactly once — this is where it is read,
        // and where it is checked finite.
        let win_end = (i + half).min(last);
        while right <= win_end {
            let v = signal[right];
            if !v.is_finite() {
                return Err(right);
            }
            if v <= min_front.1 {
                // New window minimum: the pop loop below would drain the
                // whole wedge (every stored value is >= the front's), so
                // collapse it in one step and refresh the cached front.
                min_wedge.clear();
                min_wedge.push_back((right, v));
                min_front = (right, v);
            } else {
                while min_wedge.back().is_some_and(|&(_, b)| v <= b) {
                    min_wedge.pop_back();
                }
                min_wedge.push_back((right, v));
            }
            if v >= max_front.1 {
                max_wedge.clear();
                max_wedge.push_back((right, v));
                max_front = (right, v);
            } else {
                while max_wedge.back().is_some_and(|&(_, b)| v >= b) {
                    max_wedge.pop_back();
                }
                max_wedge.push_back((right, v));
            }
            right += 1;
        }
        // Evict entries that fell out of the window, then normalize
        // inline — the same expression as `normalize_moving_minmax`.
        // Only the cached fronts are consulted on the no-eviction path.
        let win_start = i.saturating_sub(half);
        while min_front.0 < win_start {
            min_wedge.pop_front();
            min_front = *min_wedge.front().expect("window always non-empty");
        }
        while max_front.0 < win_start {
            max_wedge.pop_front();
            max_front = *max_wedge.front().expect("window always non-empty");
        }
        let lo = min_front.1;
        let hi = max_front.1;
        let v = v_i;
        // `hi - lo > 0.0` is exactly `hi > lo` for finite samples, so the
        // ungated (`min_range == 0.0`) pass matches `normalize_moving_minmax`
        // bit for bit.
        let normalized = if hi - lo > min_range {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        if let Some(out) = norm_out.as_deref_mut() {
            out.push(normalized);
        }
        // Run bookkeeping for both levels.
        if normalized < threshold {
            if th_start.is_none() {
                th_start = Some(i);
            }
        } else if let Some(s) = th_start.take() {
            runs.below_threshold.push((s, i));
        }
        if normalized < edge_level {
            if ed_start.is_none() {
                ed_start = Some(i);
            }
        } else if let Some(s) = ed_start.take() {
            runs.below_edge.push((s, i));
        }
    }
    if let Some(s) = th_start {
        runs.below_threshold.push((s, end));
    }
    if let Some(s) = ed_start {
        runs.below_edge.push((s, end));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::normalize_moving_minmax;

    /// The multi-pass reference: normalize, then scan runs at `level`.
    fn reference_runs(norm: &[f64], level: f64) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &v) in norm.iter().enumerate() {
            if v < level {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                runs.push((s, i));
            }
        }
        if let Some(s) = start {
            runs.push((s, norm.len()));
        }
        runs
    }

    fn test_signal(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let drift = 1.0 + 0.1 * (i as f64 * 1e-3).sin();
                let noise = ((i * 2_654_435_761_usize) % 1000) as f64 / 2500.0;
                let dip = if i % 97 < 7 { 0.15 } else { 1.0 };
                5.0 * drift * dip + noise
            })
            .collect()
    }

    #[test]
    fn fused_matches_multi_pass_reference() {
        let signal = test_signal(2_000);
        for window in [1, 2, 3, 16, 64, 401, 1999, 5000] {
            let norm = normalize_moving_minmax(&signal, window);
            let mut fused_norm = Vec::new();
            let runs = detect_runs_range(
                &signal,
                window,
                0.35,
                0.5,
                0,
                signal.len(),
                Some(&mut fused_norm),
            )
            .expect("clean signal");
            assert_eq!(fused_norm, norm, "window {window}");
            assert_eq!(runs.below_threshold, reference_runs(&norm, 0.35));
            assert_eq!(runs.below_edge, reference_runs(&norm, 0.5));
        }
    }

    #[test]
    fn range_outputs_clip_the_full_runs() {
        let signal = test_signal(1_500);
        let window = 120;
        let full_norm = normalize_moving_minmax(&signal, window);
        for (start, end) in [(0, 1500), (0, 1), (1499, 1500), (250, 901), (700, 700)] {
            let mut norm = Vec::new();
            let runs = detect_runs_range(
                &signal,
                window,
                0.35,
                0.5,
                start,
                end,
                Some(&mut norm),
            )
            .expect("clean signal");
            assert_eq!(norm, full_norm[start..end], "range {start}..{end}");
            // Runs over the range are the reference runs of the slice,
            // shifted into global coordinates.
            let expect = |level: f64| -> Vec<(usize, usize)> {
                reference_runs(&full_norm[start..end], level)
                    .into_iter()
                    .map(|(s, e)| (s + start, e + start))
                    .collect()
            };
            assert_eq!(runs.below_threshold, expect(0.35), "range {start}..{end}");
            assert_eq!(runs.below_edge, expect(0.5), "range {start}..{end}");
        }
    }

    #[test]
    fn flat_signal_has_no_runs() {
        // Flat windows normalize to 1.0 ("busy"), never below a level.
        let runs = detect_runs(&[4.2; 300], 16, 0.35, 0.5).expect("clean");
        assert!(runs.below_threshold.is_empty());
        assert!(runs.below_edge.is_empty());
    }

    #[test]
    fn all_dip_signal_is_one_run() {
        // A lone spike makes everything else the window floor.
        let mut signal = vec![0.1; 200];
        signal[100] = 50.0;
        let runs = detect_runs(&signal, 500, 0.35, 0.5).expect("clean");
        assert_eq!(runs.below_threshold, vec![(0, 100), (101, 200)]);
        assert_eq!(runs.below_edge, vec![(0, 100), (101, 200)]);
    }

    #[test]
    fn non_finite_sample_reports_its_index() {
        let mut signal = test_signal(500);
        signal[317] = f64::NAN;
        assert_eq!(detect_runs(&signal, 64, 0.35, 0.5), Err(317));
        signal[317] = f64::INFINITY;
        assert_eq!(detect_runs(&signal, 64, 0.35, 0.5), Err(317));
        // A range whose windows never read index 317 does not see it.
        signal[317] = f64::NAN;
        assert!(detect_runs_range(&signal, 64, 0.35, 0.5, 0, 200, None).is_ok());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(detect_runs(&[], 8, 0.35, 0.5), Ok(LevelRuns::default()));
        let signal = test_signal(100);
        assert_eq!(
            detect_runs_range(&signal, 8, 0.35, 0.5, 40, 40, None),
            Ok(LevelRuns::default())
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = detect_runs(&[1.0], 0, 0.35, 0.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_range_panics() {
        let _ = detect_runs_range(&[1.0, 2.0], 3, 0.35, 0.5, 1, 5, None);
    }
}
