//! Moving statistics used by EMPROF's normalization stage.
//!
//! Section IV of the paper: *"EMPROF compensates for these effects by
//! tracking a moving minimum and maximum of the signal's magnitude and
//! using them to normalize the signal's magnitude to a range between 0
//! ... and 1"*. The moving extrema here use the monotonic-wedge algorithm,
//! so normalizing an `n`-sample capture costs O(n) regardless of window
//! length — essential because captures run to tens of millions of samples.

use std::collections::VecDeque;

/// Sliding-window minimum of a signal, centered on each sample.
///
/// For sample `i` the window covers `[i - w/2, i + w/2]` clipped to the
/// signal bounds, where `w = window`. Centered windows keep the normalized
/// signal aligned with the raw signal, which matters when converting
/// detected dip positions back to cycle timestamps.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_min(signal: &[f64], window: usize) -> Vec<f64> {
    moving_min_range(signal, window, 0, signal.len())
}

/// Sliding-window maximum; see [`moving_min`] for window conventions.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_max(signal: &[f64], window: usize) -> Vec<f64> {
    moving_max_range(signal, window, 0, signal.len())
}

/// [`moving_min`] restricted to output positions `[start, end)`.
///
/// Each output still sees the same centered window *into the full
/// signal* as [`moving_min`] would, so the result equals the
/// corresponding slice of the full computation — the property the
/// parallel chunked normalizer relies on (each chunk reads up to
/// `window / 2` samples beyond its core range, its overlap margin).
///
/// # Panics
///
/// Panics if `window == 0` or `start..end` is not a valid range into the
/// signal.
pub fn moving_min_range(signal: &[f64], window: usize, start: usize, end: usize) -> Vec<f64> {
    moving_extreme_range(signal, window, |a, b| a <= b, start, end)
}

/// [`moving_max`] restricted to output positions `[start, end)`; see
/// [`moving_min_range`].
///
/// # Panics
///
/// Panics if `window == 0` or `start..end` is not a valid range into the
/// signal.
pub fn moving_max_range(signal: &[f64], window: usize, start: usize, end: usize) -> Vec<f64> {
    moving_extreme_range(signal, window, |a, b| a >= b, start, end)
}

/// Shared monotonic-wedge implementation: `keep(a, b)` returns true when
/// `a` should survive `b` arriving behind it in the deque.
fn moving_extreme_range(
    signal: &[f64],
    window: usize,
    keep: fn(f64, f64) -> bool,
    start: usize,
    end: usize,
) -> Vec<f64> {
    assert!(window > 0, "window must be nonzero");
    let n = signal.len();
    assert!(
        start <= end && end <= n,
        "range {start}..{end} out of bounds for length {n}"
    );
    let mut out = Vec::with_capacity(end - start);
    if start == end {
        return out;
    }
    let half = window / 2;
    // Deque of indices with monotone values.
    let mut dq: VecDeque<usize> = VecDeque::new();
    let mut right = start.saturating_sub(half); // next index to admit
    for i in start..end {
        let win_end = (i + half).min(n - 1);
        let win_start = i.saturating_sub(half);
        while right <= win_end {
            while let Some(&back) = dq.back() {
                if keep(signal[right], signal[back]) {
                    dq.pop_back();
                } else {
                    break;
                }
            }
            dq.push_back(right);
            right += 1;
        }
        while let Some(&front) = dq.front() {
            if front < win_start {
                dq.pop_front();
            } else {
                break;
            }
        }
        out.push(signal[*dq.front().expect("window always non-empty")]);
    }
    out
}

/// Centered moving average with the same window conventions as
/// [`moving_min`]. Edge windows are truncated (averaged over fewer
/// samples), not zero-padded.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be nonzero");
    let n = signal.len();
    let half = window / 2;
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in signal {
        prefix.push(prefix.last().unwrap() + v);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            (prefix[hi + 1] - prefix[lo]) / (hi + 1 - lo) as f64
        })
        .collect()
}

/// Normalizes a signal to `[0, 1]` with moving min/max, exactly as EMPROF's
/// first processing step (Section IV of the paper).
///
/// Wherever the moving maximum equals the moving minimum (a perfectly flat
/// stretch) the output is defined as `1.0`: a window with no dynamic range
/// contains no dip, so flat stretches read as "busy" and can never cross
/// the detector's dip threshold. Values are clamped to `[0, 1]` to guard
/// against floating-point wobble at the window edges.
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// # Example
///
/// ```
/// use emprof_signal::stats::normalize_moving_minmax;
///
/// // A signal with a gain change: normalization makes both halves comparable.
/// let mut x = vec![1.0; 100];
/// x.extend(vec![0.2; 5]);  // a dip
/// x.extend(vec![1.0; 100]);
/// let norm = normalize_moving_minmax(&x, 80);
/// assert!(norm[102] < 0.2);        // dip bottom near 0
/// assert!(norm[80] > 0.8);         // busy level near 1 where the window sees the dip
/// ```
pub fn normalize_moving_minmax(signal: &[f64], window: usize) -> Vec<f64> {
    normalize_moving_minmax_range(signal, window, 0, signal.len())
}

/// [`normalize_moving_minmax`] restricted to output positions
/// `[start, end)`.
///
/// Every output sample is normalized against the same centered
/// moving-extrema windows into the *full* signal, so the result is
/// bit-identical to the corresponding slice of
/// [`normalize_moving_minmax`] — concatenating the outputs of a disjoint
/// range partition reconstructs the full normalization exactly. This is
/// the chunk-equivalence primitive of the parallel detector.
///
/// # Panics
///
/// Panics if `window == 0` or `start..end` is not a valid range into the
/// signal.
pub fn normalize_moving_minmax_range(
    signal: &[f64],
    window: usize,
    start: usize,
    end: usize,
) -> Vec<f64> {
    let lo = moving_min_range(signal, window, start, end);
    let hi = moving_max_range(signal, window, start, end);
    signal[start..end]
        .iter()
        .zip(lo.iter().zip(&hi))
        .map(|(&v, (&lo, &hi))| {
            if hi > lo {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                1.0
            }
        })
        .collect()
}

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Used by detectors and reports for single-pass statistics over streams
/// that are too large to buffer.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the running statistics.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_min(signal: &[f64], window: usize) -> Vec<f64> {
        let half = window / 2;
        (0..signal.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half).min(signal.len() - 1);
                signal[lo..=hi].iter().cloned().fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn moving_min_matches_brute_force() {
        let signal: Vec<f64> = (0..200)
            .map(|i| ((i * 7919) % 100) as f64 / 10.0 - 5.0)
            .collect();
        for window in [1, 2, 3, 7, 16, 64, 199, 500] {
            assert_eq!(
                moving_min(&signal, window),
                brute_min(&signal, window),
                "window {window}"
            );
        }
    }

    #[test]
    fn moving_max_is_negated_min() {
        let signal: Vec<f64> = (0..150).map(|i| ((i * 31) % 17) as f64).collect();
        let neg: Vec<f64> = signal.iter().map(|v| -v).collect();
        let max = moving_max(&signal, 11);
        let min_neg = moving_min(&neg, 11);
        for (a, b) in max.iter().zip(&min_neg) {
            assert_eq!(*a, -*b);
        }
    }

    #[test]
    fn moving_average_of_constant() {
        let avg = moving_average(&[3.0; 50], 9);
        assert!(avg.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_centered_on_step() {
        let mut x = vec![0.0; 20];
        x.extend(vec![1.0; 20]);
        let avg = moving_average(&x, 10);
        // Exactly at the step the centered window covers ~half ones.
        assert!((avg[20] - 0.5454).abs() < 0.1);
        assert!(avg[5] < 0.01);
        assert!(avg[35] > 0.99);
    }

    #[test]
    fn normalize_flat_signal_is_no_dip() {
        // A zero-range window carries no dip information; it must read
        // as fully busy (1.0), never as a threshold-crossing value.
        let norm = normalize_moving_minmax(&[4.2; 30], 8);
        assert!(norm.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn normalize_step_signal_flat_plateaus_are_busy() {
        // Step signal: windows that straddle the step normalize against
        // real range; windows entirely inside a plateau are flat and
        // must yield 1.0.
        let mut x = vec![2.0; 40];
        x.extend(vec![6.0; 40]);
        let norm = normalize_moving_minmax(&x, 8);
        // Deep inside each plateau the window is flat.
        assert_eq!(norm[10], 1.0);
        assert_eq!(norm[70], 1.0);
        // Just below the step the sample sits at the local floor.
        assert!(norm[39] < 0.5);
        // Just above the step the sample sits at the local ceiling.
        assert!(norm[40] > 0.5);
        assert!(norm.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn normalize_tracks_gain_change() {
        // Same dip shape under 1x and 3x gain should normalize the same.
        let dip = |gain: f64| -> Vec<f64> {
            let mut v = vec![gain; 200];
            for x in v.iter_mut().take(110).skip(100) {
                *x = gain * 0.1;
            }
            v
        };
        let a = normalize_moving_minmax(&dip(1.0), 150);
        let b = normalize_moving_minmax(&dip(3.0), 150);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn normalize_output_in_unit_range() {
        let signal: Vec<f64> = (0..500).map(|i| ((i * 37) % 91) as f64).collect();
        for v in normalize_moving_minmax(&signal, 64) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn accumulator_statistics() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        moving_min(&[1.0], 0);
    }

    #[test]
    fn range_outputs_equal_full_slices() {
        let signal: Vec<f64> = (0..500)
            .map(|i| ((i * 6151) % 173) as f64 / 7.0 - 10.0)
            .collect();
        for window in [1, 3, 16, 101, 499, 1200] {
            let full_min = moving_min(&signal, window);
            let full_max = moving_max(&signal, window);
            let full_norm = normalize_moving_minmax(&signal, window);
            for (start, end) in [(0, 500), (0, 1), (499, 500), (120, 377), (250, 250)] {
                assert_eq!(
                    moving_min_range(&signal, window, start, end),
                    full_min[start..end],
                    "min window {window} range {start}..{end}"
                );
                assert_eq!(
                    moving_max_range(&signal, window, start, end),
                    full_max[start..end],
                    "max window {window} range {start}..{end}"
                );
                assert_eq!(
                    normalize_moving_minmax_range(&signal, window, start, end),
                    full_norm[start..end],
                    "norm window {window} range {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn concatenated_ranges_reconstruct_the_full_normalization() {
        let signal: Vec<f64> = (0..1000).map(|i| ((i * 37) % 91) as f64).collect();
        let full = normalize_moving_minmax(&signal, 128);
        let mut stitched = Vec::new();
        for (start, end) in [(0, 333), (333, 666), (666, 1000)] {
            stitched.extend(normalize_moving_minmax_range(&signal, 128, start, end));
        }
        assert_eq!(stitched, full);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_range_panics() {
        moving_min_range(&[1.0, 2.0], 3, 1, 5);
    }
}
