//! Radix-2 Cooley–Tukey FFT.
//!
//! Powers the STFT used by the Spectral-Profiling-style attribution stage
//! (Fig. 14 / Table V of the paper). Implemented iteratively with
//! precomputable twiddle factors; sizes must be powers of two.

use crate::Complex;

/// In-place forward FFT of a power-of-two-length buffer.
///
/// Uses the standard decimation-in-time radix-2 algorithm:
/// bit-reversal permutation followed by log2(n) butterfly passes.
/// No normalization is applied (matching the common engineering
/// convention); [`inverse`] divides by `n` so a round trip is the identity.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two (zero length included).
///
/// # Example
///
/// ```
/// use emprof_signal::{fft, Complex};
///
/// let mut buf = vec![Complex::ONE; 8];
/// fft::forward(&mut buf);
/// // DC signal concentrates in bin 0.
/// assert!((buf[0].re - 8.0).abs() < 1e-12);
/// assert!(buf[1].norm() < 1e-12);
/// ```
pub fn forward(buf: &mut [Complex]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT, normalized by `1/n` so that
/// `inverse(forward(x)) == x`.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn inverse(buf: &mut [Complex]) {
    fft_dir(buf, true);
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        *v = *v / n;
    }
}

fn fft_dir(buf: &mut [Complex], invert: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n == 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_phase(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Convenience: FFT of a real signal, returning the complex spectrum.
///
/// The input is zero-padded to the next power of two.
pub fn forward_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len().next_power_of_two().max(1);
    let mut buf: Vec<Complex> = signal.iter().map(|&v| Complex::from_re(v)).collect();
    buf.resize(n, Complex::ZERO);
    forward(&mut buf);
    buf
}

/// Magnitude spectrum of a real signal (first half: bins 0..n/2).
///
/// The second half of a real signal's spectrum is the mirror image of the
/// first, so only the non-redundant half is returned.
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = forward_real(signal);
    let half = spec.len() / 2;
    spec[..half.max(1)].iter().map(|c| c.norm()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!(
            (a - b).norm() < eps,
            "expected {b:?}, got {a:?} (eps {eps})"
        );
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let mut buf = vec![Complex::from_re(2.0); 16];
        forward(&mut buf);
        assert_close(buf[0], Complex::from_re(32.0), 1e-9);
        for b in &buf[1..] {
            assert!(b.norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let mag = magnitude_spectrum(&signal);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
        assert!((mag[k] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn forward_inverse_round_trip() {
        let original: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut buf = original.clone();
        forward(&mut buf);
        inverse(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal: Vec<Complex> = (0..256)
            .map(|i| Complex::new(((i * 7) % 13) as f64, ((i * 3) % 5) as f64))
            .collect();
        let time_energy: f64 = signal.iter().map(|c| c.norm_sqr()).sum();
        let mut buf = signal;
        forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::from_re(i as f64)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, (i % 3) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        forward(&mut fa);
        forward(&mut fb);
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        forward(&mut fab);
        for i in 0..32 {
            assert_close(fab[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn real_input_zero_pads() {
        let spec = forward_real(&[1.0, 2.0, 3.0]); // pads to 4
        assert_eq!(spec.len(), 4);
    }

    #[test]
    fn size_one_fft_is_identity() {
        let mut buf = vec![Complex::new(3.0, -1.0)];
        forward(&mut buf);
        assert_eq!(buf[0], Complex::new(3.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Complex::ZERO; 12];
        forward(&mut buf);
    }
}
