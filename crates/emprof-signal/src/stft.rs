//! Short-time Fourier transform (spectrogram).
//!
//! Fig. 14 of the paper shows the spectrogram of the *parser* benchmark:
//! distinct loop-level regions of code produce distinct short-term spectra,
//! which is what Spectral Profiling keys on and what the attribution crate
//! reuses. This module turns a magnitude signal into a sequence of windowed
//! magnitude spectra.

use crate::fft;
use crate::window::WindowKind;
use crate::Complex;

/// Configuration for [`Stft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StftConfig {
    /// FFT frame length in samples; must be a power of two.
    pub frame_len: usize,
    /// Distance between the starts of consecutive frames.
    pub hop: usize,
    /// Analysis window applied to each frame.
    pub window: WindowKind,
}

impl Default for StftConfig {
    fn default() -> Self {
        StftConfig {
            frame_len: 1024,
            hop: 256,
            window: WindowKind::Hann,
        }
    }
}

impl StftConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when `frame_len` is not a power of two or `hop`
    /// is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !self.frame_len.is_power_of_two() {
            return Err(format!(
                "frame_len {} must be a power of two",
                self.frame_len
            ));
        }
        if self.hop == 0 {
            return Err("hop must be nonzero".to_string());
        }
        Ok(())
    }
}

/// A computed spectrogram: rows are time frames, columns are frequency bins
/// `0..frame_len/2`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    frames: Vec<Vec<f64>>,
    config: StftConfig,
}

impl Spectrogram {
    /// Number of time frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frequency bins per frame (`frame_len / 2`).
    pub fn num_bins(&self) -> usize {
        self.frames.first().map_or(0, Vec::len)
    }

    /// Magnitude spectrum of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_frames()`.
    pub fn frame(&self, t: usize) -> &[f64] {
        &self.frames[t]
    }

    /// Iterates over the frames in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<f64>> {
        self.frames.iter()
    }

    /// The sample index at the *center* of frame `t`, for aligning frames
    /// with events detected in the time-domain signal.
    pub fn frame_center_sample(&self, t: usize) -> usize {
        t * self.config.hop + self.config.frame_len / 2
    }

    /// The configuration that produced this spectrogram.
    pub fn config(&self) -> StftConfig {
        self.config
    }
}

impl<'a> IntoIterator for &'a Spectrogram {
    type Item = &'a Vec<f64>;
    type IntoIter = std::slice::Iter<'a, Vec<f64>>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

/// Short-time Fourier transform engine.
///
/// # Example
///
/// ```
/// use emprof_signal::stft::{Stft, StftConfig};
///
/// let stft = Stft::new(StftConfig { frame_len: 64, hop: 32, ..Default::default() })?;
/// let tone: Vec<f64> = (0..1000)
///     .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 64.0).sin())
///     .collect();
/// let spec = stft.compute(&tone);
/// assert!(spec.num_frames() > 20);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Stft {
    config: StftConfig,
    window: Vec<f64>,
}

impl Stft {
    /// Creates an STFT engine, materializing the analysis window.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid (see
    /// [`StftConfig::validate`]).
    pub fn new(config: StftConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Stft {
            config,
            window: config.window.vector(config.frame_len),
        })
    }

    /// Computes the spectrogram of a real signal.
    ///
    /// Produces `floor((len - frame_len) / hop) + 1` frames; a signal
    /// shorter than one frame yields an empty spectrogram.
    pub fn compute(&self, signal: &[f64]) -> Spectrogram {
        let fl = self.config.frame_len;
        let mut frames = Vec::new();
        if signal.len() >= fl {
            let mut start = 0;
            let mut buf = vec![Complex::ZERO; fl];
            while start + fl <= signal.len() {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = Complex::from_re(signal[start + i] * self.window[i]);
                }
                fft::forward(&mut buf);
                frames.push(buf[..fl / 2].iter().map(|c| c.norm()).collect());
                start += self.config.hop;
            }
        }
        Spectrogram {
            frames,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq_bin: f64, frame_len: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                (std::f64::consts::TAU * freq_bin * i as f64 / frame_len as f64).sin()
            })
            .collect()
    }

    #[test]
    fn frame_count_formula() {
        let stft = Stft::new(StftConfig {
            frame_len: 64,
            hop: 16,
            window: WindowKind::Hann,
        })
        .unwrap();
        let spec = stft.compute(&vec![0.0; 256]);
        assert_eq!(spec.num_frames(), (256 - 64) / 16 + 1);
        assert_eq!(spec.num_bins(), 32);
    }

    #[test]
    fn tone_peaks_in_correct_bin() {
        let stft = Stft::new(StftConfig {
            frame_len: 128,
            hop: 64,
            window: WindowKind::Hann,
        })
        .unwrap();
        let spec = stft.compute(&tone(10.0, 128, 2000));
        for frame in spec.iter() {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(peak, 10);
        }
    }

    #[test]
    fn switching_tones_produce_distinct_frames() {
        // First half at bin 4, second half at bin 20: frames should change.
        let mut signal = tone(4.0, 128, 4096);
        signal.extend(tone(20.0, 128, 4096));
        let stft = Stft::new(StftConfig {
            frame_len: 128,
            hop: 128,
            window: WindowKind::Hann,
        })
        .unwrap();
        let spec = stft.compute(&signal);
        let first = spec.frame(2);
        let last = spec.frame(spec.num_frames() - 3);
        let peak = |f: &[f64]| {
            f.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(peak(first), 4);
        assert_eq!(peak(last), 20);
    }

    #[test]
    fn short_signal_is_empty_spectrogram() {
        let stft = Stft::new(StftConfig::default()).unwrap();
        let spec = stft.compute(&[0.0; 10]);
        assert_eq!(spec.num_frames(), 0);
        assert_eq!(spec.num_bins(), 0);
    }

    #[test]
    fn frame_center_alignment() {
        let cfg = StftConfig {
            frame_len: 64,
            hop: 32,
            window: WindowKind::Hann,
        };
        let stft = Stft::new(cfg).unwrap();
        let spec = stft.compute(&vec![0.0; 256]);
        assert_eq!(spec.frame_center_sample(0), 32);
        assert_eq!(spec.frame_center_sample(3), 3 * 32 + 32);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Stft::new(StftConfig {
            frame_len: 100,
            hop: 10,
            window: WindowKind::Hann
        })
        .is_err());
        assert!(Stft::new(StftConfig {
            frame_len: 64,
            hop: 0,
            window: WindowKind::Hann
        })
        .is_err());
    }
}
