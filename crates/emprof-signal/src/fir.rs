//! Windowed-sinc FIR filter design and application.
//!
//! The capture rig in the paper band-limits the EM signal to the measurement
//! bandwidth (20–160 MHz around the clock frequency). The reproduction's
//! receiver models that band-limiting with linear-phase FIR lowpass filters
//! designed here.

use crate::window::WindowKind;
use crate::Complex;

/// Designs a linear-phase lowpass FIR filter with the windowed-sinc method.
///
/// `cutoff` is the −6 dB cutoff as a fraction of the *sampling* frequency,
/// so it must lie in `(0, 0.5)`. `taps` is the filter length; odd lengths
/// give a symmetric type-I filter with an integral group delay of
/// `(taps - 1) / 2` samples. A [`WindowKind::Blackman`] window is applied,
/// giving ~−58 dB stop-band ripple.
///
/// The taps are normalized to unit DC gain, so filtering a constant signal
/// reproduces the constant — important because EMPROF's stall detection
/// keys off absolute signal *levels*.
///
/// # Panics
///
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
///
/// # Example
///
/// ```
/// use emprof_signal::fir;
///
/// let taps = fir::lowpass(63, 0.125);
/// let dc_gain: f64 = taps.iter().sum();
/// assert!((dc_gain - 1.0).abs() < 1e-12);
/// ```
pub fn lowpass(taps: usize, cutoff: f64) -> Vec<f64> {
    lowpass_with_window(taps, cutoff, WindowKind::Blackman)
}

/// Like [`lowpass`] but with an explicit window choice.
///
/// # Panics
///
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
pub fn lowpass_with_window(taps: usize, cutoff: f64, window: WindowKind) -> Vec<f64> {
    assert!(taps > 0, "FIR filter must have at least one tap");
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff {cutoff} must be in (0, 0.5) of the sample rate"
    );
    let mid = (taps as f64 - 1.0) / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let t = n as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (std::f64::consts::TAU * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * window.value(n, taps)
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Applies an FIR filter to a real signal, returning a signal of the same
/// length.
///
/// The filter is applied causally with zero-padded history; the output is
/// then advanced by the filter's group delay `(taps - 1) / 2` so features in
/// the output line up with features in the input (zero-phase behaviour for
/// symmetric filters). The trailing `(taps - 1) / 2` samples are filled by
/// holding the last fully-computed value, which keeps downstream
/// sample-index arithmetic simple.
///
/// # Example
///
/// ```
/// use emprof_signal::fir;
///
/// let x = vec![1.0; 256];
/// let taps = fir::lowpass(31, 0.2);
/// let y = fir::filter(&x, &taps);
/// // Unit DC gain: the plateau passes through unchanged.
/// assert!((y[128] - 1.0).abs() < 1e-9);
/// ```
pub fn filter(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    assert!(!taps.is_empty(), "FIR filter must have at least one tap");
    if signal.is_empty() {
        return Vec::new();
    }
    let delay = (taps.len() - 1) / 2;
    let n = signal.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        // Output index i corresponds to convolution output at i + delay.
        let center = i + delay;
        let mut acc = 0.0;
        for (k, &t) in taps.iter().enumerate() {
            if let Some(j) = center.checked_sub(k) {
                if j < n {
                    acc += t * signal[j];
                }
            }
        }
        *o = acc;
    }
    out
}

/// Applies an FIR filter to a complex signal; see [`filter`] for the
/// alignment conventions.
pub fn filter_complex(signal: &[Complex], taps: &[f64]) -> Vec<Complex> {
    assert!(!taps.is_empty(), "FIR filter must have at least one tap");
    if signal.is_empty() {
        return Vec::new();
    }
    let delay = (taps.len() - 1) / 2;
    let n = signal.len();
    let mut out = vec![Complex::ZERO; n];
    for (i, o) in out.iter_mut().enumerate() {
        let center = i + delay;
        let mut acc = Complex::ZERO;
        for (k, &t) in taps.iter().enumerate() {
            if let Some(j) = center.checked_sub(k) {
                if j < n {
                    acc += signal[j] * t;
                }
            }
        }
        *o = acc;
    }
    out
}

/// Measures the magnitude response of a filter at a normalized frequency
/// (fraction of the sample rate, in `[0, 0.5]`).
///
/// Used by tests and ablations to verify pass-band flatness and stop-band
/// rejection.
pub fn magnitude_response(taps: &[f64], freq: f64) -> f64 {
    let omega = std::f64::consts::TAU * freq;
    let mut acc = Complex::ZERO;
    for (n, &t) in taps.iter().enumerate() {
        acc += Complex::from_phase(-omega * n as f64) * t;
    }
    acc.norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_has_unit_dc_gain() {
        let taps = lowpass(101, 0.1);
        assert!((magnitude_response(&taps, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_passes_passband_and_rejects_stopband() {
        let taps = lowpass(127, 0.1);
        // Passband (well below cutoff): near unity.
        assert!((magnitude_response(&taps, 0.02) - 1.0).abs() < 1e-3);
        // Stopband (well above cutoff): heavily attenuated.
        assert!(magnitude_response(&taps, 0.25) < 1e-3);
        assert!(magnitude_response(&taps, 0.45) < 1e-3);
    }

    #[test]
    fn filter_preserves_length() {
        let x = vec![0.5; 300];
        let taps = lowpass(31, 0.2);
        assert_eq!(filter(&x, &taps).len(), 300);
    }

    #[test]
    fn filter_is_aligned_with_input() {
        // A step should transition at the same index in input and output
        // (the symmetric filter's half-amplitude point sits on the edge).
        let mut x = vec![0.0; 400];
        for v in x.iter_mut().skip(200) {
            *v = 1.0;
        }
        let taps = lowpass(63, 0.1);
        let y = filter(&x, &taps);
        // Half-amplitude crossing should be within a couple of samples of 200.
        let crossing = y.iter().position(|&v| v >= 0.5).unwrap();
        assert!(
            (crossing as i64 - 200).unsigned_abs() <= 2,
            "step crossing at {crossing}, expected near 200"
        );
    }

    #[test]
    fn filter_smooths_high_frequency() {
        // Alternating +1/-1 is at Nyquist; a 0.1 lowpass should crush it.
        let x: Vec<f64> = (0..500).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let taps = lowpass(63, 0.1);
        let y = filter(&x, &taps);
        let peak = y[100..400].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 1e-3, "Nyquist tone leaked through: {peak}");
    }

    #[test]
    fn complex_filter_matches_real_filter_on_real_input() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let xc: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let taps = lowpass(31, 0.15);
        let yr = filter(&x, &taps);
        let yc = filter_complex(&xc, &taps);
        for (a, b) in yr.iter().zip(&yc) {
            assert!((a - b.re).abs() < 1e-12);
            assert!(b.im.abs() < 1e-12);
        }
    }

    #[test]
    fn empty_signal_gives_empty_output() {
        let taps = lowpass(31, 0.2);
        assert!(filter(&[], &taps).is_empty());
        assert!(filter_complex(&[], &taps).is_empty());
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_above_nyquist_panics() {
        lowpass(31, 0.6);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_taps_panics() {
        lowpass(0, 0.1);
    }

    #[test]
    fn single_tap_identity() {
        let taps = vec![1.0];
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(filter(&x, &taps), x);
    }
}
