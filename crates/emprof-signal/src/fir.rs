//! Windowed-sinc FIR filter design and application.
//!
//! The capture rig in the paper band-limits the EM signal to the measurement
//! bandwidth (20–160 MHz around the clock frequency). The reproduction's
//! receiver models that band-limiting with linear-phase FIR lowpass filters
//! designed here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use emprof_obs as obs;
use emprof_par::{pool, Parallelism};

use crate::fft;
use crate::window::WindowKind;
use crate::Complex;

/// Designs a linear-phase lowpass FIR filter with the windowed-sinc method.
///
/// `cutoff` is the −6 dB cutoff as a fraction of the *sampling* frequency,
/// so it must lie in `(0, 0.5)`. `taps` is the filter length; odd lengths
/// give a symmetric type-I filter with an integral group delay of
/// `(taps - 1) / 2` samples. A [`WindowKind::Blackman`] window is applied,
/// giving ~−58 dB stop-band ripple.
///
/// The taps are normalized to unit DC gain, so filtering a constant signal
/// reproduces the constant — important because EMPROF's stall detection
/// keys off absolute signal *levels*.
///
/// # Panics
///
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
///
/// # Example
///
/// ```
/// use emprof_signal::fir;
///
/// let taps = fir::lowpass(63, 0.125);
/// let dc_gain: f64 = taps.iter().sum();
/// assert!((dc_gain - 1.0).abs() < 1e-12);
/// ```
pub fn lowpass(taps: usize, cutoff: f64) -> Vec<f64> {
    lowpass_with_window(taps, cutoff, WindowKind::Blackman)
}

/// Like [`lowpass`] but with an explicit window choice.
///
/// # Panics
///
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
pub fn lowpass_with_window(taps: usize, cutoff: f64, window: WindowKind) -> Vec<f64> {
    assert!(taps > 0, "FIR filter must have at least one tap");
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff {cutoff} must be in (0, 0.5) of the sample rate"
    );
    let mid = (taps as f64 - 1.0) / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let t = n as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (std::f64::consts::TAU * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * window.value(n, taps)
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Caches designed lowpass filters, keyed by `(taps, cutoff, window)`.
///
/// The receiver chain redesigns the same anti-aliasing filter for every
/// capture (identical length and cutoff each time); a 513-tap design costs
/// hundreds of transcendental evaluations, so repeated `decimate`/
/// `resample` calls pull the taps from this process-wide cache instead.
/// Hits and misses are visible as the `signal.taps_cache.hit` / `.miss`
/// counters when telemetry is on.
pub fn lowpass_cached(taps: usize, cutoff: f64, window: WindowKind) -> Arc<Vec<f64>> {
    type TapCache = Mutex<HashMap<(usize, u64, WindowKind), Arc<Vec<f64>>>>;
    static CACHE: OnceLock<TapCache> = OnceLock::new();
    // Distinct designs in practice number in the dozens (one per
    // decimation ratio); the cap only guards against pathological sweeps.
    const CACHE_CAP: usize = 64;

    let key = (taps, cutoff.to_bits(), window);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = map.get(&key) {
            obs::counter_add!("signal.taps_cache.hit", 1);
            return Arc::clone(hit);
        }
    }
    obs::counter_add!("signal.taps_cache.miss", 1);
    // Design outside the lock; a racing duplicate design is harmless.
    let designed = Arc::new(lowpass_with_window(taps, cutoff, window));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    Arc::clone(map.entry(key).or_insert(designed))
}

/// Kernel length at or above which [`filter`] switches from direct
/// convolution to overlap-save FFT convolution.
///
/// Direct convolution costs `k` multiply-adds per sample; overlap-save
/// costs two FFTs of `N ≈ 4k` points per `N - k + 1` samples, roughly
/// `16·log2(4k)` flops per sample. The curves cross near `k ≈ 48` on
/// commodity cores (measured by the `perf_pipeline` bench scenario, FIR
/// leg), so short kernels keep the cache-friendly direct path.
pub const FFT_MIN_TAPS: usize = 48;

/// Whether [`filter`] will take the overlap-save FFT path for this
/// signal/kernel combination.
///
/// Exposed so benches and tests can pin down the crossover; the choice
/// depends only on the two lengths, never on the thread count, keeping
/// outputs bit-identical across `--threads` settings.
pub fn uses_overlap_save(signal_len: usize, taps: usize) -> bool {
    taps >= FFT_MIN_TAPS && signal_len >= 4 * taps
}

/// Applies an FIR filter to a real signal, returning a signal of the same
/// length.
///
/// The filter is applied with zero-padded history; the output is advanced
/// by the filter's group delay `(taps - 1) / 2` so features in the output
/// line up with features in the input (zero-phase behaviour for symmetric
/// filters). Long kernels are applied by overlap-save FFT convolution,
/// short ones by direct convolution ([`uses_overlap_save`] is the
/// crossover); both produce the same zero-padded linear convolution, the
/// FFT path within a few ulps.
///
/// # Example
///
/// ```
/// use emprof_signal::fir;
///
/// let x = vec![1.0; 256];
/// let taps = fir::lowpass(31, 0.2);
/// let y = fir::filter(&x, &taps);
/// // Unit DC gain: the plateau passes through unchanged.
/// assert!((y[128] - 1.0).abs() < 1e-9);
/// ```
pub fn filter(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    filter_par(signal, taps, Parallelism::sequential())
}

/// [`filter`] with the work fanned out over a worker pool.
///
/// Output is bit-for-bit identical to [`filter`] for any thread count:
/// the direct path computes each output sample with the same summation
/// order, and the FFT path uses fixed block boundaries that depend only
/// on the kernel length.
pub fn filter_par(signal: &[f64], taps: &[f64], par: Parallelism) -> Vec<f64> {
    assert!(!taps.is_empty(), "FIR filter must have at least one tap");
    if signal.is_empty() {
        return Vec::new();
    }
    if uses_overlap_save(signal.len(), taps.len()) {
        filter_overlap_save(signal, taps, par)
    } else {
        filter_direct_par(signal, taps, par)
    }
}

/// Direct (time-domain) convolution, always, regardless of kernel length.
///
/// This is the reference implementation the FFT path is validated
/// against; production code calls [`filter`], which picks the faster
/// path.
pub fn filter_direct(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    assert!(!taps.is_empty(), "FIR filter must have at least one tap");
    filter_direct_par(signal, taps, Parallelism::sequential())
}

fn filter_direct_par(signal: &[f64], taps: &[f64], par: Parallelism) -> Vec<f64> {
    let delay = (taps.len() - 1) / 2;
    let n = signal.len();
    pool::map_ranges(par, n, |range| {
        range
            .map(|i| {
                // Output index i corresponds to convolution output at
                // i + delay.
                let center = i + delay;
                let mut acc = 0.0;
                for (k, &t) in taps.iter().enumerate() {
                    if let Some(j) = center.checked_sub(k) {
                        if j < n {
                            acc += t * signal[j];
                        }
                    }
                }
                acc
            })
            .collect()
    })
}

/// Overlap-save FFT convolution of the zero-padded linear convolution,
/// sliced to the same delay-compensated window as the direct path.
///
/// Blocks are independent, so they distribute over the pool; block
/// boundaries are a pure function of the kernel length, which is what
/// makes the output identical for every thread count.
fn filter_overlap_save(signal: &[f64], taps: &[f64], par: Parallelism) -> Vec<f64> {
    let n = signal.len();
    let k = taps.len();
    let delay = (k - 1) / 2;
    // Block size: ~4x the kernel keeps the wasted overlap under a third
    // while the FFTs stay cache-resident.
    let nfft = (4 * k).next_power_of_two().max(1024);
    let valid = nfft - (k - 1);

    let mut taps_spectrum: Vec<Complex> = taps.iter().map(|&t| Complex::from_re(t)).collect();
    taps_spectrum.resize(nfft, Complex::ZERO);
    fft::forward(&mut taps_spectrum);
    let taps_spectrum = &taps_spectrum;

    let blocks: Vec<usize> = (0..n.div_ceil(valid)).collect();
    let pieces = pool::parallel_map(par, &blocks, |&b| {
        // This block produces convolution outputs y[t0 .. t0 + valid)
        // (t = i + delay), which need inputs x[t0 - (k-1) .. t0 + valid).
        let t0 = (delay + b * valid) as i64;
        let seg_origin = t0 - (k as i64 - 1);
        let mut seg = vec![Complex::ZERO; nfft];
        let lo = seg_origin.max(0) as usize;
        let hi = ((seg_origin + nfft as i64).min(n as i64)).max(0) as usize;
        for idx in lo..hi {
            seg[(idx as i64 - seg_origin) as usize] = Complex::from_re(signal[idx]);
        }
        fft::forward(&mut seg);
        for (s, h) in seg.iter_mut().zip(taps_spectrum) {
            *s *= *h;
        }
        fft::inverse(&mut seg);
        let take = valid.min(n - b * valid);
        seg[(k - 1)..(k - 1 + take)].iter().map(|c| c.re).collect::<Vec<f64>>()
    });
    let mut out = Vec::with_capacity(n);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// Applies an FIR filter to a complex signal; see [`filter`] for the
/// alignment conventions.
pub fn filter_complex(signal: &[Complex], taps: &[f64]) -> Vec<Complex> {
    assert!(!taps.is_empty(), "FIR filter must have at least one tap");
    if signal.is_empty() {
        return Vec::new();
    }
    let delay = (taps.len() - 1) / 2;
    let n = signal.len();
    let mut out = vec![Complex::ZERO; n];
    for (i, o) in out.iter_mut().enumerate() {
        let center = i + delay;
        let mut acc = Complex::ZERO;
        for (k, &t) in taps.iter().enumerate() {
            if let Some(j) = center.checked_sub(k) {
                if j < n {
                    acc += signal[j] * t;
                }
            }
        }
        *o = acc;
    }
    out
}

/// Measures the magnitude response of a filter at a normalized frequency
/// (fraction of the sample rate, in `[0, 0.5]`).
///
/// Used by tests and ablations to verify pass-band flatness and stop-band
/// rejection.
pub fn magnitude_response(taps: &[f64], freq: f64) -> f64 {
    let omega = std::f64::consts::TAU * freq;
    let mut acc = Complex::ZERO;
    for (n, &t) in taps.iter().enumerate() {
        acc += Complex::from_phase(-omega * n as f64) * t;
    }
    acc.norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_has_unit_dc_gain() {
        let taps = lowpass(101, 0.1);
        assert!((magnitude_response(&taps, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_passes_passband_and_rejects_stopband() {
        let taps = lowpass(127, 0.1);
        // Passband (well below cutoff): near unity.
        assert!((magnitude_response(&taps, 0.02) - 1.0).abs() < 1e-3);
        // Stopband (well above cutoff): heavily attenuated.
        assert!(magnitude_response(&taps, 0.25) < 1e-3);
        assert!(magnitude_response(&taps, 0.45) < 1e-3);
    }

    #[test]
    fn filter_preserves_length() {
        let x = vec![0.5; 300];
        let taps = lowpass(31, 0.2);
        assert_eq!(filter(&x, &taps).len(), 300);
    }

    #[test]
    fn filter_is_aligned_with_input() {
        // A step should transition at the same index in input and output
        // (the symmetric filter's half-amplitude point sits on the edge).
        let mut x = vec![0.0; 400];
        for v in x.iter_mut().skip(200) {
            *v = 1.0;
        }
        let taps = lowpass(63, 0.1);
        let y = filter(&x, &taps);
        // Half-amplitude crossing should be within a couple of samples of 200.
        let crossing = y.iter().position(|&v| v >= 0.5).unwrap();
        assert!(
            (crossing as i64 - 200).unsigned_abs() <= 2,
            "step crossing at {crossing}, expected near 200"
        );
    }

    #[test]
    fn filter_smooths_high_frequency() {
        // Alternating +1/-1 is at Nyquist; a 0.1 lowpass should crush it.
        let x: Vec<f64> = (0..500).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let taps = lowpass(63, 0.1);
        let y = filter(&x, &taps);
        let peak = y[100..400].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 1e-3, "Nyquist tone leaked through: {peak}");
    }

    #[test]
    fn complex_filter_matches_real_filter_on_real_input() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let xc: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let taps = lowpass(31, 0.15);
        let yr = filter(&x, &taps);
        let yc = filter_complex(&xc, &taps);
        for (a, b) in yr.iter().zip(&yc) {
            assert!((a - b.re).abs() < 1e-12);
            assert!(b.im.abs() < 1e-12);
        }
    }

    #[test]
    fn empty_signal_gives_empty_output() {
        let taps = lowpass(31, 0.2);
        assert!(filter(&[], &taps).is_empty());
        assert!(filter_complex(&[], &taps).is_empty());
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_above_nyquist_panics() {
        lowpass(31, 0.6);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_taps_panics() {
        lowpass(0, 0.1);
    }

    #[test]
    fn single_tap_identity() {
        let taps = vec![1.0];
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(filter(&x, &taps), x);
    }

    /// A deterministic broadband test signal.
    fn wiggle(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let t = i as f64;
                (t * 0.11).sin() + 0.4 * (t * 0.037).cos() + ((i * 2654435761) % 97) as f64 / 97.0
            })
            .collect()
    }

    #[test]
    fn overlap_save_matches_direct() {
        // Long kernels route through the FFT; compare against the direct
        // reference at several signal lengths, including lengths that are
        // not multiples of the FFT block and shorter than one block.
        for k in [49, 63, 128, 257, 513] {
            let taps = lowpass(k, 0.08);
            for n in [4 * k, 4 * k + 1, 5000, 12_345] {
                let x = wiggle(n);
                assert!(uses_overlap_save(n, k), "n={n} k={k}");
                let direct = filter_direct(&x, &taps);
                let fft = filter(&x, &taps);
                let scale = x.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
                for (i, (a, b)) in fft.iter().zip(&direct).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9 * scale,
                        "n={n} k={k} i={i}: fft {a} vs direct {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn short_kernels_stay_on_the_direct_path() {
        assert!(!uses_overlap_save(1_000_000, 31));
        assert!(!uses_overlap_save(100, 513)); // signal shorter than 4k
        assert!(uses_overlap_save(4 * 513, 513));
    }

    #[test]
    fn parallel_filter_is_bit_exact() {
        // Both the direct path (short kernel) and the FFT path (long
        // kernel) must produce identical bits for every thread count.
        for k in [31usize, 257] {
            let taps = lowpass(k, 0.1);
            let x = wiggle(9_876);
            let seq = filter(&x, &taps);
            for threads in [2, 3, 8] {
                let par = filter_par(&x, &taps, Parallelism::new(threads));
                assert_eq!(seq, par, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn tap_cache_returns_identical_designs() {
        let fresh = lowpass_with_window(101, 0.07, WindowKind::Blackman);
        let a = lowpass_cached(101, 0.07, WindowKind::Blackman);
        let b = lowpass_cached(101, 0.07, WindowKind::Blackman);
        assert_eq!(*a, fresh);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        // A different key designs a different filter.
        let c = lowpass_cached(101, 0.08, WindowKind::Blackman);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
