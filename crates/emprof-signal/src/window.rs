//! Window functions used for FIR design and the STFT.
//!
//! The receiver chain band-limits with windowed-sinc filters and the
//! attribution spectrogram uses Hann-windowed frames; both need the classic
//! cosine-family windows collected here.

/// The window functions supported by the crate.
///
/// Each variant trades main-lobe width against side-lobe suppression:
/// `Rectangular` has the narrowest main lobe but only −13 dB side lobes,
/// `Blackman` suppresses side lobes below −58 dB at triple the main-lobe
/// width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// No tapering (all ones).
    Rectangular,
    /// Hann (raised cosine) window: good general-purpose STFT window.
    #[default]
    Hann,
    /// Hamming window: slightly better near side-lobe suppression than Hann.
    Hamming,
    /// Blackman window: strong side-lobe suppression for filter design.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at position `n` of an `len`-point window.
    ///
    /// Uses the *symmetric* convention (`w[0] == w[len-1]`), which is what
    /// FIR design wants. For `len == 1` the value is `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= len`.
    pub fn value(self, n: usize, len: usize) -> f64 {
        assert!(n < len, "window index {n} out of range for length {len}");
        if len == 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64; // in [0, 1]
        let tau = std::f64::consts::TAU;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * (tau * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            WindowKind::Blackman => {
                0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos()
            }
        }
    }

    /// Materializes the whole window as a vector.
    ///
    /// # Example
    ///
    /// ```
    /// use emprof_signal::window::WindowKind;
    ///
    /// let w = WindowKind::Hann.vector(5);
    /// assert_eq!(w.len(), 5);
    /// assert!((w[2] - 1.0).abs() < 1e-12); // symmetric peak in the middle
    /// ```
    pub fn vector(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.value(n, len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let w = kind.vector(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = WindowKind::Hann.vector(17);
        assert!(w[0].abs() < 1e-12);
        assert!(w[16].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_point_zero_eight() {
        let w = WindowKind::Hamming.vector(9);
        assert!((w[0] - 0.08).abs() < 1e-9);
    }

    #[test]
    fn blackman_peak_is_one() {
        let w = WindowKind::Blackman.vector(65);
        assert!((w[32] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .vector(12)
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn length_one_window_is_one() {
        for kind in [WindowKind::Hann, WindowKind::Blackman] {
            assert_eq!(kind.vector(1), vec![1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        WindowKind::Hann.value(5, 5);
    }
}
