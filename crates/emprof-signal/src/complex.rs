//! A minimal complex-number type for IQ baseband samples.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex sample with `f64` real (`re`, in-phase) and imaginary
/// (`im`, quadrature) parts.
///
/// The fields are public in the spirit of a passive data structure: every
/// stage of the receiver chain reads and writes both components.
///
/// # Example
///
/// ```
/// use emprof_signal::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a unit-magnitude complex number `e^{i theta}` from a phase in
    /// radians.
    ///
    /// This is the workhorse of mixing (frequency translation) and FFT
    /// twiddle-factor generation.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Creates a complex number from polar magnitude and phase.
    #[inline]
    pub fn from_polar(mag: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex {
            re: mag * c,
            im: mag * s,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::norm`] when only relative
    /// ordering or power is needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a + a, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12 i^2 = -14 + 5i
        assert_eq!(a * b, Complex::new(-14.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn norm_and_norm_sqr_agree() {
        let a = Complex::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_norm_sqr() {
        let a = Complex::new(-2.5, 1.25);
        let p = a * a.conj();
        assert!((p.re - a.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex::from_polar(2.0, 0.7);
        assert!((a.norm() - 2.0).abs() < EPS);
        assert!((a.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn from_phase_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let u = Complex::from_phase(theta);
            assert!((u.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn sum_of_samples() {
        let v = vec![Complex::new(1.0, 1.0); 8];
        let s: Complex = v.into_iter().sum();
        assert_eq!(s, Complex::new(8.0, 8.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(2.0, -4.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -2.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -2.0));
    }
}
