//! The memory controller: address mapping, bank arbitration, refresh.

use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;
use crate::trace::{CasEvent, CasEventKind, CasTrace};

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessResult {
    /// Absolute time the requested line is available (ns).
    pub complete_ns: f64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// Whether the access was delayed by refresh activity. Accesses with
    /// this flag set are the paper's 2–3 µs "refresh collision" stalls
    /// (Fig. 5), which EMPROF counts separately.
    pub refresh_collision: bool,
}

impl AccessResult {
    /// Latency relative to a request time.
    pub fn latency_ns(&self, request_ns: f64) -> f64 {
        self.complete_ns - request_ns
    }
}

/// A single-channel DRAM controller with open-page policy.
///
/// Maps physical addresses to (bank, row) with the row-interleaved scheme
/// typical of embedded SoCs (column bits low, bank bits middle, row bits
/// high), services requests through per-bank state machines, injects
/// refresh windows, and logs every observable memory event into a
/// [`CasTrace`].
///
/// # Example
///
/// ```
/// use emprof_dram::{DramConfig, MemoryController};
///
/// let mut mem = MemoryController::new(DramConfig::h5tq2g63bfr());
/// let r = mem.access(0x1234_5678, 3000.0, false);
/// assert!(r.complete_ns > 3000.0);
/// // The trace holds the read plus the refresh windows already elapsed.
/// assert_eq!(mem.trace().count_kind(emprof_dram::CasEventKind::Read), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: DramConfig,
    banks: Vec<Bank>,
    trace: CasTrace,
    /// Index of the last fine-grained refresh window already logged.
    fine_refresh_logged_until: u64,
    /// Index of the last maintenance burst already logged.
    burst_logged_until: u64,
    accesses: u64,
    row_hits: u64,
    refresh_collisions: u64,
}

impl MemoryController {
    /// Creates a controller for the given device configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`]; a
    /// controller must never run with meaningless timing.
    pub fn new(config: DramConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid DRAM configuration: {e}"));
        let banks = vec![Bank::default(); config.banks];
        MemoryController {
            config,
            banks,
            trace: CasTrace::new(),
            fine_refresh_logged_until: 0,
            burst_logged_until: 0,
            accesses: 0,
            row_hits: 0,
            refresh_collisions: 0,
        }
    }

    /// Services a read (`is_write == false`) or write access to `addr`
    /// issued at `now_ns`.
    ///
    /// The returned [`AccessResult`] carries the absolute completion time;
    /// callers (the CPU simulator's miss handling) convert it to cycles.
    ///
    /// # Panics
    ///
    /// Panics if `now_ns` is negative or not finite.
    pub fn access(&mut self, addr: u64, now_ns: f64, is_write: bool) -> AccessResult {
        assert!(
            now_ns >= 0.0 && now_ns.is_finite(),
            "access time must be non-negative and finite, got {now_ns}"
        );
        self.accesses += 1;
        // Refresh gating: the request cannot start while the device is
        // refreshing.
        let (start, refresh_collision) = self.refresh_gate(now_ns);
        if refresh_collision {
            self.refresh_collisions += 1;
            // Refresh closes all rows.
            for bank in &mut self.banks {
                bank.close(start);
            }
        }
        let (bank_idx, row) = self.map(addr);
        let (service_start, complete, outcome) =
            self.banks[bank_idx].access(row, start, &self.config.timing);
        if outcome == RowOutcome::Hit {
            self.row_hits += 1;
        }
        self.trace.push(CasEvent {
            start_ns: service_start,
            duration_ns: complete - service_start,
            kind: if is_write {
                CasEventKind::Write
            } else {
                CasEventKind::Read
            },
        });
        AccessResult {
            complete_ns: complete,
            row_hit: outcome == RowOutcome::Hit,
            refresh_collision,
        }
    }

    /// If `now_ns` falls inside a refresh window, returns the end of the
    /// window and `true`; also logs refresh windows into the trace as they
    /// are first observed.
    fn refresh_gate(&mut self, now_ns: f64) -> (f64, bool) {
        let mut start = now_ns;
        let mut collided = false;
        if self.config.refresh.burst {
            let interval = self.config.refresh.burst_interval_ns;
            let duration = self.config.refresh.burst_duration_ns;
            let idx = (start / interval).floor() as u64;
            // Log bursts up to and including the current window so the
            // memory-side trace shows refresh activity even with no access.
            while self.burst_logged_until <= idx {
                self.trace.push(CasEvent {
                    start_ns: self.burst_logged_until as f64 * interval,
                    duration_ns: duration,
                    kind: CasEventKind::Refresh,
                });
                self.burst_logged_until += 1;
            }
            let phase = start - idx as f64 * interval;
            if phase < duration {
                start += duration - phase;
                collided = true;
            }
        }
        if self.config.refresh.fine_grained {
            let interval = self.config.timing.t_refi;
            let duration = self.config.timing.t_rfc;
            let idx = (start / interval).floor() as u64;
            while self.fine_refresh_logged_until <= idx {
                self.trace.push(CasEvent {
                    start_ns: self.fine_refresh_logged_until as f64 * interval,
                    duration_ns: duration,
                    kind: CasEventKind::Refresh,
                });
                self.fine_refresh_logged_until += 1;
            }
            let phase = start - idx as f64 * interval;
            if phase < duration {
                start += duration - phase;
                collided = true;
            }
        }
        (start, collided)
    }

    /// Maps an address to (bank index, row number).
    fn map(&self, addr: u64) -> (usize, u64) {
        let row_addr = addr / self.config.row_bytes;
        let bank = (row_addr % self.config.banks as u64) as usize;
        let row = row_addr / self.config.banks as u64;
        (bank, row)
    }

    /// The CAS/refresh activity trace accumulated so far.
    pub fn trace(&self) -> &CasTrace {
        &self.trace
    }

    /// Consumes the controller, returning the trace.
    pub fn into_trace(self) -> CasTrace {
        self.trace
    }

    /// Total accesses serviced.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row (0 if no accesses yet).
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Number of accesses delayed by refresh.
    pub fn refresh_collision_count(&self) -> u64 {
        self.refresh_collisions
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefreshConfig;

    fn no_refresh_config() -> DramConfig {
        DramConfig {
            refresh: RefreshConfig::disabled(),
            ..DramConfig::h5tq2g63bfr()
        }
    }

    #[test]
    fn sequential_lines_hit_open_row() {
        let mut mem = MemoryController::new(no_refresh_config());
        let mut now = 0.0;
        // Touch the row once, then walk lines within it.
        let r = mem.access(0, now, false);
        now = r.complete_ns;
        for line in 1..8u64 {
            let r = mem.access(line * 64, now, false);
            assert!(r.row_hit, "line {line} should hit the open row");
            now = r.complete_ns;
        }
        assert!(mem.row_hit_rate() > 0.8);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = no_refresh_config();
        let stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
        let mut mem = MemoryController::new(cfg);
        let r1 = mem.access(0, 0.0, false);
        let r2 = mem.access(stride, r1.complete_ns, false);
        assert!(!r2.row_hit);
        // Conflict latency exceeds hit latency.
        let t = mem.config().timing;
        assert!(r2.latency_ns(r1.complete_ns) >= t.t_rp + t.t_rcd + t.t_cl);
    }

    #[test]
    fn banks_service_in_parallel_addresses() {
        let cfg = no_refresh_config();
        let row_bytes = cfg.row_bytes;
        let mut mem = MemoryController::new(cfg);
        // Consecutive rows land in different banks (row-interleaving).
        let r1 = mem.access(0, 0.0, false);
        let r2 = mem.access(row_bytes, 0.0, false);
        // Second access does not wait for the first: both start at ~0.
        assert!((r2.complete_ns - r1.complete_ns).abs() < 1e-9);
    }

    #[test]
    fn refresh_burst_delays_colliding_access() {
        let cfg = DramConfig::h5tq2g63bfr();
        let burst = cfg.refresh.burst_duration_ns;
        let interval = cfg.refresh.burst_interval_ns;
        let mut mem = MemoryController::new(cfg);
        // Request right at the start of the second maintenance burst.
        let r = mem.access(0, interval + 1.0, false);
        assert!(r.refresh_collision);
        // The latency includes most of the burst: the paper's 2-3 us stall.
        assert!(r.latency_ns(interval + 1.0) > burst * 0.8);
        assert_eq!(mem.refresh_collision_count(), 1);
    }

    #[test]
    fn access_between_refreshes_is_fast() {
        let cfg = DramConfig::h5tq2g63bfr();
        let mut mem = MemoryController::new(cfg.clone());
        // Mid-interval, away from both refresh mechanisms.
        let now = 3_000.0;
        let r = mem.access(0, now, false);
        assert!(!r.refresh_collision);
        assert!(r.latency_ns(now) < cfg.worst_case_access_ns() + 1.0);
    }

    #[test]
    fn refresh_windows_are_logged_without_accesses() {
        let mut mem = MemoryController::new(DramConfig::h5tq2g63bfr());
        // One access far into the timeline forces logging of earlier windows.
        mem.access(0, 500_000.0, false);
        let refreshes = mem.trace().count_kind(CasEventKind::Refresh);
        // 500 us => ~7 maintenance bursts and ~64 fine refreshes.
        assert!(refreshes > 60, "logged {refreshes} refresh windows");
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let mut mem = MemoryController::new(no_refresh_config());
        mem.access(0, 0.0, false);
        mem.access(64, 100.0, true);
        assert_eq!(mem.trace().count_kind(CasEventKind::Read), 1);
        assert_eq!(mem.trace().count_kind(CasEventKind::Write), 1);
        assert_eq!(mem.access_count(), 2);
    }

    #[test]
    fn random_access_latency_band() {
        // Random accesses across a large space should mostly be row misses
        // with bounded worst-case latency (no refresh).
        let cfg = no_refresh_config();
        let worst = cfg.worst_case_access_ns();
        let mut mem = MemoryController::new(cfg);
        let mut now = 0.0;
        let mut state = 0x12345u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = state % (64 << 20);
            let r = mem.access(addr, now, false);
            let lat = r.latency_ns(now);
            assert!(lat > 0.0 && lat <= worst + 1e-9, "latency {lat}");
            now = r.complete_ns + 50.0;
        }
        assert!(mem.row_hit_rate() < 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn invalid_config_panics() {
        let mut cfg = DramConfig::h5tq2g63bfr();
        cfg.banks = 0;
        MemoryController::new(cfg);
    }

    #[test]
    #[should_panic(expected = "access time")]
    fn negative_time_panics() {
        let mut mem = MemoryController::new(no_refresh_config());
        mem.access(0, -1.0, false);
    }
}
