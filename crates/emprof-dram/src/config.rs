//! DRAM device timing and refresh configuration.

/// Core DDR timing parameters in nanoseconds.
///
/// Only the parameters that shape miss latency at the granularity EMPROF
/// observes are modeled; sub-command bus contention and write-recovery
/// timing are folded into the burst time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Row-to-column delay: ACT to READ/WRITE (ns).
    pub t_rcd: f64,
    /// Row precharge time: PRE to ACT (ns).
    pub t_rp: f64,
    /// CAS latency: READ to first data (ns).
    pub t_cl: f64,
    /// Data burst transfer time for one cache line (ns).
    pub t_burst: f64,
    /// Refresh cycle time: how long one fine-grained refresh blocks the
    /// device (ns).
    pub t_rfc: f64,
    /// Average fine-grained refresh interval (ns).
    pub t_refi: f64,
}

impl DramTiming {
    /// DDR3-1066-class timings approximating the Hynix H5TQ2G63BFR part on
    /// the Olimex A13-OLinuXino-MICRO board (CL7 at 533 MHz I/O clock,
    /// 64-byte line over a 16-bit interface).
    pub fn ddr3_1066() -> Self {
        DramTiming {
            t_rcd: 13.1,
            t_rp: 13.1,
            t_cl: 13.1,
            t_burst: 30.0,
            t_rfc: 160.0,
            t_refi: 7800.0,
        }
    }

    /// Validates that every interval is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_cl", self.t_cl),
            ("t_burst", self.t_burst),
            ("t_rfc", self.t_rfc),
            ("t_refi", self.t_refi),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.t_rfc >= self.t_refi {
            return Err(format!(
                "t_rfc ({}) must be smaller than t_refi ({})",
                self.t_rfc, self.t_refi
            ));
        }
        Ok(())
    }
}

/// Refresh behaviour.
///
/// Two mechanisms are modeled, matching Section III-C of the paper:
///
/// * **Fine-grained auto-refresh** every [`DramTiming::t_refi`], blocking
///   the device for [`DramTiming::t_rfc`] — the JEDEC-mandated behaviour,
///   producing small latency perturbations.
/// * **Maintenance bursts**: the board's controller batches postponed
///   refreshes into a burst of `burst_duration_ns` roughly every
///   `burst_interval_ns`. A miss colliding with the burst observes the
///   paper's 2–3 µs stall; the paper measured these at least every ~70 µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshConfig {
    /// Enables fine-grained (tREFI/tRFC) refresh.
    pub fine_grained: bool,
    /// Enables the maintenance burst.
    pub burst: bool,
    /// Interval between maintenance bursts (ns).
    pub burst_interval_ns: f64,
    /// Duration of one maintenance burst (ns).
    pub burst_duration_ns: f64,
}

impl RefreshConfig {
    /// The behaviour observed on the Olimex board: both mechanisms on,
    /// ~2.5 µs bursts every 70 µs.
    pub fn olimex_observed() -> Self {
        RefreshConfig {
            fine_grained: true,
            burst: true,
            burst_interval_ns: 70_000.0,
            burst_duration_ns: 2_500.0,
        }
    }

    /// Refresh fully disabled — useful for microbenchmark validation where
    /// the expected miss count must not be perturbed.
    pub fn disabled() -> Self {
        RefreshConfig {
            fine_grained: false,
            burst: false,
            burst_interval_ns: 70_000.0,
            burst_duration_ns: 2_500.0,
        }
    }

    /// Validates the burst parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.burst {
            if !(self.burst_interval_ns > 0.0 && self.burst_interval_ns.is_finite()) {
                return Err(format!(
                    "burst_interval_ns must be positive, got {}",
                    self.burst_interval_ns
                ));
            }
            if !(self.burst_duration_ns > 0.0
                && self.burst_duration_ns < self.burst_interval_ns)
            {
                return Err(format!(
                    "burst_duration_ns ({}) must be positive and smaller than the interval ({})",
                    self.burst_duration_ns, self.burst_interval_ns
                ));
            }
        }
        Ok(())
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig::olimex_observed()
    }
}

/// Full DRAM device + controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Command timing.
    pub timing: DramTiming,
    /// Number of banks (DDR3: 8).
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Refresh behaviour.
    pub refresh: RefreshConfig,
}

impl DramConfig {
    /// Configuration approximating the H5TQ2G63BFR DDR3 device on the
    /// Olimex board, including its observed refresh bursts.
    pub fn h5tq2g63bfr() -> Self {
        DramConfig {
            timing: DramTiming::ddr3_1066(),
            banks: 8,
            row_bytes: 2048,
            refresh: RefreshConfig::olimex_observed(),
        }
    }

    /// Validates the full configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.timing.validate()?;
        self.refresh.validate()?;
        if self.banks == 0 {
            return Err("banks must be nonzero".to_string());
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err(format!(
                "row_bytes must be a nonzero power of two, got {}",
                self.row_bytes
            ));
        }
        Ok(())
    }

    /// Worst-case random-access latency without refresh interference:
    /// row conflict (precharge + activate + CAS) plus the burst.
    pub fn worst_case_access_ns(&self) -> f64 {
        self.timing.t_rp + self.timing.t_rcd + self.timing.t_cl + self.timing.t_burst
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::h5tq2g63bfr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        DramConfig::default().validate().unwrap();
        DramConfig::h5tq2g63bfr().validate().unwrap();
    }

    #[test]
    fn disabled_refresh_is_valid() {
        RefreshConfig::disabled().validate().unwrap();
    }

    #[test]
    fn rejects_zero_banks() {
        let cfg = DramConfig {
            banks: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_rows() {
        let cfg = DramConfig {
            row_bytes: 1000,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_negative_timing() {
        let mut t = DramTiming::ddr3_1066();
        t.t_cl = -1.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_rfc_longer_than_refi() {
        let mut t = DramTiming::ddr3_1066();
        t.t_rfc = 10_000.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_burst_longer_than_interval() {
        let mut r = RefreshConfig::olimex_observed();
        r.burst_duration_ns = 80_000.0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn worst_case_latency_is_tens_of_ns() {
        let ns = DramConfig::h5tq2g63bfr().worst_case_access_ns();
        assert!(ns > 40.0 && ns < 120.0, "{ns}");
    }
}
