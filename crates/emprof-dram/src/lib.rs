//! DRAM timing and refresh model for the EMPROF reproduction.
//!
//! Section III-C of the paper observes two behaviours of the Olimex board's
//! H5TQ2G63BFR DDR3 SDRAM that the original SESC simulator did not model:
//!
//! 1. ordinary LLC-miss stalls of ~300 ns whose latency varies with row
//!    buffer locality, and
//! 2. *refresh collisions*: an LLC miss arriving while the memory performs
//!    its periodic refresh activity stalls for 2–3 µs, and this happens at
//!    least every ~70 µs.
//!
//! This crate models a single-channel DDR3-style device: per-bank open-row
//! state machines with tRCD/tRP/tCL timing, JEDEC-style fine-grained
//! auto-refresh (tREFI/tRFC) plus the coarse maintenance burst that matches
//! the board-level observation above, and a CAS activity trace that the
//! EM-synthesis crate turns into the memory-side probe signal of Fig. 10.
//!
//! Time is measured in nanoseconds (`f64`) throughout, because the CPU
//! simulator and the receiver chain both work in continuous time and the
//! CPU and DRAM clocks are not harmonically related.
//!
//! # Example
//!
//! ```
//! use emprof_dram::{DramConfig, MemoryController};
//!
//! let mut mem = MemoryController::new(DramConfig::h5tq2g63bfr());
//! let first = mem.access(0x4000, 1000.0, false);
//! let second = mem.access(0x4040, first.complete_ns, false);
//! // The second access hits the open row, so it completes faster.
//! assert!(second.complete_ns - first.complete_ns < first.complete_ns - 1000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod controller;
mod trace;

pub use config::{DramConfig, DramTiming, RefreshConfig};
pub use controller::{AccessResult, MemoryController};
pub use trace::{CasEvent, CasEventKind, CasTrace};
