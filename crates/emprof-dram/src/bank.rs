//! Per-bank open-row state machine.

use crate::config::DramTiming;

/// How an access interacted with the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The requested row was already open: CAS only.
    Hit,
    /// The bank was idle: activate + CAS.
    ClosedMiss,
    /// A different row was open: precharge + activate + CAS.
    Conflict,
}

/// One DRAM bank: tracks the open row and when the bank becomes free.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    open_row: Option<u64>,
    busy_until_ns: f64,
}

impl Bank {
    /// Services one access beginning no earlier than `now_ns`.
    ///
    /// Returns `(service_start_ns, complete_ns, outcome)`: when the bank
    /// starts working on the request (precharge/activate onward — the
    /// span of visible DRAM die activity, recorded in the CAS trace),
    /// when data transfer finishes, and the row-buffer outcome. The
    /// open-page policy keeps the row open afterwards.
    pub(crate) fn access(
        &mut self,
        row: u64,
        now_ns: f64,
        timing: &DramTiming,
    ) -> (f64, f64, RowOutcome) {
        let start = now_ns.max(self.busy_until_ns);
        let (pre_cas_delay, outcome) = match self.open_row {
            Some(open) if open == row => (0.0, RowOutcome::Hit),
            Some(_) => (timing.t_rp + timing.t_rcd, RowOutcome::Conflict),
            None => (timing.t_rcd, RowOutcome::ClosedMiss),
        };
        let complete = start + pre_cas_delay + timing.t_cl + timing.t_burst;
        self.open_row = Some(row);
        self.busy_until_ns = complete;
        (start, complete, outcome)
    }

    /// Forces the bank idle (used when refresh closes all rows).
    pub(crate) fn close(&mut self, free_at_ns: f64) {
        self.open_row = None;
        self.busy_until_ns = self.busy_until_ns.max(free_at_ns);
    }

    /// When the bank next becomes free.
    #[cfg(test)]
    pub(crate) fn busy_until(&self) -> f64 {
        self.busy_until_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr3_1066()
    }

    #[test]
    fn first_access_is_closed_miss() {
        let mut b = Bank::default();
        let (_, _, outcome) = b.access(5, 100.0, &timing());
        assert_eq!(outcome, RowOutcome::ClosedMiss);
    }

    #[test]
    fn same_row_hits() {
        let mut b = Bank::default();
        let t = timing();
        let (_, done, _) = b.access(5, 100.0, &t);
        let (_, done2, outcome) = b.access(5, done, &t);
        assert_eq!(outcome, RowOutcome::Hit);
        // Hit latency = tCL + burst only.
        assert!((done2 - done - (t.t_cl + t.t_burst)).abs() < 1e-9);
    }

    #[test]
    fn different_row_conflicts() {
        let mut b = Bank::default();
        let t = timing();
        let (_, done, _) = b.access(5, 100.0, &t);
        let (_, done2, outcome) = b.access(9, done, &t);
        assert_eq!(outcome, RowOutcome::Conflict);
        let expected = t.t_rp + t.t_rcd + t.t_cl + t.t_burst;
        assert!((done2 - done - expected).abs() < 1e-9);
    }

    #[test]
    fn busy_bank_queues_request() {
        let mut b = Bank::default();
        let t = timing();
        let (_, done, _) = b.access(5, 100.0, &t);
        // Request arriving mid-service waits for the bank.
        let (cas, _, _) = b.access(5, done - 10.0, &t);
        assert!(cas >= done);
    }

    #[test]
    fn close_resets_row() {
        let mut b = Bank::default();
        let t = timing();
        b.access(5, 100.0, &t);
        b.close(1000.0);
        let (_, _, outcome) = b.access(5, 2000.0, &t);
        assert_eq!(outcome, RowOutcome::ClosedMiss);
        assert!(b.busy_until() > 2000.0);
    }
}
