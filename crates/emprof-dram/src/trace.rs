//! CAS activity trace: the memory-side observable.
//!
//! Section V-D of the paper validates EMPROF by simultaneously probing the
//! processor's EM emanations and the memory's activity (a passive probe on
//! the CAS pin). The controller records every column access and refresh
//! window here; the EM-synthesis crate renders the trace as the dotted
//! memory signal of Fig. 10.

/// The kind of memory activity an event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CasEventKind {
    /// A read column access (CAS assertion plus data burst).
    Read,
    /// A write column access.
    Write,
    /// A refresh window (fine-grained or maintenance burst).
    Refresh,
}

/// One timestamped memory-activity event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CasEvent {
    /// Start of the activity (ns).
    pub start_ns: f64,
    /// Duration of the activity (ns).
    pub duration_ns: f64,
    /// What the activity was.
    pub kind: CasEventKind,
}

impl CasEvent {
    /// End of the activity (ns).
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// An append-only log of memory activity in time order.
#[derive(Debug, Clone, Default)]
pub struct CasTrace {
    events: Vec<CasEvent>,
}

impl CasTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CasTrace::default()
    }

    /// Appends an event. Events are expected in non-decreasing start order;
    /// out-of-order pushes are accepted but [`CasTrace::activity_envelope`]
    /// sorts internally so correctness is unaffected.
    pub fn push(&mut self, event: CasEvent) {
        self.events.push(event);
    }

    /// All recorded events.
    pub fn events(&self) -> &[CasEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given kind.
    pub fn count_kind(&self, kind: CasEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Renders the trace as a sampled activity envelope over
    /// `[0, horizon_ns)` at `sample_period_ns` resolution: each sample is
    /// the fraction of its period covered by memory activity, so the
    /// envelope lies in `[0, 1]`.
    ///
    /// This is the waveform a probe on the memory would see (before the
    /// receiver chain adds gain and noise).
    ///
    /// # Panics
    ///
    /// Panics if `sample_period_ns <= 0` or `horizon_ns < 0`.
    pub fn activity_envelope(&self, horizon_ns: f64, sample_period_ns: f64) -> Vec<f64> {
        assert!(
            sample_period_ns > 0.0,
            "sample period must be positive, got {sample_period_ns}"
        );
        assert!(horizon_ns >= 0.0, "horizon must be non-negative");
        let n = (horizon_ns / sample_period_ns).floor() as usize;
        let mut envelope = vec![0.0; n];
        let mut sorted: Vec<&CasEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| a.start_ns.partial_cmp(&b.start_ns).unwrap());
        for ev in sorted {
            let first = (ev.start_ns / sample_period_ns).floor().max(0.0) as usize;
            let last_ns = ev.end_ns().min(horizon_ns);
            if ev.start_ns >= horizon_ns {
                break;
            }
            let last = (last_ns / sample_period_ns).ceil() as usize;
            for (i, env) in envelope
                .iter_mut()
                .enumerate()
                .take(last.min(n))
                .skip(first)
            {
                let bin_start = i as f64 * sample_period_ns;
                let bin_end = bin_start + sample_period_ns;
                let overlap =
                    (ev.end_ns().min(bin_end) - ev.start_ns.max(bin_start)).max(0.0);
                *env = (*env + overlap / sample_period_ns).min(1.0);
            }
        }
        envelope
    }
}

impl Extend<CasEvent> for CasTrace {
    fn extend<T: IntoIterator<Item = CasEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<CasEvent> for CasTrace {
    fn from_iter<T: IntoIterator<Item = CasEvent>>(iter: T) -> Self {
        CasTrace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, dur: f64, kind: CasEventKind) -> CasEvent {
        CasEvent {
            start_ns: start,
            duration_ns: dur,
            kind,
        }
    }

    #[test]
    fn counts_by_kind() {
        let trace: CasTrace = [
            ev(0.0, 10.0, CasEventKind::Read),
            ev(20.0, 10.0, CasEventKind::Write),
            ev(40.0, 100.0, CasEventKind::Refresh),
            ev(200.0, 10.0, CasEventKind::Read),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.count_kind(CasEventKind::Read), 2);
        assert_eq!(trace.count_kind(CasEventKind::Write), 1);
        assert_eq!(trace.count_kind(CasEventKind::Refresh), 1);
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn envelope_covers_active_bins() {
        let mut trace = CasTrace::new();
        trace.push(ev(100.0, 50.0, CasEventKind::Read));
        let env = trace.activity_envelope(300.0, 10.0);
        assert_eq!(env.len(), 30);
        // Bins 10..15 fully covered.
        for (i, &e) in env.iter().enumerate() {
            if (10..15).contains(&i) {
                assert!((e - 1.0).abs() < 1e-12, "bin {i}: {e}");
            } else if !(9..=15).contains(&i) {
                assert_eq!(e, 0.0, "bin {i}");
            }
        }
    }

    #[test]
    fn envelope_partial_coverage() {
        let mut trace = CasTrace::new();
        trace.push(ev(5.0, 5.0, CasEventKind::Read)); // covers half of bin 0 (0..10)
        let env = trace.activity_envelope(20.0, 10.0);
        assert!((env[0] - 0.5).abs() < 1e-12);
        assert_eq!(env[1], 0.0);
    }

    #[test]
    fn envelope_clamps_overlapping_events() {
        let mut trace = CasTrace::new();
        trace.push(ev(0.0, 10.0, CasEventKind::Read));
        trace.push(ev(0.0, 10.0, CasEventKind::Write));
        let env = trace.activity_envelope(10.0, 10.0);
        assert_eq!(env[0], 1.0);
    }

    #[test]
    fn envelope_ignores_events_past_horizon() {
        let mut trace = CasTrace::new();
        trace.push(ev(1000.0, 10.0, CasEventKind::Read));
        let env = trace.activity_envelope(100.0, 10.0);
        assert!(env.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn empty_trace() {
        let trace = CasTrace::new();
        assert!(trace.is_empty());
        assert!(trace.activity_envelope(0.0, 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_period_panics() {
        CasTrace::new().activity_envelope(100.0, 0.0);
    }
}
