//! Splitting a capture into overlapping chunks.
//!
//! A chunk has a *core* range `[start, end)` — the samples this chunk is
//! responsible for producing — and a *padded* range that extends the core
//! by `margin` samples on each side (clipped to the signal). Workers read
//! the padded range and write the core range, so cores tile the signal
//! disjointly while every windowed computation near a seam still sees the
//! same context it would in a single-threaded pass.
//!
//! The margin is chosen by the caller from the largest context any stage
//! needs: `max(norm_window / 2, fir_group_delay)` for the EMPROF analysis
//! chain (DESIGN.md §8 derives why that bound is tight).

/// One chunk of a length-`len` signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the plan (0-based, in signal order).
    pub index: usize,
    /// First sample of the core range.
    pub start: usize,
    /// One past the last sample of the core range.
    pub end: usize,
    /// First sample of the padded range (`start` minus the margin,
    /// clipped to 0).
    pub padded_start: usize,
    /// One past the last sample of the padded range (`end` plus the
    /// margin, clipped to the signal length).
    pub padded_end: usize,
}

impl Chunk {
    /// Core width in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the core range is empty (never true for planned chunks).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An overlap-chunked partition of a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    chunks: Vec<Chunk>,
    len: usize,
    margin: usize,
}

impl ChunkPlan {
    /// Plans up to `max_chunks` near-equal chunks over `len` samples with
    /// the given overlap `margin`.
    ///
    /// Fewer chunks are produced when `len` is too small for every chunk
    /// to hold at least one sample; an empty signal yields an empty plan.
    /// Core ranges tile `[0, len)` exactly: disjoint, ordered, and
    /// covering every sample once.
    pub fn new(len: usize, max_chunks: usize, margin: usize) -> Self {
        let n_chunks = max_chunks.max(1).min(len);
        let mut chunks = Vec::with_capacity(n_chunks);
        if len > 0 {
            // Distribute the remainder over the leading chunks so sizes
            // differ by at most one sample.
            let base = len / n_chunks;
            let extra = len % n_chunks;
            let mut start = 0usize;
            for index in 0..n_chunks {
                let size = base + usize::from(index < extra);
                let end = start + size;
                chunks.push(Chunk {
                    index,
                    start,
                    end,
                    padded_start: start.saturating_sub(margin),
                    padded_end: (end + margin).min(len),
                });
                start = end;
            }
        }
        ChunkPlan { chunks, len, margin }
    }

    /// The planned chunks, in signal order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn count(&self) -> usize {
        self.chunks.len()
    }

    /// The planned signal length.
    pub fn signal_len(&self) -> usize {
        self.len
    }

    /// The overlap margin each padded range extends by.
    pub fn margin(&self) -> usize {
        self.margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_tile_the_signal() {
        for (len, chunks, margin) in
            [(100, 4, 10), (101, 4, 0), (7, 16, 3), (1, 1, 5), (1000, 3, 999)]
        {
            let plan = ChunkPlan::new(len, chunks, margin);
            let mut cursor = 0;
            for c in plan.chunks() {
                assert_eq!(c.start, cursor, "gap before chunk {}", c.index);
                assert!(c.end > c.start, "empty chunk {}", c.index);
                assert!(c.padded_start <= c.start && c.padded_end >= c.end);
                assert!(c.padded_end <= len);
                cursor = c.end;
            }
            assert_eq!(cursor, len, "cores must cover the signal");
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let plan = ChunkPlan::new(103, 4, 0);
        let sizes: Vec<usize> = plan.chunks().iter().map(Chunk::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn margins_are_clipped_to_bounds() {
        let plan = ChunkPlan::new(100, 2, 30);
        let c0 = plan.chunks()[0];
        let c1 = plan.chunks()[1];
        assert_eq!(c0.padded_start, 0);
        assert_eq!(c0.padded_end, 80);
        assert_eq!(c1.padded_start, 20);
        assert_eq!(c1.padded_end, 100);
    }

    #[test]
    fn more_chunks_than_samples_degrades_gracefully() {
        let plan = ChunkPlan::new(3, 8, 1);
        assert_eq!(plan.count(), 3);
        assert!(plan.chunks().iter().all(|c| c.len() == 1));
    }

    #[test]
    fn empty_signal_gives_empty_plan() {
        let plan = ChunkPlan::new(0, 4, 10);
        assert_eq!(plan.count(), 0);
        assert_eq!(plan.signal_len(), 0);
    }
}
