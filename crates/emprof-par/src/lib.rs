//! # emprof-par — the pipeline's parallel execution layer
//!
//! Captures run to tens of millions of samples (Section IV of the paper),
//! and every analysis stage — FIR band-limiting, resampling, moving
//! min/max normalization, dip detection — is embarrassingly parallel over
//! sample ranges *provided each worker sees enough context around its
//! range*. This crate supplies the three pieces the rest of the workspace
//! builds on:
//!
//! * [`Parallelism`] — a resolved worker count: explicit override,
//!   `EMPROF_THREADS` environment variable, or
//!   [`std::thread::available_parallelism`].
//! * [`pool::parallel_map`] — a scoped-thread fork/join map with atomic
//!   work claiming. No queues persist between calls; worker lifetime is
//!   bounded by the call, so the crate needs no `unsafe` and no
//!   dependencies.
//! * [`chunk::ChunkPlan`] — splits a capture into near-equal chunks with
//!   an overlap *margin* on each side, sized by the caller from the
//!   normalization window and FIR group delay (see DESIGN.md §8 for the
//!   invariant).
//!
//! The contract every user of this crate upholds: **the parallel result
//! is bit-for-bit identical to the sequential result**, for any thread
//! count. Parallelism here changes wall-clock time, never output.
//!
//! # Example
//!
//! ```
//! use emprof_par::{chunk::ChunkPlan, pool, Parallelism};
//!
//! let signal: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
//! let par = Parallelism::new(4);
//! let plan = ChunkPlan::new(signal.len(), par.get(), 32);
//! let partial_sums = pool::parallel_map(par, plan.chunks(), |c| {
//!     signal[c.start..c.end].iter().sum::<f64>()
//! });
//! let total: f64 = partial_sums.iter().sum();
//! assert_eq!(total, signal.iter().sum::<f64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod pool;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "EMPROF_THREADS";

/// A resolved, validated worker count (always at least 1).
///
/// `Parallelism` is the value threaded through the pipeline: the CLI
/// resolves one per invocation (flag > environment > hardware) and every
/// stage sizes its fork/join maps from it. A count of 1 means "run the
/// plain sequential code path" — callers use [`Parallelism::is_sequential`]
/// to skip chunking entirely, which is what `--threads 1` relies on for
/// bit-exact debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Exactly one worker: the sequential path.
    pub fn sequential() -> Self {
        Parallelism(1)
    }

    /// An explicit worker count; zero is clamped to 1.
    pub fn new(threads: usize) -> Self {
        Parallelism(threads.max(1))
    }

    /// The hardware's available parallelism (1 if it cannot be queried).
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Resolution used by the CLI: an explicit override wins, then a
    /// parsable `EMPROF_THREADS` environment variable, then the hardware.
    pub fn resolve(explicit: Option<usize>) -> Self {
        if let Some(n) = explicit {
            return Parallelism::new(n);
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return Parallelism::new(n);
                }
            }
        }
        Parallelism::available()
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether this is the single-worker (plain sequential) setting.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::available`].
    fn default() -> Self {
        Parallelism::available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert!(Parallelism::new(0).is_sequential());
    }

    #[test]
    fn sequential_is_one() {
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::sequential().get(), 1);
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    fn explicit_override_wins() {
        assert_eq!(Parallelism::resolve(Some(3)).get(), 3);
        assert_eq!(Parallelism::resolve(Some(0)).get(), 1);
    }
}
