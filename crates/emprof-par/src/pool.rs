//! Scoped-thread fork/join execution.
//!
//! Workers are plain [`std::thread::scope`] threads claiming item indices
//! from a shared atomic counter — cheap dynamic load balancing without a
//! persistent pool, work queues, or `unsafe`. Thread spawn cost (a few
//! tens of microseconds) is negligible against the multi-million-sample
//! chunks the pipeline feeds through here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use emprof_obs as obs;

use crate::Parallelism;

/// Applies `f` to every item, possibly in parallel, returning results in
/// item order.
///
/// With a sequential [`Parallelism`] (or fewer than two items) this is a
/// plain iterator map on the calling thread. Otherwise
/// `min(par.get(), items.len())` scoped workers claim indices from an
/// atomic counter and results are reassembled by index, so the output
/// order — and, because `f` sees one item at a time, the output *values*
/// — are identical to the sequential map for any thread count.
///
/// A panic in `f` propagates to the caller once all workers have
/// finished, matching `std::thread::scope` semantics.
pub fn parallel_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if par.is_sequential() || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let _span = obs::span!("par.map");
    let threads = par.get().min(items.len());
    obs::gauge_set!("par.threads", threads as f64);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send only fails when the collector is gone (it
                // panicked); stop and let the scope unwind.
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // The channel closes when every worker has exited, panicked or
        // not, so this loop always terminates.
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item claimed by a worker"))
        .collect()
}

/// Produces a length-`len` vector by evaluating `f` over disjoint index
/// ranges in parallel and concatenating the pieces in order.
///
/// `f` must return exactly `range.len()` elements for its range. Ranges
/// tile `[0, len)`; how they are split across workers never affects the
/// output, only the wall-clock time.
pub fn map_ranges<R, F>(par: Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if par.is_sequential() || len == 0 {
        return f(0..len);
    }
    let plan = crate::chunk::ChunkPlan::new(len, par.get(), 0);
    let pieces = parallel_map(par, plan.chunks(), |c| f(c.start..c.end));
    let mut out = Vec::with_capacity(len);
    for (piece, c) in pieces.into_iter().zip(plan.chunks()) {
        assert_eq!(
            piece.len(),
            c.len(),
            "range closure must produce exactly its range"
        );
        out.extend(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..997).collect();
        let seq = parallel_map(Parallelism::sequential(), &items, |&x| x * x);
        for threads in [2, 3, 8] {
            let par = parallel_map(Parallelism::new(threads), &items, |&x| x * x);
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn map_handles_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Parallelism::new(4), &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(Parallelism::new(4), &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn map_ranges_concatenates_in_order() {
        let seq: Vec<usize> = (0..10_001).collect();
        for threads in [1, 2, 5] {
            let got = map_ranges(Parallelism::new(threads), seq.len(), |r| {
                r.collect::<Vec<usize>>()
            });
            assert_eq!(got, seq, "threads {threads}");
        }
    }

    #[test]
    fn map_ranges_empty() {
        let got: Vec<u8> = map_ranges(Parallelism::new(3), 0, |_| Vec::new());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(Parallelism::new(4), &items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
