//! Detector configuration.

use crate::calib::CalibConfig;

/// Tuning parameters of the EMPROF detector.
///
/// The defaults implement the paper's guidance: the normalization window
/// is long enough that even a refresh-collision stall (2–3 µs) cannot
/// drag the moving maximum down, and the duration threshold sits
/// "significantly shorter than the LLC latency but significantly longer
/// than typical on-chip latencies" (Section IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmprofConfig {
    /// Moving min/max window, in samples.
    pub norm_window_samples: usize,
    /// Normalized level below which a sample counts as "stalled".
    pub threshold: f64,
    /// Minimum dip duration, in core cycles, for it to be reported
    /// (the on-chip/LLC discrimination threshold).
    pub min_duration_cycles: f64,
    /// Minimum dip duration in *samples*: a dip must be resolved by at
    /// least this many capture samples to be trusted. This is what makes
    /// the measurement bandwidth matter (Fig. 12): at 20 MHz a sample
    /// spans ~50 cycles, so short stalls become unresolvable even though
    /// they exceed `min_duration_cycles`.
    pub min_duration_samples: usize,
    /// Dips separated by at most this many samples are merged (noise can
    /// briefly poke a long dip above threshold).
    pub merge_gap_samples: usize,
    /// After thresholding, event edges are extended outward while the
    /// normalized signal stays below this level, recovering duration lost
    /// to the receiver's band-limiting. Set equal to `threshold` to
    /// disable refinement.
    pub edge_level: f64,
    /// Stalls at least this many cycles long are classified as
    /// DRAM-refresh collisions (Fig. 5: ~2–3 µs vs ~300 ns normal).
    pub refresh_min_cycles: f64,
    /// Online probe calibration (adaptive threshold/window under probe
    /// drift, DESIGN.md §15). Off by default; when off, every detector
    /// path is bit-identical to the static detector.
    pub calib: CalibConfig,
}

impl EmprofConfig {
    /// Derives a configuration from the capture sample rate and the
    /// profiled core's clock: the normalization window spans ~50 µs of
    /// signal and the duration threshold is 100 core cycles.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are positive and finite.
    pub fn for_rates(sample_rate_hz: f64, clock_hz: f64) -> Self {
        assert!(
            sample_rate_hz > 0.0 && sample_rate_hz.is_finite(),
            "sample rate must be positive, got {sample_rate_hz}"
        );
        assert!(
            clock_hz > 0.0 && clock_hz.is_finite(),
            "clock must be positive, got {clock_hz}"
        );
        let norm_window = (50e-6 * sample_rate_hz).round() as usize;
        EmprofConfig {
            norm_window_samples: norm_window.max(64),
            threshold: 0.35,
            // "Significantly shorter than the LLC latency but
            // significantly longer than typical on-chip latencies"
            // (Section IV): the shortest LLC-miss stalls (the Alcatel's
            // fast LPDDR memory) run ~130 cycles; bursts of back-to-back
            // LLC-*hit* fetch stalls blur into dips of ~100 cycles, so
            // the threshold sits between them.
            min_duration_cycles: 120.0,
            min_duration_samples: 5,
            merge_gap_samples: 2,
            edge_level: 0.5,
            refresh_min_cycles: 1200.0,
            calib: CalibConfig::off(),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.norm_window_samples == 0 {
            return Err("normalization window must be nonzero".into());
        }
        if !(0.0 < self.threshold && self.threshold < 1.0) {
            return Err(format!(
                "threshold must be in (0, 1), got {}",
                self.threshold
            ));
        }
        if !(self.edge_level >= self.threshold && self.edge_level < 1.0) {
            return Err(format!(
                "edge level {} must be in [threshold, 1)",
                self.edge_level
            ));
        }
        if !(self.min_duration_cycles > 0.0 && self.min_duration_cycles.is_finite()) {
            return Err(format!(
                "minimum duration must be positive, got {}",
                self.min_duration_cycles
            ));
        }
        if self.min_duration_samples == 0 {
            return Err("minimum duration in samples must be nonzero".into());
        }
        if self.refresh_min_cycles.partial_cmp(&self.min_duration_cycles)
            != Some(std::cmp::Ordering::Greater)
        {
            return Err(format!(
                "refresh threshold ({}) must exceed the minimum duration ({})",
                self.refresh_min_cycles, self.min_duration_cycles
            ));
        }
        self.calib.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_give_sane_defaults() {
        // Olimex at 40 MHz bandwidth.
        let c = EmprofConfig::for_rates(40e6, 1.008e9);
        c.validate().unwrap();
        assert_eq!(c.norm_window_samples, 2000); // 50 us at 40 MS/s
        // 100-cycle minimum ~ 4 samples at 25.2 cycles/sample.
        assert!((c.min_duration_cycles - 120.0).abs() < 1e-9);
        assert_eq!(c.min_duration_samples, 5);
    }

    #[test]
    fn simulator_rates_give_sane_defaults() {
        // SESC path: 20-cycle averaging of a 1 GHz trace = 50 MS/s.
        let c = EmprofConfig::for_rates(50e6, 1.0e9);
        c.validate().unwrap();
        assert!(c.norm_window_samples >= 64);
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut c = EmprofConfig::for_rates(40e6, 1e9);
        c.threshold = 0.0;
        assert!(c.validate().is_err());
        c.threshold = 1.2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_edge_below_threshold() {
        let mut c = EmprofConfig::for_rates(40e6, 1e9);
        c.edge_level = c.threshold - 0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_refresh_below_min_duration() {
        let mut c = EmprofConfig::for_rates(40e6, 1e9);
        c.refresh_min_cycles = 50.0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        EmprofConfig::for_rates(0.0, 1e9);
    }
}
