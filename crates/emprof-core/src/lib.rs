//! EMPROF: memory profiling via EM emanations.
//!
//! This crate is the reproduction's implementation of the paper's primary
//! contribution (Section IV): given the magnitude of a side-channel signal
//! captured around a processor's clock frequency, EMPROF
//!
//! 1. **normalizes** the signal to `[0, 1]` with a moving minimum/maximum,
//!    canceling probe-position gain and supply drift,
//! 2. **detects dips** whose duration exceeds a threshold chosen between
//!    typical on-chip latencies and the LLC miss latency,
//! 3. reports each dip as a [`StallEvent`] — an LLC-miss-induced processor
//!    stall with a position in the timeline and a measured latency in
//!    cycles — and
//! 4. classifies the microsecond-long stalls caused by DRAM-refresh
//!    collisions separately ([`StallKind::RefreshCollision`], Fig. 5).
//!
//! The same code profiles either a synthesized EM capture
//! (`emprof_emsim::CapturedSignal` magnitudes) or the simulator's power
//! trace averaged over 20-cycle intervals — the paper's two validation
//! paths. [`accuracy`] scores results against simulator ground truth the
//! way Tables II and III do.
//!
//! EMPROF needs no training and no knowledge of the profiled program —
//! the detector below is entirely signal-driven.
//!
//! # Example
//!
//! ```
//! use emprof_core::{Emprof, EmprofConfig};
//!
//! // A magnitude signal at 40 MS/s from a 1 GHz core: busy at ~5.0 with
//! // one 12-sample (300-cycle) stall dip.
//! let mut mag = vec![5.0; 4000];
//! for m in mag.iter_mut().skip(2000).take(12) { *m = 1.0; }
//!
//! let emprof = Emprof::new(EmprofConfig::for_rates(40e6, 1.0e9));
//! let profile = emprof.profile_magnitude(&mag, 40e6, 1.0e9);
//! assert_eq!(profile.miss_count(), 1);
//! let latency = profile.events()[0].duration_cycles;
//! assert!((200.0..450.0).contains(&latency));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod calib;
mod config;
mod detect;
mod fusion;
mod histogram;
mod parallel;
mod profile;
pub mod report;
pub mod section;
mod streaming;

pub use calib::{BlockParams, CalibConfig, Calibrator};
pub use config::EmprofConfig;
pub use detect::Emprof;
pub use fusion::{FusedDetector, FusionConfig, FusionReport};
pub use histogram::Histogram;
pub use profile::{Confidence, Profile, StallEvent, StallKind};
pub use streaming::{StreamingEmprof, StreamingStats};

pub use emprof_par::Parallelism;
