//! Signal-driven section isolation.
//!
//! The paper's microbenchmark brackets its miss-generating section with
//! tight "blank" loops whose signal is stable and dip-free, "which allows
//! us to identify the point in the signal where this loop ends and the
//! part of the application with LLC miss activity begins" (Section V-B).
//! This module implements that identification from the profile alone: the
//! two longest stall-free quiet spans are taken to be the marker loops and
//! the measured window lies between them.

use crate::profile::Profile;

/// A stall-free span of the capture, in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuietSpan {
    /// First sample of the span.
    pub start_sample: usize,
    /// One past the last sample.
    pub end_sample: usize,
}

impl QuietSpan {
    /// Span length in samples.
    pub fn len(&self) -> usize {
        self.end_sample - self.start_sample
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lists maximal stall-free spans at least `min_len` samples long, in time
/// order.
pub fn quiet_spans(profile: &Profile, min_len: usize) -> Vec<QuietSpan> {
    let mut spans = Vec::new();
    let mut cursor = 0usize;
    for e in profile.events() {
        if e.start_sample > cursor && e.start_sample - cursor >= min_len {
            spans.push(QuietSpan {
                start_sample: cursor,
                end_sample: e.start_sample,
            });
        }
        cursor = cursor.max(e.end_sample);
    }
    let total = profile.total_samples();
    if total > cursor && total - cursor >= min_len {
        spans.push(QuietSpan {
            start_sample: cursor,
            end_sample: total,
        });
    }
    spans
}

/// Identifies the measured window of a marker-bracketed run: the two
/// longest quiet spans are the identifier loops; the window is everything
/// between the end of the earlier one and the start of the later one.
///
/// Returns `None` when fewer than two sufficiently long quiet spans
/// exist, or when they do not bracket anything.
pub fn measured_window(profile: &Profile, min_quiet_samples: usize) -> Option<(usize, usize)> {
    let mut spans = quiet_spans(profile, min_quiet_samples);
    if spans.len() < 2 {
        return None;
    }
    // Two longest spans, then restore time order.
    spans.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let (mut a, mut b) = (spans[0], spans[1]);
    if a.start_sample > b.start_sample {
        std::mem::swap(&mut a, &mut b);
    }
    (b.start_sample > a.end_sample).then_some((a.end_sample, b.start_sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Confidence, StallEvent, StallKind};

    fn ev(start: usize, end: usize) -> StallEvent {
        StallEvent {
            start_sample: start,
            end_sample: end,
            duration_cycles: (end - start) as f64 * 25.0,
            kind: StallKind::Normal,
            confidence: Confidence::High,
        }
    }

    /// A microbenchmark-shaped profile: page-touch dips, long quiet span
    /// (blank loop), dense miss section, long quiet span, tail.
    fn microbench_profile() -> Profile {
        let mut events = Vec::new();
        // Page-touch phase: dips at 100..1000.
        for i in 0..5 {
            events.push(ev(100 + i * 150, 112 + i * 150));
        }
        // Quiet 1000..5000 (blank loop).
        // Miss section: dense dips 5000..8000.
        for i in 0..20 {
            events.push(ev(5000 + i * 150, 5012 + i * 150));
        }
        // Quiet 8000..12000 (blank loop), then end.
        Profile::new(events, 12_000, 40e6, 1.0e9)
    }

    #[test]
    fn quiet_spans_found() {
        let p = microbench_profile();
        let spans = quiet_spans(&p, 1000);
        assert_eq!(spans.len(), 2);
        // Last page-touch dip ends at 712; the blank loop runs to 5000.
        assert_eq!(spans[0].start_sample, 712);
        assert_eq!(spans[0].end_sample, 5000);
        // Last miss dip ends at 7862; the closing blank loop runs to 12000.
        assert_eq!(spans[1].start_sample, 7862);
        assert_eq!(spans[1].end_sample, 12_000);
    }

    #[test]
    fn measured_window_brackets_miss_section() {
        let p = microbench_profile();
        let (start, end) = measured_window(&p, 1000).expect("window found");
        assert_eq!(start, 5000);
        // Last dip ends at 5012 + 19*150 = 7862; quiet span starts there.
        assert_eq!(end, 7862);
        let sliced = p.slice_samples(start, end);
        assert_eq!(sliced.miss_count(), 20);
    }

    #[test]
    fn no_window_without_two_quiet_spans() {
        // Uniform dips everywhere: no bracketing loops.
        let events: Vec<StallEvent> = (0..50).map(|i| ev(i * 200, i * 200 + 12)).collect();
        let p = Profile::new(events, 10_000, 40e6, 1.0e9);
        assert_eq!(measured_window(&p, 1000), None);
    }

    #[test]
    fn empty_profile_is_one_big_quiet_span() {
        let p = Profile::new(vec![], 5_000, 40e6, 1.0e9);
        let spans = quiet_spans(&p, 100);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len(), 5_000);
        assert_eq!(measured_window(&p, 100), None);
    }

    #[test]
    fn min_len_filters_short_gaps() {
        let p = microbench_profile();
        // With a tiny min_len the inter-dip gaps also count.
        assert!(quiet_spans(&p, 10).len() > 2);
        // With a huge min_len nothing qualifies.
        assert!(quiet_spans(&p, 100_000).is_empty());
    }
}
