//! Fixed-width histograms for stall-latency distributions (Fig. 11).

/// A histogram over `[0, max)` with fixed-width bins plus an overflow bin.
///
/// # Example
///
/// ```
/// use emprof_core::Histogram;
///
/// let h = Histogram::from_values([50.0, 150.0, 150.0, 9000.0], 100.0, 1000.0);
/// assert_eq!(h.count(0), 1);      // 50 in [0, 100)
/// assert_eq!(h.count(1), 2);      // both 150s in [100, 200)
/// assert_eq!(h.overflow(), 1);    // 9000 beyond max
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    bin_width: u64,
}

impl Histogram {
    /// Builds a histogram from an iterator of values.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width <= 0` or `max <= 0`.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I, bin_width: f64, max: f64) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive, got {bin_width}");
        assert!(max > 0.0, "histogram range must be positive, got {max}");
        let num_bins = (max / bin_width).ceil() as usize;
        let mut bins = vec![0u64; num_bins];
        let mut overflow = 0;
        for v in values {
            if v < 0.0 {
                continue; // negative latencies cannot occur; ignore defensively
            }
            let idx = (v / bin_width) as usize;
            if idx < num_bins {
                bins[idx] += 1;
            } else {
                overflow += 1;
            }
        }
        Histogram {
            bins,
            overflow,
            bin_width: bin_width as u64,
        }
    }

    /// Count in bin `i` (covering `[i*w, (i+1)*w)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// All in-range bins.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Values at or beyond the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of in-range bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations, including overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> u64 {
        self.bin_width * i as u64
    }

    /// Fraction of observations in bins at or above `from_bin` (tail mass,
    /// including overflow) — how "thick" the latency tail is, the
    /// cross-device comparison of Fig. 11.
    pub fn tail_fraction(&self, from_bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let tail: u64 = self.bins[from_bin.min(self.bins.len())..]
            .iter()
            .sum::<u64>()
            + self.overflow;
        tail as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_edges_are_half_open() {
        let h = Histogram::from_values([0.0, 99.9, 100.0], 100.0, 300.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn overflow_counted() {
        let h = Histogram::from_values([1000.0, 299.0], 100.0, 300.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn negative_values_ignored() {
        let h = Histogram::from_values([-5.0, 5.0], 10.0, 100.0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn tail_fraction() {
        let h = Histogram::from_values([10.0, 10.0, 10.0, 250.0, 900.0], 100.0, 500.0);
        assert!((h.tail_fraction(2) - 2.0 / 5.0).abs() < 1e-12);
        assert!((h.tail_fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::from_values(std::iter::empty(), 100.0, 500.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.tail_fraction(0), 0.0);
    }

    #[test]
    fn bin_starts() {
        let h = Histogram::from_values(std::iter::empty(), 50.0, 200.0);
        assert_eq!(h.num_bins(), 4);
        assert_eq!(h.bin_start(3), 150);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        Histogram::from_values([1.0], 0.0, 10.0);
    }
}
