//! Streaming (online) EMPROF.
//!
//! The paper's SPEC captures already exceed what a spectrum analyzer can
//! buffer ("the N9020A MXA has a limit on how long it can continuously
//! record a signal", Section VI), and a deployed profiler would watch a
//! device for hours. This module runs the EMPROF pipeline incrementally:
//! samples are pushed as they arrive, completed stall events are emitted
//! as soon as they can no longer change, and memory use is bounded by the
//! normalization window — independent of capture length.
//!
//! The streaming detector is *exactly equivalent* to the batch detector
//! on the interior of a capture: it computes the same centered moving
//! min/max, the same thresholding, merging, and edge refinement. (At the
//! very edges of a finite capture the batch detector sees truncated
//! windows; feed the same finite signal through [`StreamingEmprof`] and
//! the results match the batch profile event for event — see the
//! equivalence tests.)

use std::collections::VecDeque;
use std::time::Instant;

use emprof_obs as obs;
use emprof_signal::fused;

use crate::calib::{BlockParams, Calibrator};
use crate::config::EmprofConfig;
use crate::profile::{Confidence, Profile, StallEvent, StallKind};

/// How many pushed samples accumulate between telemetry flushes. Pushing
/// is the hot path, so the `detect.samples` counter and the streaming
/// gauges are updated in batches rather than per sample.
const OBS_FLUSH_INTERVAL: usize = 65_536;

/// A point-in-time view of a [`StreamingEmprof`]'s progress, from
/// [`StreamingEmprof::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingStats {
    /// Total magnitude samples pushed so far.
    pub samples_pushed: usize,
    /// Stall events finalized so far (drained or not).
    pub events_emitted: usize,
    /// Non-finite samples rejected at the ingest boundary (see
    /// [`StreamingEmprof::push`]).
    pub samples_rejected: usize,
    /// Current buffered-memory footprint in samples.
    pub buffered_samples: usize,
    /// Observed ingest throughput in samples per second of wall time;
    /// `None` before the first sample arrives.
    pub samples_per_sec: Option<f64>,
}

/// Incremental EMPROF detector with bounded memory.
///
/// # Example
///
/// ```
/// use emprof_core::{EmprofConfig, StreamingEmprof};
///
/// let mut s = StreamingEmprof::new(EmprofConfig::for_rates(40e6, 1.0e9), 40e6, 1.0e9);
/// // Push a busy signal with one 12-sample stall dip.
/// for i in 0..30_000 {
///     let v = if (15_000..15_012).contains(&i) { 0.8 } else { 5.0 };
///     s.push(v);
/// }
/// let profile = s.finish();
/// assert_eq!(profile.miss_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEmprof {
    config: EmprofConfig,
    sample_rate_hz: f64,
    clock_hz: f64,
    /// Raw samples still needed: the normalization window must be able to
    /// look `half` samples ahead of the sample being normalized, and edge
    /// refinement needs the normalized values themselves, so we buffer
    /// `window` raw samples.
    raw: VecDeque<f64>,
    /// Index of the first sample in `raw`.
    raw_base: usize,
    /// Monotonic deques of (index, value) for windowed min and max.
    min_wedge: VecDeque<(usize, f64)>,
    max_wedge: VecDeque<(usize, f64)>,
    /// Total samples pushed.
    pushed: usize,
    /// Next sample index to normalize (trails `pushed` by `half`).
    normalized: usize,
    /// Recent normalized samples (for edge refinement), indexed from
    /// `norm_base`.
    norm: VecDeque<f64>,
    norm_base: usize,
    /// Current below-threshold run start, if inside a dip.
    open_dip: Option<usize>,
    /// Completed raw dips awaiting merge/refine/flush, as (start, end).
    pending: VecDeque<(usize, usize)>,
    /// Most recent normalized index at or above `edge_level` — the left
    /// boundary any future edge refinement could reach, hence the trim
    /// point for normalized history while no dip is in flight.
    last_high: usize,
    /// Finished events ready for the caller.
    events: Vec<StallEvent>,
    /// The most recent refined run as `(start, end, represented)`,
    /// *before* the duration filter. Batch applies the filter after its
    /// final abut-merge pass, so a run too short to be an event on its own
    /// can still extend (or seed) one when a later run abuts it;
    /// `represented` records whether the run currently has an entry in
    /// `events`.
    last_run: Option<(usize, usize, bool)>,
    /// Events already drained via [`StreamingEmprof::drain_events`].
    drained: usize,
    /// Non-finite samples rejected at the ingest boundary.
    rejected: usize,
    /// Whether the most recent refined run ended on a normalized sample
    /// at or above `edge_level`. A cleanly-ended run can never be merged
    /// into by a later dip (that sample blocks left refinement), so its
    /// event — if any — is immutable; a clipped run is still growing and
    /// its event must not be drained yet.
    tail_sealed: bool,
    /// Wall-clock instant of the first push, for throughput reporting.
    started_at: Option<Instant>,
    /// Samples pushed since the last telemetry flush.
    unflushed: usize,
    /// Survivor positions where runs of rejected samples collapsed out
    /// (the `survivor_dropout_points` convention, deduplicated). Events
    /// touching one carry [`Confidence::Degraded`]; trimmed once no
    /// future or still-mutable event can reach back to them.
    gaps: VecDeque<usize>,
    /// Calibration block length (meaningful in adaptive mode).
    calib_block: usize,
    /// Per processed calibration block: was the confidence state machine
    /// degraded? Indexed by block; an event is degraded by the block its
    /// *end* falls in, so in-place merges recompute consistently with
    /// the batch final-extent computation. One bool per ~window samples.
    block_degraded: Vec<bool>,
    /// Online-calibration state; `Some` iff `config.calib.enabled`. When
    /// set, the wedge/normalize machinery above is bypassed entirely and
    /// detection runs block-by-block through the same gated fused kernel
    /// and parameter schedule as the batch adaptive path.
    adaptive: Option<AdaptiveState>,
}

/// Streaming state of the adaptive (calibrated) detector. The stream is
/// cut into the same absolute calibration blocks as the batch schedule;
/// each block, once its right normalization context is buffered, runs
/// through `fused::detect_runs_range_gated` with the causally-computed
/// [`BlockParams`], and the resulting runs are stitched exactly like the
/// parallel detector's seams. Everything downstream (refinement,
/// merge/duration/classify, drain sealing) reuses the static streaming
/// machinery.
#[derive(Debug, Clone)]
struct AdaptiveState {
    /// Calibration block length in samples.
    block: usize,
    /// Half the *base* normalization window — the uniform lookahead.
    /// Adaptation only ever shrinks the window, so buffering `half`
    /// samples past a block suffices for any adapted window.
    half: usize,
    /// Buffered survivor samples from `buf_base` onward.
    buf: Vec<f64>,
    buf_base: usize,
    cal: Calibrator,
    /// Parameters for block `next_block` (causal: computed from the
    /// blocks before it).
    cur: BlockParams,
    next_block: usize,
    /// Detection frontier: samples in `[0, position)` have been through
    /// the kernel.
    position: usize,
    /// Stitched below-threshold runs (batch merge criterion applied)
    /// awaiting finality.
    pending: VecDeque<(usize, usize)>,
    /// Stitched below-edge runs (gap-0 rejoin across block seams); the
    /// last run is always retained — it may still be growing.
    edge_runs: VecDeque<(usize, usize)>,
}

impl StreamingEmprof {
    /// Creates a streaming detector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EmprofConfig::validate`] or a
    /// rate is not positive.
    pub fn new(config: EmprofConfig, sample_rate_hz: f64, clock_hz: f64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid EMPROF configuration: {e}"));
        assert!(
            sample_rate_hz > 0.0 && clock_hz > 0.0,
            "rates must be positive"
        );
        let calib_block = config.calib.block(config.norm_window_samples).max(1);
        let adaptive = config.calib.enabled.then(|| {
            let cal = Calibrator::new(&config);
            let cur = cal.params();
            AdaptiveState {
                block: calib_block,
                half: config.norm_window_samples / 2,
                buf: Vec::new(),
                buf_base: 0,
                cal,
                cur,
                next_block: 0,
                position: 0,
                pending: VecDeque::new(),
                edge_runs: VecDeque::new(),
            }
        });
        StreamingEmprof {
            config,
            sample_rate_hz,
            clock_hz,
            raw: VecDeque::new(),
            raw_base: 0,
            min_wedge: VecDeque::new(),
            max_wedge: VecDeque::new(),
            pushed: 0,
            normalized: 0,
            norm: VecDeque::new(),
            norm_base: 0,
            open_dip: None,
            pending: VecDeque::new(),
            last_high: 0,
            events: Vec::new(),
            last_run: None,
            drained: 0,
            rejected: 0,
            tail_sealed: true,
            started_at: None,
            unflushed: 0,
            gaps: VecDeque::new(),
            calib_block,
            block_degraded: Vec::new(),
            adaptive,
        }
    }

    /// Core cycles per capture sample.
    pub fn cycles_per_sample(&self) -> f64 {
        self.clock_hz / self.sample_rate_hz
    }

    /// The detector configuration this stream was built with.
    pub fn config(&self) -> EmprofConfig {
        self.config
    }

    /// The capture sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The profiled core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Pushes one magnitude sample.
    ///
    /// Non-finite samples (NaN, ±inf) are **rejected, not processed**:
    /// a single NaN would otherwise lodge permanently in the moving
    /// min/max wedges and poison every window that sees it. Rejected
    /// samples are counted (`detect.samples_rejected` telemetry,
    /// [`samples_rejected`](StreamingEmprof::samples_rejected)) and the
    /// detector proceeds on the surviving subsequence — all event
    /// indices are positions within the *accepted* samples, identical
    /// to running the batch detector on the pre-filtered signal.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            // Record where the gap collapsed to in survivor coordinates
            // (one point per contiguous run of rejections): events
            // touching it are demoted to degraded confidence.
            if self.gaps.back() != Some(&self.pushed) {
                self.gaps.push_back(self.pushed);
            }
            obs::counter_add!("detect.samples_rejected", 1);
            return;
        }
        if self.started_at.is_none() {
            self.started_at = Some(Instant::now());
        }
        self.unflushed += 1;
        if self.unflushed >= OBS_FLUSH_INTERVAL {
            self.flush_obs();
        }
        if self.adaptive.is_some() {
            self.push_adaptive(value);
            return;
        }
        let idx = self.pushed;
        self.pushed += 1;
        self.raw.push_back(value);
        // Admit into the monotonic wedges.
        while let Some(&(_, v)) = self.min_wedge.back() {
            if value <= v {
                self.min_wedge.pop_back();
            } else {
                break;
            }
        }
        self.min_wedge.push_back((idx, value));
        while let Some(&(_, v)) = self.max_wedge.back() {
            if value >= v {
                self.max_wedge.pop_back();
            } else {
                break;
            }
        }
        self.max_wedge.push_back((idx, value));

        // Normalize every sample whose centered window is now complete:
        // sample i needs samples up to i + half.
        let half = self.config.norm_window_samples / 2;
        while self.normalized + half < self.pushed {
            self.normalize_one();
        }
        self.process_pending(false);
    }

    /// Pushes a batch of samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, samples: I) {
        for s in samples {
            self.push(s);
        }
    }

    /// Pushes a batch of samples from a slice. Equivalent to
    /// [`extend`](StreamingEmprof::extend); this is the server ingest
    /// hot-path entry point, taking the borrowed batch directly.
    pub fn extend_from_slice(&mut self, samples: &[f64]) {
        for &s in samples {
            self.push(s);
        }
    }

    /// Normalizes sample `self.normalized` using the exact centered
    /// window the batch detector uses, then advances the detector state.
    fn normalize_one(&mut self) {
        let i = self.normalized;
        let half = self.config.norm_window_samples / 2;
        let win_start = i.saturating_sub(half);
        // Evict wedge entries that fell out of the window.
        while self.min_wedge.front().is_some_and(|&(j, _)| j < win_start) {
            self.min_wedge.pop_front();
        }
        while self.max_wedge.front().is_some_and(|&(j, _)| j < win_start) {
            self.max_wedge.pop_front();
        }
        let lo = self.min_wedge.front().expect("window non-empty").1;
        let hi = self.max_wedge.front().expect("window non-empty").1;
        let value = self.raw[i - self.raw_base];
        // Flat windows (hi == lo) carry no dip information and read as
        // fully busy — mirroring `stats::normalize_moving_minmax`.
        let normalized = if hi > lo {
            ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.norm.push_back(normalized);
        self.normalized += 1;

        // Threshold crossing bookkeeping.
        if normalized < self.config.threshold {
            if self.open_dip.is_none() {
                self.open_dip = Some(i);
            }
        } else if let Some(start) = self.open_dip.take() {
            self.push_raw_dip(start, i);
        }
        if normalized >= self.config.edge_level {
            self.last_high = i;
        }
        // With nothing in flight, normalized history older than the last
        // above-edge sample can never be consulted again.
        if self.pending.is_empty() && self.open_dip.is_none() {
            while self.norm_base < self.last_high {
                self.norm.pop_front();
                self.norm_base += 1;
            }
        }

        // Trim raw samples no longer needed by any future window. Sample j
        // is needed while some i with |i - j| <= half is un-normalized;
        // the oldest such j is normalized - half.
        let keep_from = self.normalized.saturating_sub(half + 1);
        while self.raw_base < keep_from {
            self.raw.pop_front();
            self.raw_base += 1;
        }
    }

    fn push_raw_dip(&mut self, start: usize, end: usize) {
        // Merge with the previous pending dip when close enough.
        if let Some(last) = self.pending.back_mut() {
            if start - last.1 <= self.config.merge_gap_samples {
                last.1 = end;
                return;
            }
        }
        self.pending.push_back((start, end));
    }

    /// Refines and emits pending dips that can no longer change. A dip is
    /// final once normalization has advanced `merge_gap + 1` samples past
    /// its end (no future dip can merge into it) and its right edge has
    /// been refined to a sample at or above `edge_level`.
    fn process_pending(&mut self, flush: bool) {
        let gap = self.config.merge_gap_samples;
        let edge = self.config.edge_level;
        while let Some(&(start, end)) = self.pending.front() {
            if !flush {
                // It may still merge with an ongoing or future dip.
                if self.open_dip.is_some() {
                    break;
                }
                if self.normalized < end + gap + 2 {
                    break;
                }
            }
            // Edge refinement within the retained normalized history. The
            // left bound is the previous *refined run* (not the previous
            // emitted event — a run can fail the duration filter and
            // still bound refinement, exactly as in the batch detector).
            let mut s = start;
            let left_bound = self
                .last_run
                .map(|(_, end, _)| end)
                .unwrap_or(0)
                .max(self.norm_base);
            while s > left_bound && self.norm_at(s - 1).is_some_and(|v| v < edge) {
                s -= 1;
            }
            let right_bound = self
                .pending
                .get(1)
                .map(|n| n.0)
                .unwrap_or(self.normalized);
            let mut e = end;
            while e < right_bound && self.norm_at(e).is_some_and(|v| v < edge) {
                e += 1;
            }
            if !flush && e == right_bound && self.pending.len() < 2 && e == self.normalized {
                // The right edge is still growing; wait for more samples.
                break;
            }
            self.pending.pop_front();
            self.tail_sealed = self.norm_at(e).is_some_and(|v| v >= edge);
            self.emit(s, e);
            // Trim normalized history: keep what edge refinement of the
            // next dip might need (back to this event's end).
            let keep_from = e.min(self.normalized.saturating_sub(1));
            while self.norm_base < keep_from {
                self.norm.pop_front();
                self.norm_base += 1;
            }
        }
    }

    /// Adaptive-mode ingest: buffer the survivor sample, run the gated
    /// kernel over every calibration block whose right normalization
    /// context is now complete, and flush finalized dips.
    fn push_adaptive(&mut self, value: f64) {
        let mut ad = self.adaptive.take().expect("adaptive mode");
        self.pushed += 1;
        ad.buf.push(value);
        while (ad.next_block + 1) * ad.block + ad.half <= self.pushed {
            self.process_block(&mut ad);
        }
        self.adaptive_process_pending(&mut ad, false);
        self.adaptive = Some(ad);
    }

    /// Runs block `ad.next_block` through the gated fused kernel with
    /// its causal [`BlockParams`], stitches the resulting runs (the
    /// parallel detector's seam rules), observes the block for the
    /// calibrator, and advances the frontier. Identical inputs to the
    /// batch adaptive path's per-block kernel call, by construction.
    fn process_block(&mut self, ad: &mut AdaptiveState) {
        let k = ad.next_block;
        let start = k * ad.block;
        // Truncated only at the true end of the capture (finish), which
        // is exactly when the batch kernel's window clips there too.
        let end = ((k + 1) * ad.block).min(self.pushed);
        let p = ad.cur;
        let runs = fused::detect_runs_range_gated(
            &ad.buf,
            p.window,
            p.threshold,
            p.edge_level,
            p.min_range,
            start - ad.buf_base,
            end - ad.buf_base,
            None,
        )
        .expect("rejection happens at ingest; the buffer is finite");
        let gap = self.config.merge_gap_samples;
        for (s, e) in runs.below_threshold {
            let (s, e) = (s + ad.buf_base, e + ad.buf_base);
            match ad.pending.back_mut() {
                Some(last) if s - last.1 <= gap => last.1 = e,
                _ => ad.pending.push_back((s, e)),
            }
        }
        for (s, e) in runs.below_edge {
            let (s, e) = (s + ad.buf_base, e + ad.buf_base);
            match ad.edge_runs.back_mut() {
                Some(last) if last.1 == s => last.1 = e,
                _ => ad.edge_runs.push_back((s, e)),
            }
        }
        ad.cal
            .observe_block(&ad.buf[start - ad.buf_base..end - ad.buf_base]);
        self.block_degraded.push(p.degraded);
        ad.next_block += 1;
        ad.position = end;
        ad.cur = ad.cal.params();
        // Trim the sample buffer to what the next block's (base) window
        // can still reach, and below-edge runs to what refinement of the
        // still-pending dips can still consult — always keeping the last
        // run, which may still be growing across the frontier. During
        // `finish` the final right-truncated block can place the nominal
        // trim point past the capture end, so clamp to what was pushed.
        let keep_from = (ad.next_block * ad.block)
            .saturating_sub(ad.half)
            .min(self.pushed)
            .max(ad.buf_base);
        ad.buf.drain(..keep_from - ad.buf_base);
        ad.buf_base = keep_from;
        let bound = ad.pending.front().map_or(ad.position, |r| r.0);
        while ad.edge_runs.len() > 1 && ad.edge_runs.front().is_some_and(|r| r.1 <= bound) {
            ad.edge_runs.pop_front();
        }
    }

    /// Adaptive-mode counterpart of [`process_pending`]: same finality
    /// and emission rules, but edge refinement consults the stitched
    /// below-edge *run list* (as the batch adaptive path does via
    /// `refine_from_runs`) instead of a normalized-sample history.
    ///
    /// [`process_pending`]: StreamingEmprof::process_pending
    fn adaptive_process_pending(&mut self, ad: &mut AdaptiveState, flush: bool) {
        let gap = self.config.merge_gap_samples;
        while let Some(&(start, end)) = ad.pending.front() {
            // Final once the frontier is far enough past the run's end
            // that no future run can merge into it (a run ending exactly
            // at the frontier may still grow into the next block).
            if !flush && ad.position < end + gap + 1 {
                break;
            }
            let left_bound = self.last_run.map(|(_, e, _)| e).unwrap_or(0);
            let cs = *ad
                .edge_runs
                .iter()
                .find(|r| r.1 > start)
                .expect("run start lies in a below-edge run");
            debug_assert!(cs.0 <= start, "run start not below edge");
            let refined_s = cs.0.max(left_bound);
            let right_bound = ad.pending.get(1).map(|n| n.0).unwrap_or(ad.position);
            let ce = *ad
                .edge_runs
                .iter()
                .find(|r| r.1 > end - 1)
                .expect("run end lies in a below-edge run");
            debug_assert!(ce.0 < end, "run end not below edge");
            let refined_e = ce.1.min(right_bound);
            if !flush && refined_e == ad.position && ad.pending.len() < 2 {
                // The right edge is still growing; wait for more blocks.
                break;
            }
            ad.pending.pop_front();
            // Sealed iff the run ended on an at-or-above-edge sample —
            // i.e. at its container's settled end, not clipped by a
            // neighbour or the frontier.
            self.tail_sealed = refined_e == ce.1 && ce.1 < ad.position;
            self.emit(refined_s, refined_e);
        }
    }

    fn norm_at(&self, idx: usize) -> Option<f64> {
        idx.checked_sub(self.norm_base)
            .and_then(|o| self.norm.get(o))
            .copied()
    }

    /// The duration filter floor, in samples.
    fn min_samples(&self) -> f64 {
        (self.config.min_duration_cycles / self.cycles_per_sample())
            .max(self.config.min_duration_samples as f64)
    }

    /// Confidence of an event spanning `[start, end)`: degraded when it
    /// touches a collapsed dropout gap (`start <= p <= end + 1`, the
    /// `emprof_fault::flag_degraded` criterion) or, in adaptive mode,
    /// when the calibration state machine was degraded in the block the
    /// event *ends* in — the same final-extent rule the batch paths
    /// apply, so in-place merges can recompute it consistently.
    fn event_confidence(&self, start: usize, end: usize) -> Confidence {
        if self.gaps.iter().any(|&p| start <= p && p <= end + 1) {
            return Confidence::Degraded;
        }
        if !self.block_degraded.is_empty() {
            let k = ((end.saturating_sub(1)) / self.calib_block)
                .min(self.block_degraded.len() - 1);
            if self.block_degraded[k] {
                return Confidence::Degraded;
            }
        }
        Confidence::High
    }

    fn make_event(&self, start: usize, end: usize) -> StallEvent {
        let duration_cycles = (end - start) as f64 * self.cycles_per_sample();
        StallEvent {
            start_sample: start,
            end_sample: end,
            duration_cycles,
            kind: if duration_cycles >= self.config.refresh_min_cycles {
                StallKind::RefreshCollision
            } else {
                StallKind::Normal
            },
            confidence: self.event_confidence(start, end),
        }
    }

    /// Admits a refined run. Mirrors the batch detector's ordering
    /// exactly: abutting runs merge first, and the duration filter applies
    /// to the *merged* run — so a sub-threshold run can still grow into
    /// (or extend) an event when a neighbour touches it.
    fn emit(&mut self, start: usize, end: usize) {
        let min_samples = self.min_samples();
        if let Some((run_start, run_end, represented)) = self.last_run {
            if start <= run_end {
                let new_end = run_end.max(end);
                let passes = ((new_end - run_start) as f64) >= min_samples;
                if passes {
                    let ev = self.make_event(run_start, new_end);
                    if represented {
                        let last = self
                            .events
                            .last_mut()
                            .expect("represented run has an event");
                        // Durations only grow on merge, so the only
                        // possible kind change is an upgrade to refresh.
                        let was_refresh = last.kind == StallKind::RefreshCollision;
                        *last = ev;
                        if !was_refresh && ev.kind == StallKind::RefreshCollision {
                            obs::counter_add!("detect.refresh_events", 1);
                        }
                    } else {
                        self.push_event(ev);
                    }
                }
                self.last_run = Some((run_start, new_end, passes));
                return;
            }
        }
        let passes = ((end - start) as f64) >= min_samples;
        if passes {
            let ev = self.make_event(start, end);
            self.push_event(ev);
        }
        self.last_run = Some((start, end, passes));
        // Gap points that no future or still-mutable event can reach
        // back to (every later refined start is >= this run's start) are
        // dead; drop them so the deque stays bounded.
        while self
            .gaps
            .front()
            .is_some_and(|&p| p + 1 < start)
        {
            self.gaps.pop_front();
        }
    }

    fn push_event(&mut self, ev: StallEvent) {
        obs::counter_add!("detect.events", 1);
        if ev.kind == StallKind::RefreshCollision {
            obs::counter_add!("detect.refresh_events", 1);
        }
        self.events.push(ev);
    }

    /// Events finalized since the last drain — the live-monitoring
    /// interface: call periodically and act on completed stalls while the
    /// capture continues.
    ///
    /// Only *immutable* events are released: the most recent event is
    /// withheld while a later dip could still refine back to its end and
    /// merge into it in place (a drained copy must never go stale). That
    /// is exactly while the run behind it ended *clipped* — its right
    /// edge never reached a sample at or above `edge_level` — because
    /// such a sample is what blocks all future left refinement. The held
    /// event is released by the next non-abutting emission or by
    /// [`finish`].
    ///
    /// [`finish`]: StreamingEmprof::finish
    pub fn drain_events(&mut self) -> Vec<StallEvent> {
        let mut out = Vec::new();
        self.drain_events_into(&mut out);
        out
    }

    /// [`drain_events`](StreamingEmprof::drain_events) into a
    /// caller-owned buffer: appends the newly stable events to `out`
    /// (which is *not* cleared) and returns how many were appended. A
    /// long-lived caller can reuse one scratch vector across drains
    /// instead of allocating per batch.
    pub fn drain_events_into(&mut self, out: &mut Vec<StallEvent>) -> usize {
        let mut stable = self.events.len();
        if !self.tail_sealed && matches!(self.last_run, Some((_, _, true))) && stable > 0 {
            stable -= 1;
        }
        let stable = stable.max(self.drained);
        let fresh = stable - self.drained;
        out.extend_from_slice(&self.events[self.drained..stable]);
        self.drained = stable;
        fresh
    }

    /// Number of samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Number of non-finite samples rejected at the ingest boundary.
    pub fn samples_rejected(&self) -> usize {
        self.rejected
    }

    /// Current buffered-memory footprint in samples (bounded by the
    /// normalization window plus any unfinished dip).
    pub fn buffered_samples(&self) -> usize {
        self.raw.len()
            + self.norm.len()
            + self.adaptive.as_ref().map_or(0, |a| a.buf.len())
    }

    /// Progress counters for live monitoring: samples seen, events
    /// finalized, current buffer occupancy, and ingest throughput.
    pub fn stats(&self) -> StreamingStats {
        StreamingStats {
            samples_pushed: self.pushed,
            events_emitted: self.events.len(),
            samples_rejected: self.rejected,
            buffered_samples: self.buffered_samples(),
            samples_per_sec: self.started_at.and_then(|t0| {
                let secs = t0.elapsed().as_secs_f64();
                (secs > 0.0).then(|| self.pushed as f64 / secs)
            }),
        }
    }

    /// Flushes batched telemetry: the `detect.samples` counter plus the
    /// `stream.samples_per_sec` / `stream.buffer_samples` gauges.
    fn flush_obs(&mut self) {
        obs::counter_add!("detect.samples", self.unflushed as u64);
        self.unflushed = 0;
        if !obs::is_enabled() {
            return;
        }
        obs::gauge_set!("stream.buffer_samples", self.buffered_samples() as f64);
        if let Some(sps) = self.stats().samples_per_sec {
            obs::gauge_set!("stream.samples_per_sec", sps);
        }
    }

    /// Finalizes the capture: normalizes the tail (whose windows are
    /// truncated, exactly as in the batch detector), closes any open dip,
    /// flushes pending events, and returns the complete [`Profile`].
    pub fn finish(mut self) -> Profile {
        let _s = obs::span!("stream.finish");
        if let Some(mut ad) = self.adaptive.take() {
            // Remaining (right-truncated) blocks: the kernel's windows
            // clip at the true capture end, exactly as in batch.
            while ad.position < self.pushed {
                self.process_block(&mut ad);
            }
            self.adaptive_process_pending(&mut ad, true);
        } else {
            // The tail samples have truncated (right-clipped) windows;
            // the wedges already contain exactly the in-window
            // candidates.
            while self.normalized < self.pushed {
                self.normalize_one();
            }
            if let Some(start) = self.open_dip.take() {
                self.push_raw_dip(start, self.pushed);
            }
            self.process_pending(true);
        }
        self.flush_obs();
        if obs::is_enabled() {
            // Widths are only final now (merges may have grown events), so
            // the histogram — unlike the counters — is recorded at the end.
            for e in &self.events {
                obs::histogram_record!(
                    "detect.event_width_samples",
                    (e.end_sample - e.start_sample) as u64
                );
                obs::histogram_record!("detect.stall_latency_cycles", e.duration_cycles as u64);
            }
            // Confidence is also only final now (merges recompute it),
            // so — like the batch paths — degraded events are counted
            // once per profile, at the end.
            let degraded = self
                .events
                .iter()
                .filter(|e| e.confidence == Confidence::Degraded)
                .count();
            obs::counter_add!("detect.confidence.events_degraded", degraded as u64);
        }
        Profile::new(
            self.events,
            self.pushed,
            self.sample_rate_hz,
            self.clock_hz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Emprof;

    const FS: f64 = 40e6;
    const CLK: f64 = 1.0e9;

    fn config() -> EmprofConfig {
        EmprofConfig::for_rates(FS, CLK)
    }

    fn batch(signal: &[f64]) -> Profile {
        Emprof::new(config()).profile_magnitude(signal, FS, CLK)
    }

    fn stream(signal: &[f64]) -> Profile {
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        s.extend(signal.iter().copied());
        s.finish()
    }

    fn dipped_signal(dips: &[(usize, usize)], len: usize) -> Vec<f64> {
        let mut v = vec![5.0; len];
        for &(start, width) in dips {
            for x in v.iter_mut().skip(start).take(width) {
                *x = 0.8;
            }
        }
        v
    }

    #[test]
    fn matches_batch_on_clean_dips() {
        let signal = dipped_signal(&[(5_000, 12), (9_000, 30), (15_000, 8)], 30_000);
        assert_eq!(stream(&signal).events(), batch(&signal).events());
    }

    #[test]
    fn matches_batch_with_merge_gaps() {
        // Dips separated by 1-2 samples must merge identically.
        let mut signal = dipped_signal(&[(5_000, 10)], 30_000);
        signal[5_011] = 0.8; // gap of 1 busy sample then more dip
        for v in signal.iter_mut().skip(5_012).take(8) {
            *v = 0.8;
        }
        assert_eq!(stream(&signal).events(), batch(&signal).events());
    }

    #[test]
    fn matches_batch_on_noisy_signal() {
        // Deterministic pseudo-noise plus dips.
        let mut signal: Vec<f64> = (0..60_000)
            .map(|i| 5.0 + ((i * 2654435761usize) % 1000) as f64 / 2000.0)
            .collect();
        for &start in &[10_000usize, 20_000, 30_000, 40_000] {
            for v in signal.iter_mut().skip(start).take(14) {
                *v = 0.7 + ((start * 31) % 100) as f64 / 1000.0;
            }
        }
        let s = stream(&signal);
        let b = batch(&signal);
        assert_eq!(s.events(), b.events());
    }

    #[test]
    fn matches_batch_with_gain_drift() {
        let mut signal: Vec<f64> = (0..80_000)
            .map(|i| 5.0 * (1.0 + 0.1 * (i as f64 * 2e-4).sin()))
            .collect();
        for k in 0..20usize {
            let start = 3_000 + k * 3_700;
            for v in signal.iter_mut().skip(start).take(12) {
                *v *= 0.15;
            }
        }
        assert_eq!(stream(&signal).events(), batch(&signal).events());
    }

    #[test]
    fn matches_batch_on_dip_at_capture_end() {
        let mut signal = dipped_signal(&[(5_000, 12)], 20_000);
        for v in signal.iter_mut().skip(19_990) {
            *v = 0.8;
        }
        assert_eq!(stream(&signal).events(), batch(&signal).events());
    }

    #[test]
    fn matches_batch_on_refresh_length_dips() {
        let signal = dipped_signal(&[(5_000, 100), (20_000, 12)], 40_000);
        let s = stream(&signal);
        let b = batch(&signal);
        assert_eq!(s.events(), b.events());
        assert_eq!(s.refresh_count(), 1);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        let window = config().norm_window_samples;
        for i in 0..500_000usize {
            let v = if i % 5_000 < 12 { 0.8 } else { 5.0 };
            s.push(v);
            assert!(
                s.buffered_samples() <= 2 * window + 64,
                "buffer grew to {} at sample {i}",
                s.buffered_samples()
            );
        }
        let profile = s.finish();
        assert!(profile.miss_count() > 90);
    }

    #[test]
    fn drain_delivers_events_incrementally() {
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        let signal = dipped_signal(&[(5_000, 12), (40_000, 12)], 60_000);
        let mut seen = 0;
        let mut first_seen_at = None;
        for (i, &v) in signal.iter().enumerate() {
            s.push(v);
            let drained = s.drain_events();
            if !drained.is_empty() && first_seen_at.is_none() {
                first_seen_at = Some(i);
            }
            seen += drained.len();
        }
        // The first dip must be delivered long before the capture ends.
        let at = first_seen_at.expect("an event was streamed");
        assert!(at < 20_000, "first event only delivered at sample {at}");
        let profile = s.finish();
        assert_eq!(seen + profile.events().len() - seen, 2);
    }

    #[test]
    fn drained_events_never_go_stale() {
        // Two dips bridged by a shelf that sits above `threshold` (so the
        // raw dips do not merge) but below `edge_level` (so refinement of
        // the second dip reaches back and merges the *emitted* first
        // event in place). A drain between the two emits must withhold
        // the first event until it can no longer change; otherwise the
        // incremental view diverges from the batch profile.
        let mut signal = dipped_signal(&[(5_000, 8)], 30_000);
        for v in signal.iter_mut().skip(5_008).take(6) {
            *v = 2.1; // normalizes to ~0.42: above threshold, below edge
        }
        for v in signal.iter_mut().skip(5_014).take(8) {
            *v = 0.8; // the second dip
        }
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        let mut drained = Vec::new();
        for &v in &signal {
            s.push(v);
            drained.extend(s.drain_events());
        }
        let profile = s.finish();
        drained.extend_from_slice(&profile.events()[drained.len()..]);
        let b = batch(&signal);
        assert_eq!(drained, b.events());
        assert_eq!(profile.events(), b.events());
        // The merge really happened: one event spanning both dips.
        assert_eq!(b.events().len(), 1);
        assert!(b.events()[0].end_sample - b.events()[0].start_sample >= 20);
    }

    #[test]
    fn incremental_drain_matches_batch_on_noisy_signal() {
        // The same noisy signal as `matches_batch_on_noisy_signal`, but
        // consumed through per-push drains (the serve ingest pattern).
        let mut signal: Vec<f64> = (0..60_000)
            .map(|i| 5.0 + ((i * 2654435761usize) % 1000) as f64 / 2000.0)
            .collect();
        for &start in &[10_000usize, 20_000, 30_000, 40_000] {
            for v in signal.iter_mut().skip(start).take(14) {
                *v = 0.7 + ((start * 31) % 100) as f64 / 1000.0;
            }
        }
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        let mut drained = Vec::new();
        for chunk in signal.chunks(777) {
            s.extend(chunk.iter().copied());
            drained.extend(s.drain_events());
        }
        let profile = s.finish();
        drained.extend_from_slice(&profile.events()[drained.len()..]);
        assert_eq!(drained, batch(&signal).events());
    }

    #[test]
    fn empty_stream_is_empty_profile() {
        let s = StreamingEmprof::new(config(), FS, CLK);
        let profile = s.finish();
        assert_eq!(profile.events().len(), 0);
        assert_eq!(profile.total_samples(), 0);
    }

    #[test]
    fn flat_stream_has_no_events() {
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        s.extend(std::iter::repeat_n(3.3, 50_000));
        assert_eq!(s.finish().events().len(), 0);
    }

    #[test]
    fn non_finite_pushes_are_rejected_and_counted() {
        let clean = dipped_signal(&[(5_000, 12), (9_120, 30)], 30_000);
        let mut dirty = Vec::with_capacity(clean.len() + 64);
        let mut injected = 0usize;
        for (i, &v) in clean.iter().enumerate() {
            if i % 761 == 0 {
                dirty.push([f64::NAN, f64::INFINITY, f64::NEG_INFINITY][i % 3]);
                injected += 1;
            }
            dirty.push(v);
        }
        let mut s = StreamingEmprof::new(config(), FS, CLK);
        s.extend(dirty.iter().copied());
        assert_eq!(s.samples_rejected(), injected);
        assert_eq!(s.stats().samples_rejected, injected);
        assert_eq!(s.samples_pushed(), clean.len());
        let profile = s.finish();
        // Identical to batch on the same dirty input — including the
        // degraded-confidence marks on events straddling a collapsed
        // gap (the second dip [9_120, 9_150) spans survivor position
        // 9_132 = 761 * 12, where an injected sample was dropped).
        let b = Emprof::new(config()).profile_magnitude(&dirty, FS, CLK);
        assert_eq!(profile.events(), b.events());
        assert!(profile.degraded_count() >= 1, "gap-touching event not degraded");
        // Apart from confidence, events match the clean signal's.
        let bc = batch(&clean);
        assert_eq!(profile.events().len(), bc.events().len());
        for (d, c) in profile.events().iter().zip(bc.events()) {
            assert_eq!(
                (d.start_sample, d.end_sample, d.kind),
                (c.start_sample, c.end_sample, c.kind)
            );
        }
        assert_eq!(profile.total_samples(), clean.len());
    }

    fn adaptive_config() -> EmprofConfig {
        let mut c = config();
        c.calib = crate::calib::CalibConfig::adaptive();
        c
    }

    /// A drifting, noisy capture that exercises threshold adaptation,
    /// window shrink, and the contrast gate.
    fn drifting_signal(len: usize) -> Vec<f64> {
        let mut s: Vec<f64> = (0..len)
            .map(|i| {
                let atten = 1.0 - 0.85 * (i as f64 / len as f64);
                let noise = ((i * 2_654_435_761usize) % 1000) as f64 / 1000.0 * 0.08;
                5.0 * atten + noise
            })
            .collect();
        let mut k = 0usize;
        while 3_000 + k * 5_500 + 14 < len {
            let start = 3_000 + k * 5_500;
            for v in s.iter_mut().skip(start).take(14) {
                *v *= 0.12;
            }
            k += 1;
        }
        s
    }

    #[test]
    fn adaptive_streaming_matches_adaptive_batch() {
        let signal = drifting_signal(90_000);
        let b = Emprof::new(adaptive_config()).profile_magnitude(&signal, FS, CLK);
        let mut s = StreamingEmprof::new(adaptive_config(), FS, CLK);
        s.extend(signal.iter().copied());
        assert_eq!(s.finish(), b);
    }

    #[test]
    fn adaptive_streaming_incremental_drain_matches_batch() {
        let signal = drifting_signal(90_000);
        let b = Emprof::new(adaptive_config()).profile_magnitude(&signal, FS, CLK);
        let mut s = StreamingEmprof::new(adaptive_config(), FS, CLK);
        let mut drained = Vec::new();
        for chunk in signal.chunks(997) {
            s.extend(chunk.iter().copied());
            drained.extend(s.drain_events());
        }
        let profile = s.finish();
        drained.extend_from_slice(&profile.events()[drained.len()..]);
        assert_eq!(drained, b.events());
        assert_eq!(profile.events(), b.events());
    }

    #[test]
    fn adaptive_memory_stays_bounded() {
        let mut s = StreamingEmprof::new(adaptive_config(), FS, CLK);
        let window = config().norm_window_samples;
        for i in 0..200_000usize {
            let v = if i % 5_000 < 12 { 0.8 } else { 5.0 };
            s.push(v);
            assert!(
                s.buffered_samples() <= 2 * window + 64,
                "buffer grew to {} at sample {i}",
                s.buffered_samples()
            );
        }
        let profile = s.finish();
        assert!(profile.miss_count() > 30);
    }
}
