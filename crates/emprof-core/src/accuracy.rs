//! Accuracy scoring against ground truth (Tables II and III).
//!
//! The paper scores EMPROF two ways: against the *a-priori known* miss
//! count of the engineered microbenchmark (Table II), and against the
//! simulator's ground-truth miss/stall traces (Table III). Both reduce to
//! comparing a reported quantity with a reference quantity; the published
//! numbers are consistent with the symmetric ratio `min/max`, e.g. 257
//! reported vs 256 actual → 99.61 %.

use emprof_sim::GroundTruth;

use crate::profile::Profile;

/// Symmetric count accuracy: `min(a, b) / max(a, b)`, in `[0, 1]`.
///
/// Both over- and under-reporting are penalized; two zeros agree
/// perfectly.
///
/// # Example
///
/// ```
/// use emprof_core::accuracy::count_accuracy;
///
/// assert!((count_accuracy(257.0, 256.0) - 0.99611).abs() < 1e-4);
/// assert_eq!(count_accuracy(0.0, 0.0), 1.0);
/// assert_eq!(count_accuracy(0.0, 5.0), 0.0);
/// ```
pub fn count_accuracy(reported: f64, actual: f64) -> f64 {
    assert!(
        reported >= 0.0 && actual >= 0.0,
        "counts must be non-negative ({reported}, {actual})"
    );
    if reported == 0.0 && actual == 0.0 {
        return 1.0;
    }
    let (lo, hi) = if reported < actual {
        (reported, actual)
    } else {
        (actual, reported)
    };
    if hi == 0.0 {
        1.0
    } else {
        lo / hi
    }
}

/// The Table II / Table III scores for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Detected stall events (EMPROF's reported miss count).
    pub reported_misses: usize,
    /// Reference miss count (known TM, or the simulator's count).
    pub actual_misses: usize,
    /// `min/max` accuracy of the miss count.
    pub miss_accuracy: f64,
    /// EMPROF's total measured stall cycles.
    pub reported_stall_cycles: f64,
    /// Ground-truth LLC-stall cycles.
    pub actual_stall_cycles: f64,
    /// `min/max` accuracy of the stall-cycle total.
    pub stall_accuracy: f64,
}

impl AccuracyReport {
    /// Scores a profile against an externally known miss count (the
    /// microbenchmark path of Table II; no stall reference available, so
    /// stall fields compare against the profile itself and read 1.0).
    ///
    /// Refresh-collision events count as misses here: the known count is
    /// of *memory accesses*, and an access that happened to collide with
    /// refresh is still one access.
    pub fn against_known_count(profile: &Profile, known_misses: usize) -> Self {
        let reported = profile.miss_count() + profile.refresh_count();
        AccuracyReport {
            reported_misses: reported,
            actual_misses: known_misses,
            miss_accuracy: count_accuracy(reported as f64, known_misses as f64),
            reported_stall_cycles: profile.total_stall_cycles(),
            actual_stall_cycles: profile.total_stall_cycles(),
            stall_accuracy: 1.0,
        }
    }

    /// Scores a profile against simulator ground truth (the Table III
    /// path), optionally restricted to a ground-truth cycle window.
    ///
    /// The miss reference is the simulator's demand LLC-miss count; the
    /// stall reference is its total fully-stalled cycles attributed to LLC
    /// misses. Refresh-collision events are included in the stall total
    /// (they are stall time) but excluded from the miss count on both
    /// sides of the comparison, mirroring the paper's separate accounting.
    pub fn against_ground_truth(
        profile: &Profile,
        gt: &GroundTruth,
        window: Option<(u64, u64)>,
    ) -> Self {
        let (actual_misses, actual_stall_cycles) = match window {
            Some(w) => (
                gt.misses_in_window(w).filter(|m| !m.refresh_collision).count(),
                gt.llc_stalls_in_window(w)
                    .map(|s| s.duration())
                    .sum::<u64>(),
            ),
            None => (
                gt.misses()
                    .iter()
                    .filter(|m| !m.refresh_collision)
                    .count(),
                gt.llc_stall_cycles(),
            ),
        };
        let reported_misses = profile.miss_count();
        let reported_stall_cycles = profile.total_stall_cycles();
        AccuracyReport {
            reported_misses,
            actual_misses,
            miss_accuracy: count_accuracy(reported_misses as f64, actual_misses as f64),
            reported_stall_cycles,
            actual_stall_cycles: actual_stall_cycles as f64,
            stall_accuracy: count_accuracy(reported_stall_cycles, actual_stall_cycles as f64),
        }
    }
}

/// Event-level matching between detected stalls and ground-truth stall
/// intervals, for diagnosing *which* events were found rather than just
/// how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Ground-truth stalls overlapped by at least one detected event.
    pub matched: usize,
    /// Ground-truth stalls with no detected counterpart.
    pub missed: usize,
    /// Detected events overlapping no ground-truth stall.
    pub spurious: usize,
}

impl MatchStats {
    /// Recall: matched / (matched + missed); 1.0 when there is nothing to
    /// find.
    pub fn recall(&self) -> f64 {
        let total = self.matched + self.missed;
        if total == 0 {
            1.0
        } else {
            self.matched as f64 / total as f64
        }
    }

    /// Precision: 1 - spurious / detected; 1.0 when nothing was detected.
    pub fn precision(&self, detected: usize) -> f64 {
        if detected == 0 {
            1.0
        } else {
            1.0 - self.spurious as f64 / detected as f64
        }
    }
}

/// Matches detected events to ground-truth LLC stall intervals by cycle
/// overlap with a `tolerance_cycles` slack on both sides.
pub fn match_events(profile: &Profile, gt: &GroundTruth, tolerance_cycles: u64) -> MatchStats {
    let events: Vec<(u64, u64)> = profile
        .events()
        .iter()
        .map(|e| {
            (
                profile.sample_to_cycle(e.start_sample),
                profile.sample_to_cycle(e.end_sample),
            )
        })
        .collect();
    let truths: Vec<(u64, u64)> = gt
        .llc_stalls()
        .map(|s| (s.start_cycle, s.end_cycle))
        .collect();
    let overlaps = |a: (u64, u64), b: (u64, u64)| -> bool {
        a.0.saturating_sub(tolerance_cycles) < b.1 && b.0.saturating_sub(tolerance_cycles) < a.1
    };
    let matched = truths
        .iter()
        .filter(|&&t| events.iter().any(|&e| overlaps(e, t)))
        .count();
    let spurious = events
        .iter()
        .filter(|&&e| !truths.iter().any(|&t| overlaps(e, t)))
        .count();
    MatchStats {
        matched,
        missed: truths.len() - matched,
        spurious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Confidence, StallEvent, StallKind};
    use emprof_sim::{MissRecord, StallCause, StallInterval};

    fn profile_with(events: Vec<(usize, usize)>) -> Profile {
        let events = events
            .into_iter()
            .map(|(s, e)| StallEvent {
                start_sample: s,
                end_sample: e,
                duration_cycles: (e - s) as f64 * 25.0,
                kind: StallKind::Normal,
                confidence: Confidence::High,
            })
            .collect();
        Profile::new(events, 10_000, 40e6, 1.0e9)
    }

    fn gt_with(stalls: Vec<(u64, u64)>, misses: usize) -> GroundTruth {
        let mut gt = GroundTruth::new();
        for (s, e) in stalls {
            gt.push_stall(StallInterval {
                start_cycle: s,
                end_cycle: e,
                cause: StallCause::LlcMiss { refresh: false },
            });
        }
        for i in 0..misses {
            gt.push_miss(MissRecord {
                line_addr: i as u64 * 64,
                pc: 0,
                is_instr: false,
                detect_cycle: i as u64 * 1000,
                complete_cycle: i as u64 * 1000 + 300,
                refresh_collision: false,
            });
        }
        gt
    }

    #[test]
    fn count_accuracy_matches_paper_example() {
        // Table IV reports 257 for TM=256 on Alcatel; Table II says 99.61%.
        assert!((count_accuracy(257.0, 256.0) - 0.9961).abs() < 1e-4);
    }

    #[test]
    fn count_accuracy_is_symmetric() {
        assert_eq!(count_accuracy(100.0, 90.0), count_accuracy(90.0, 100.0));
    }

    #[test]
    fn known_count_scoring() {
        let p = profile_with(vec![(100, 112), (200, 212), (300, 312)]);
        let r = AccuracyReport::against_known_count(&p, 3);
        assert_eq!(r.miss_accuracy, 1.0);
        let r = AccuracyReport::against_known_count(&p, 4);
        assert!((r.miss_accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_scoring() {
        // Events at samples (100,112) = cycles (2500,2800) etc.
        let p = profile_with(vec![(100, 112), (200, 212)]);
        let gt = gt_with(vec![(2500, 2800), (5000, 5300)], 2);
        let r = AccuracyReport::against_ground_truth(&p, &gt, None);
        assert_eq!(r.reported_misses, 2);
        assert_eq!(r.actual_misses, 2);
        assert_eq!(r.miss_accuracy, 1.0);
        assert!((r.reported_stall_cycles - 600.0).abs() < 1e-9);
        assert_eq!(r.actual_stall_cycles, 600.0);
        assert_eq!(r.stall_accuracy, 1.0);
    }

    #[test]
    fn event_matching_counts_spurious_and_missed() {
        let p = profile_with(vec![(100, 112), (900, 912)]); // second is spurious
        let gt = gt_with(vec![(2500, 2800), (7000, 7300)], 2); // second missed
        let m = match_events(&p, &gt, 50);
        assert_eq!(m.matched, 1);
        assert_eq!(m.missed, 1);
        assert_eq!(m.spurious, 1);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.precision(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_on_empty() {
        let p = profile_with(vec![]);
        let gt = gt_with(vec![], 0);
        let r = AccuracyReport::against_ground_truth(&p, &gt, None);
        assert_eq!(r.miss_accuracy, 1.0);
        assert_eq!(r.stall_accuracy, 1.0);
        let m = match_events(&p, &gt, 0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_count_panics() {
        count_accuracy(-1.0, 5.0);
    }
}
