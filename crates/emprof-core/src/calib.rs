//! Online probe calibration: adaptive normalization and detection
//! thresholds under probe drift (DESIGN.md §15).
//!
//! EMPROF's moving min/max normalization is scale-invariant, so a pure
//! attenuation change (the probe sliding away from the chip) is
//! invisible — **until receiver noise stops being negligible** relative
//! to the attenuated dip contrast. From then on the static detector
//! degrades silently: dipless windows normalize their noise floor across
//! `[0, 1]` and sprout false events, and true dips fragment as their
//! shoulders ride above the fixed threshold. This module makes drift
//! tolerance *active*:
//!
//! * a [`Calibrator`] tracks per-block contrast (dip SNR) and noise
//!   estimates and derives a **parameter schedule** — per-block detection
//!   threshold, edge level, normalization window, and a contrast gate
//!   (see `emprof_signal::fused::detect_runs_range_gated`);
//! * a degraded→recovered **confidence state machine** flags events
//!   detected while the noise fraction is too high to trust, counting
//!   transitions in `detect.confidence.*` telemetry;
//! * the schedule is **causal and block-aligned**: parameters for block
//!   `k` depend only on blocks `0..k`, and change only at fixed absolute
//!   block boundaries. That is what keeps the batch, parallel, and
//!   streaming adaptive paths bit-identical — all three compute the same
//!   schedule and run the same fused range kernel per block, then share
//!   the stitched merge/refine/filter back half.
//!
//! With [`CalibConfig::enabled`]` == false` (the default) none of this
//! code runs and every detector path is bit-identical to the static
//! detector.

use std::collections::VecDeque;

use emprof_obs as obs;
use emprof_par::{pool, Parallelism};
use emprof_signal::fused;

use crate::config::EmprofConfig;
use crate::detect::{record_event_metrics, refine_from_runs, sanitize_magnitude};
use crate::profile::{Confidence, Profile, StallEvent};
use crate::Emprof;

/// Converts the mean absolute successive difference of a block into a
/// peak-to-peak noise-span estimate. For i.i.d. uniform noise of span
/// `2a`, successive differences average `2a/3`, so the factor is 3.
const NOISE_SPAN_FACTOR: f64 = 3.0;

/// How many recent block ranges the dip-contrast estimator keeps: the
/// max over this ring tracks the contrast of dip-bearing windows while
/// staying robust to dipless blocks (whose range is pure noise).
const CONTRAST_RING: usize = 8;

/// Configuration of the online calibration loop ([`Calibrator`]).
///
/// Carried inside [`EmprofConfig`]; [`CalibConfig::off`] (the default)
/// disables adaptation entirely and keeps every detector path
/// bit-identical to the static detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Calibration block length in samples; parameters are constant
    /// within a block and may change only at block boundaries. `0` means
    /// "use the normalization window".
    pub block_samples: usize,
    /// EWMA weight given to each new block's statistics, in `(0, 1]`.
    pub ewma_weight: f64,
    /// Safety pad added to the measured noise fraction when raising the
    /// detection threshold.
    pub threshold_pad: f64,
    /// Ceiling for the adapted detection threshold, in `(0, 1)`.
    pub threshold_max: f64,
    /// Contrast gate as a fraction of the recent dip-contrast estimate:
    /// windows whose range falls below `gate_fraction * contrast` are
    /// treated as dipless and normalize flat. `0` disables the gate.
    pub gate_fraction: f64,
    /// Noise fraction at or above which the confidence state machine
    /// enters `Degraded`.
    pub degraded_enter: f64,
    /// Noise fraction at or below which it recovers to `High`
    /// (hysteresis: must be `<= degraded_enter`).
    pub degraded_exit: f64,
    /// Floor for the adapted normalization window, in samples.
    pub window_min: usize,
    /// Busy-level drift per block (relative) above which the
    /// normalization window shrinks — fast drift inside one window
    /// inflates the min/max range with fake contrast, so the window
    /// contracts until the drift it spans is back under this tolerance.
    pub drift_tolerance: f64,
}

impl CalibConfig {
    /// Adaptation disabled (the default): the static detector, bit for
    /// bit.
    pub fn off() -> Self {
        CalibConfig {
            enabled: false,
            ..CalibConfig::adaptive()
        }
    }

    /// Adaptation enabled with the tuned defaults.
    pub fn adaptive() -> Self {
        CalibConfig {
            enabled: true,
            block_samples: 0,
            ewma_weight: 0.25,
            threshold_pad: 0.05,
            threshold_max: 0.75,
            gate_fraction: 0.45,
            degraded_enter: 0.45,
            degraded_exit: 0.30,
            window_min: 256,
            drift_tolerance: 0.2,
        }
    }

    /// The resolved block length for a given normalization window.
    pub(crate) fn block(&self, norm_window: usize) -> usize {
        if self.block_samples == 0 {
            norm_window.max(1)
        } else {
            self.block_samples
        }
    }

    /// Validates the parameters (called from [`EmprofConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.ewma_weight && self.ewma_weight <= 1.0) {
            return Err(format!(
                "calibration EWMA weight must be in (0, 1], got {}",
                self.ewma_weight
            ));
        }
        if !(0.0 < self.threshold_max && self.threshold_max < 1.0) {
            return Err(format!(
                "adaptive threshold ceiling must be in (0, 1), got {}",
                self.threshold_max
            ));
        }
        if !(self.threshold_pad >= 0.0 && self.threshold_pad.is_finite()) {
            return Err(format!(
                "threshold pad must be finite and non-negative, got {}",
                self.threshold_pad
            ));
        }
        if !(0.0..=1.0).contains(&self.gate_fraction) {
            return Err(format!(
                "contrast gate fraction must be in [0, 1], got {}",
                self.gate_fraction
            ));
        }
        if !(0.0 < self.degraded_exit
            && self.degraded_exit <= self.degraded_enter
            && self.degraded_enter <= 1.0)
        {
            return Err(format!(
                "degraded hysteresis must satisfy 0 < exit <= enter <= 1, got exit {} enter {}",
                self.degraded_exit, self.degraded_enter
            ));
        }
        if self.window_min == 0 {
            return Err("adaptive window floor must be nonzero".into());
        }
        if !(self.drift_tolerance > 0.0 && self.drift_tolerance.is_finite()) {
            return Err(format!(
                "drift tolerance must be positive, got {}",
                self.drift_tolerance
            ));
        }
        Ok(())
    }
}

/// Detector parameters in force for one calibration block. Derived
/// causally from the blocks before it, so every detector path computes
/// the identical schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockParams {
    /// Normalization window for this block, in samples.
    pub window: usize,
    /// Detection threshold for this block.
    pub threshold: f64,
    /// Edge-refinement level for this block.
    pub edge_level: f64,
    /// Contrast gate: windows with `max - min <= min_range` normalize
    /// flat (see `detect_runs_range_gated`).
    pub min_range: f64,
    /// Whether the confidence state machine is in the degraded state for
    /// this block; events ending here carry [`Confidence::Degraded`].
    pub degraded: bool,
}

/// The online calibration loop: feed it completed blocks in order via
/// [`observe_block`](Calibrator::observe_block), read the parameters for
/// the *next* block via [`params`](Calibrator::params).
///
/// Before the first observed block it returns the base (static)
/// configuration, which makes the schedule causal: block `k`'s
/// parameters depend only on blocks `0..k`.
#[derive(Debug, Clone)]
pub struct Calibrator {
    cfg: CalibConfig,
    base_window: usize,
    base_threshold: f64,
    base_edge: f64,
    /// `edge_level - threshold` of the base config, preserved as the
    /// adapted threshold rises.
    edge_margin: f64,
    inited: bool,
    /// Recent block ranges; the max estimates dip contrast.
    ranges: VecDeque<f64>,
    /// EWMA of the per-block mean absolute successive difference.
    noise_ew: f64,
    /// Previous block's maximum (busy level), for drift estimation.
    hi_prev: f64,
    /// EWMA of relative busy-level drift per block.
    drift_ew: f64,
    degraded: bool,
    /// degraded→ / →recovered transition counts (mirrors the
    /// `detect.confidence.*` counters, for direct inspection).
    pub transitions: (u64, u64),
}

impl Calibrator {
    /// Creates a calibrator for the given detector configuration.
    pub fn new(config: &EmprofConfig) -> Self {
        Calibrator {
            cfg: config.calib,
            base_window: config.norm_window_samples,
            base_threshold: config.threshold,
            base_edge: config.edge_level,
            edge_margin: config.edge_level - config.threshold,
            inited: false,
            ranges: VecDeque::with_capacity(CONTRAST_RING),
            noise_ew: 0.0,
            hi_prev: 0.0,
            drift_ew: 0.0,
            degraded: false,
            transitions: (0, 0),
        }
    }

    /// Recent dip-contrast estimate: the max block range over the ring.
    fn contrast(&self) -> f64 {
        self.ranges.iter().copied().fold(0.0, f64::max)
    }

    /// Estimated peak-to-peak noise span.
    fn noise_span(&self) -> f64 {
        NOISE_SPAN_FACTOR * self.noise_ew
    }

    /// Noise span as a fraction of the dip contrast, in `[0, 1]`.
    pub fn noise_fraction(&self) -> f64 {
        let c = self.contrast();
        if c > 0.0 {
            (self.noise_span() / c).min(1.0)
        } else {
            0.0
        }
    }

    /// Parameters for the next (not yet observed) block.
    pub fn params(&self) -> BlockParams {
        if !self.inited {
            return BlockParams {
                window: self.base_window,
                threshold: self.base_threshold,
                edge_level: self.base_edge,
                min_range: 0.0,
                degraded: false,
            };
        }
        let q = self.noise_fraction();
        let threshold = (q + self.cfg.threshold_pad)
            .clamp(self.base_threshold, self.cfg.threshold_max.max(self.base_threshold));
        let edge_level = (threshold + self.edge_margin).min(0.95).max(threshold);
        // Fast drift inflates a window's min/max range with fake
        // contrast; shrink the window until the drift it spans is back
        // under tolerance. The window only ever shrinks from the base,
        // which also bounds the lookahead every path needs.
        let block = self.cfg.block(self.base_window) as f64;
        let drift_per_sample = self.drift_ew / block;
        let window = if drift_per_sample * (self.base_window as f64) > self.cfg.drift_tolerance {
            let fit = (self.cfg.drift_tolerance / drift_per_sample) as usize;
            fit.clamp(self.cfg.window_min.min(self.base_window), self.base_window)
        } else {
            self.base_window
        };
        BlockParams {
            window,
            threshold,
            edge_level,
            min_range: self.cfg.gate_fraction * self.contrast(),
            degraded: self.degraded,
        }
    }

    /// Folds one completed block of (finite) samples into the estimates
    /// and steps the confidence state machine. Blocks must be fed in
    /// order; all paths feed the identical block slices.
    pub fn observe_block(&mut self, block: &[f64]) {
        if block.is_empty() {
            return;
        }
        let mut hi = f64::NEG_INFINITY;
        let mut lo = f64::INFINITY;
        for &v in block {
            if v > hi {
                hi = v;
            }
            if v < lo {
                lo = v;
            }
        }
        let range = hi - lo;
        let masd = if block.len() > 1 {
            let mut acc = 0.0;
            for w in block.windows(2) {
                acc += (w[1] - w[0]).abs();
            }
            acc / (block.len() - 1) as f64
        } else {
            0.0
        };
        if self.ranges.len() == CONTRAST_RING {
            self.ranges.pop_front();
        }
        self.ranges.push_back(range);
        let a = self.cfg.ewma_weight;
        if !self.inited {
            self.noise_ew = masd;
            self.hi_prev = hi;
            self.drift_ew = 0.0;
            self.inited = true;
        } else {
            self.noise_ew += a * (masd - self.noise_ew);
            let denom = self.hi_prev.abs().max(1e-12);
            let drift = (hi - self.hi_prev).abs() / denom;
            self.drift_ew += a * (drift - self.drift_ew);
            self.hi_prev = hi;
        }
        let q = self.noise_fraction();
        if !self.degraded && q >= self.cfg.degraded_enter {
            self.degraded = true;
            self.transitions.0 += 1;
            obs::counter_add!("detect.confidence.degraded", 1);
        } else if self.degraded && q <= self.cfg.degraded_exit {
            self.degraded = false;
            self.transitions.1 += 1;
            obs::counter_add!("detect.confidence.recovered", 1);
        }
        if obs::is_enabled() {
            obs::counter_add!("calib.blocks", 1);
            obs::gauge_set!("calib.noise_fraction", q);
            let p = self.params();
            obs::gauge_set!("calib.threshold", p.threshold);
            obs::gauge_set!("calib.window", p.window as f64);
            obs::gauge_set!("calib.min_range", p.min_range);
        }
    }

    /// Whether the state machine currently reports degraded confidence.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

/// Computes the full causal parameter schedule for a (sanitized) signal:
/// entry `k` governs samples `[k * block, (k + 1) * block)`. One cheap
/// sequential pass; batch, parallel, and streaming all reproduce exactly
/// this sequence.
pub(crate) fn compute_schedule(config: &EmprofConfig, signal: &[f64]) -> Vec<BlockParams> {
    let block = config.calib.block(config.norm_window_samples);
    let blocks = signal.len().div_ceil(block);
    let mut cal = Calibrator::new(config);
    let mut out = Vec::with_capacity(blocks);
    for k in 0..blocks {
        out.push(cal.params());
        let end = ((k + 1) * block).min(signal.len());
        cal.observe_block(&signal[k * block..end]);
    }
    out
}

/// Marks events that touch a collapsed dropout gap as
/// [`Confidence::Degraded`]: a gap at survivor position `p` sits between
/// samples `p - 1` and `p`, and an event over `[start, end)` touches it
/// when `start <= p <= end + 1` (the same criterion as
/// `emprof_fault::flag_degraded`). Events and gap points must both be
/// sorted. Returns how many events were (newly) degraded.
pub(crate) fn mark_gap_degraded(events: &mut [StallEvent], gaps: &[usize]) -> usize {
    let mut marked = 0;
    let mut cursor = 0usize;
    for e in events.iter_mut() {
        while cursor < gaps.len() && gaps[cursor] + 1 < e.start_sample {
            cursor += 1;
        }
        if gaps[cursor..]
            .iter()
            .take_while(|&&p| p <= e.end_sample + 1)
            .any(|&p| e.start_sample <= p)
        {
            if e.confidence != Confidence::Degraded {
                marked += 1;
            }
            e.confidence = Confidence::Degraded;
        }
    }
    marked
}

impl Emprof {
    /// The per-block parameter schedule the adaptive detector would use
    /// on `magnitude` (non-finite samples dropped first) — entry `k`
    /// governs samples `[k * block, (k + 1) * block)` of the survivor
    /// signal. Exposed for inspection and tests; detection itself goes
    /// through [`Emprof::profile_magnitude`] with
    /// [`CalibConfig::enabled`] set.
    pub fn calibration_schedule(&self, magnitude: &[f64]) -> Vec<BlockParams> {
        let (survivors, _, _) = sanitize_magnitude(magnitude);
        compute_schedule(&self.config(), &survivors)
    }

    /// The adaptive profiling path shared by the batch and parallel
    /// entry points: compute the causal block schedule, run the gated
    /// fused kernel per block (fanned out over `par`), stitch the runs
    /// exactly like the parallel detector, then reuse the shared
    /// refine/filter/classify back half. Sequential and parallel calls
    /// produce bit-identical profiles because the schedule is computed
    /// before any fan-out and blocks are stitched in order.
    pub(crate) fn profile_adaptive(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
        par: Parallelism,
    ) -> Profile {
        let _span = obs::span!("detect.adaptive");
        let cfg = self.config();
        let (survivors, rejected, gaps) = sanitize_magnitude(magnitude);
        if rejected > 0 {
            obs::counter_add!("detect.samples_rejected", rejected as u64);
        }
        let signal = &survivors[..];
        let n = signal.len();
        let schedule = compute_schedule(&cfg, signal);
        let block = cfg.calib.block(cfg.norm_window_samples);

        let kernel = |k: usize| {
            let p = &schedule[k];
            fused::detect_runs_range_gated(
                signal,
                p.window,
                p.threshold,
                p.edge_level,
                p.min_range,
                k * block,
                ((k + 1) * block).min(n),
                None,
            )
            .expect("block passes run on the sanitized signal")
        };
        let indices: Vec<usize> = (0..schedule.len()).collect();
        let parts = if par.is_sequential() || indices.len() <= 1 {
            indices.iter().map(|&k| kernel(k)).collect::<Vec<_>>()
        } else {
            pool::parallel_map(par, &indices, |&k| kernel(k))
        };

        // Stitch exactly like the parallel detector: threshold runs via
        // the batch gap-merge criterion (a gap-0 pair can only be a run
        // split at a block boundary), below-edge runs via gap-0 rejoin.
        let mut merged: Vec<(usize, usize)> = Vec::new();
        let mut below_edge: Vec<(usize, usize)> = Vec::new();
        for part in parts {
            for run in part.below_threshold {
                match merged.last_mut() {
                    Some(last) if run.0 - last.1 <= cfg.merge_gap_samples => last.1 = run.1,
                    _ => merged.push(run),
                }
            }
            for run in part.below_edge {
                match below_edge.last_mut() {
                    Some(last) if last.1 == run.0 => last.1 = run.1,
                    _ => below_edge.push(run),
                }
            }
        }

        let dips = refine_from_runs(merged, &below_edge, n);
        let mut events = self.events_from_dips(dips, clock_hz / sample_rate_hz);
        for e in &mut events {
            let k = (e.end_sample.saturating_sub(1) / block).min(schedule.len().saturating_sub(1));
            if schedule.get(k).is_some_and(|p| p.degraded) {
                e.confidence = Confidence::Degraded;
            }
        }
        mark_gap_degraded(&mut events, &gaps);
        obs::counter_add!("detect.samples", n as u64);
        record_event_metrics(&events);
        Profile::new(events, n, sample_rate_hz, clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StallKind;

    fn base_config() -> EmprofConfig {
        let mut c = EmprofConfig::for_rates(40e6, 1.0e9);
        c.calib = CalibConfig::adaptive();
        c
    }

    #[test]
    fn first_block_uses_base_parameters() {
        let cal = Calibrator::new(&base_config());
        let p = cal.params();
        assert_eq!(p.window, 2000);
        assert!((p.threshold - 0.35).abs() < 1e-12);
        assert_eq!(p.min_range, 0.0);
        assert!(!p.degraded);
    }

    #[test]
    fn noisy_attenuated_blocks_raise_threshold_and_enter_degraded() {
        let cfg = base_config();
        let mut cal = Calibrator::new(&cfg);
        // Establish contrast: a dip-bearing clean block, range ~5.
        let mut blk: Vec<f64> = vec![5.0; 2000];
        for v in blk.iter_mut().skip(400).take(12) {
            *v = 0.5;
        }
        cal.observe_block(&blk);
        let clean = cal.params();
        assert!((clean.threshold - 0.35).abs() < 1e-9, "clean stays at base");
        assert!(!clean.degraded);
        // Heavy attenuation + noise: contrast collapses toward the noise
        // span, the noise fraction rises, threshold tracks up, and the
        // state machine degrades.
        for r in 0..CONTRAST_RING + 4 {
            let noisy: Vec<f64> = (0..2000)
                .map(|i| {
                    let noise = ((i * 2_654_435_761usize + r) % 1000) as f64 / 1000.0 * 0.4;
                    let dip = if (400..412).contains(&i) { 0.02 } else { 0.25 };
                    dip + noise
                })
                .collect();
            cal.observe_block(&noisy);
        }
        let p = cal.params();
        assert!(p.threshold > 0.4, "threshold did not adapt: {}", p.threshold);
        assert!(p.edge_level >= p.threshold);
        assert!(p.min_range > 0.0, "contrast gate not engaged");
        assert!(cal.is_degraded());
        assert_eq!(cal.transitions.0, 1);
        // Recovery: clean contrast returns.
        for _ in 0..CONTRAST_RING + 4 {
            let mut blk: Vec<f64> = vec![5.0; 2000];
            for v in blk.iter_mut().skip(400).take(12) {
                *v = 0.5;
            }
            cal.observe_block(&blk);
        }
        assert!(!cal.is_degraded(), "state machine never recovered");
        assert_eq!(cal.transitions.1, 1);
    }

    #[test]
    fn fast_drift_shrinks_window() {
        let cfg = base_config();
        let mut cal = Calibrator::new(&cfg);
        // Busy level halving every block: enormous drift.
        let mut level = 8.0;
        for _ in 0..6 {
            let blk: Vec<f64> = vec![level; 2000];
            cal.observe_block(&blk);
            level *= 0.5;
        }
        let p = cal.params();
        assert!(
            p.window < cfg.norm_window_samples,
            "window did not shrink: {}",
            p.window
        );
        assert!(p.window >= cfg.calib.window_min);
    }

    #[test]
    fn schedule_is_causal_prefix_stable() {
        // The schedule over a prefix must be a prefix of the schedule
        // over the whole signal — the property the streaming path needs.
        let cfg = base_config();
        let signal: Vec<f64> = (0..20_000)
            .map(|i| {
                let atten = 1.0 - 0.8 * (i as f64 / 20_000.0);
                5.0 * atten + ((i * 2_654_435_761usize) % 1000) as f64 / 1000.0 * 0.2
            })
            .collect();
        let full = compute_schedule(&cfg, &signal);
        let prefix = compute_schedule(&cfg, &signal[..8_000]);
        assert_eq!(&full[..prefix.len() - 1], &prefix[..prefix.len() - 1]);
    }

    #[test]
    fn gap_marking_matches_flag_criterion() {
        let ev = |s: usize, e: usize| StallEvent {
            start_sample: s,
            end_sample: e,
            duration_cycles: 100.0,
            kind: StallKind::Normal,
            confidence: Confidence::High,
        };
        let mut events = [ev(0, 2), ev(5, 9), ev(20, 25)];
        let marked = mark_gap_degraded(&mut events, &[3, 6]);
        assert_eq!(marked, 2);
        assert_eq!(events[0].confidence, Confidence::Degraded);
        assert_eq!(events[1].confidence, Confidence::Degraded);
        assert_eq!(events[2].confidence, Confidence::High);
    }
}
