//! The EMPROF detector: normalization and dip extraction.

use std::borrow::Cow;

use emprof_obs as obs;
use emprof_signal::fused::{self, LevelRuns};
use emprof_sim::PowerTrace;

use crate::calib::mark_gap_degraded;
use crate::config::EmprofConfig;
use crate::profile::{Confidence, Profile, StallEvent, StallKind};

/// The EMPROF profiler (Section IV of the paper).
///
/// Stateless apart from its configuration: the detector needs no training
/// and no a-priori knowledge of the profiled program, which is what lets
/// the paper profile boot sequences before any software infrastructure is
/// up (Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Emprof {
    config: EmprofConfig,
}

impl Emprof {
    /// Creates a profiler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EmprofConfig::validate`].
    pub fn new(config: EmprofConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid EMPROF configuration: {e}"));
        Emprof { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> EmprofConfig {
        self.config
    }

    /// Profiles a magnitude signal sampled at `sample_rate_hz` from a core
    /// clocked at `clock_hz`.
    ///
    /// This is the heart of EMPROF: moving-min/max normalization, then a
    /// duration-filtered threshold detector over the normalized signal.
    ///
    /// Non-finite samples (NaN, ±inf) are dropped before normalization —
    /// a single NaN would otherwise poison every moving min/max window
    /// that sees it. The detector runs on the surviving subsequence, so
    /// event indices are positions within the *accepted* samples and the
    /// profile's `total_samples` counts accepted samples only; rejections
    /// surface on the `detect.samples_rejected` counter. This is the same
    /// policy [`crate::StreamingEmprof::push`] applies, keeping batch and
    /// streaming results identical on any input.
    pub fn profile_magnitude(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> Profile {
        if self.config.calib.enabled {
            return self.profile_adaptive(
                magnitude,
                sample_rate_hz,
                clock_hz,
                emprof_par::Parallelism::sequential(),
            );
        }
        let _profile_span = obs::span!("detect.profile");
        // The fused kernel reads the signal exactly once: both moving
        // wedges advance together, normalization happens inline, the
        // below-threshold/below-edge runs come out directly, and the
        // finite-sample admission check rides along — no separate
        // pre-scan, no intermediate signal-sized vector.
        let fused = {
            let _s = obs::span!("detect.fused");
            fused::detect_runs(
                magnitude,
                self.config.norm_window_samples,
                self.config.threshold,
                self.config.edge_level,
            )
        };
        match fused {
            Ok(runs) => {
                self.profile_from_runs(runs, magnitude.len(), sample_rate_hz, clock_hz, &[])
            }
            Err(_first_bad) => {
                // Rare path: the signal carries NaN/±inf. Drop them (a
                // single NaN would otherwise poison every window that
                // sees it) and rerun the fused pass on the survivors —
                // identical to running on the pre-filtered signal, which
                // is the same policy the streaming detector applies. The
                // collapsed gap positions degrade the confidence of any
                // event that touches them.
                let (kept, rejected, gaps) = sanitize_magnitude(magnitude);
                obs::counter_add!("detect.samples_rejected", rejected as u64);
                let runs = {
                    let _s = obs::span!("detect.fused");
                    fused::detect_runs(
                        &kept,
                        self.config.norm_window_samples,
                        self.config.threshold,
                        self.config.edge_level,
                    )
                    .expect("survivors are finite by construction")
                };
                self.profile_from_runs(runs, kept.len(), sample_rate_hz, clock_hz, &gaps)
            }
        }
    }

    /// The shared back half of batch detection: merge the raw
    /// below-threshold runs, refine edges from the below-edge run list,
    /// filter and classify. Used by both the clean fused path and the
    /// sanitize-and-retry fallback; `total` is the accepted-sample count
    /// the profile reports.
    fn profile_from_runs(
        &self,
        runs: LevelRuns,
        total: usize,
        sample_rate_hz: f64,
        clock_hz: f64,
        gaps: &[usize],
    ) -> Profile {
        let merged = {
            let _s = obs::span!("detect.merge");
            self.merge_runs(runs.below_threshold)
        };
        let dips = {
            let _s = obs::span!("detect.refine");
            refine_from_runs(merged, &runs.below_edge, total)
        };
        let mut events = self.events_from_dips(dips, clock_hz / sample_rate_hz);
        mark_gap_degraded(&mut events, gaps);
        obs::counter_add!("detect.samples", total as u64);
        record_event_metrics(&events);
        Profile::new(events, total, sample_rate_hz, clock_hz)
    }

    /// Profiles a captured EM signal (the physical-device path).
    ///
    /// Generic over anything that can provide a magnitude signal with its
    /// rates; in practice this is `emprof_emsim::CapturedSignal` via the
    /// `(magnitude, sample_rate, clock)` triple.
    pub fn profile_capture(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> Profile {
        self.profile_magnitude(magnitude, sample_rate_hz, clock_hz)
    }

    /// Profiles a simulator power trace, first averaging it over
    /// `cycles_per_sample`-cycle intervals exactly as the paper does
    /// (20-cycle intervals, Section III-B) — the Table III validation
    /// path.
    pub fn profile_power_trace(&self, trace: &PowerTrace, cycles_per_sample: usize) -> Profile {
        let (samples, rate) = trace.averaged(cycles_per_sample);
        self.profile_magnitude(&samples, rate, trace.clock_hz())
    }

    /// Reference pipeline over a materialized normalized signal: finds
    /// below-threshold runs, merges runs separated by at most
    /// `merge_gap_samples`, and widens each run outward to the
    /// `edge_level` crossings. The production path runs the fused
    /// kernel instead; this stays as the executable specification the
    /// unit tests pin the fused path against.
    #[cfg(test)]
    fn detect_dips(&self, norm: &[f64]) -> Vec<(usize, usize)> {
        let raw = self.threshold_runs(norm);
        let merged = self.merge_runs(raw);
        self.refine_edges(norm, merged)
    }

    /// Turns refined dips into duration-filtered, classified stall
    /// events — the last detection stage, shared verbatim by the batch
    /// and parallel paths so their event streams cannot diverge.
    pub(crate) fn events_from_dips(
        &self,
        dips: Vec<(usize, usize)>,
        cps: f64,
    ) -> Vec<StallEvent> {
        let min_samples =
            (self.config.min_duration_cycles / cps).max(self.config.min_duration_samples as f64);
        dips.into_iter()
            .filter(|&(s, e)| (e - s) as f64 >= min_samples)
            .map(|(s, e)| {
                let duration_cycles = (e - s) as f64 * cps;
                StallEvent {
                    start_sample: s,
                    end_sample: e,
                    duration_cycles,
                    kind: if duration_cycles >= self.config.refresh_min_cycles {
                        StallKind::RefreshCollision
                    } else {
                        StallKind::Normal
                    },
                    confidence: Confidence::High,
                }
            })
            .collect()
    }

    /// Below-threshold runs of the normalized signal, as `(start, end)`.
    /// Reference implementation; production uses the fused kernel.
    #[cfg(test)]
    fn threshold_runs(&self, norm: &[f64]) -> Vec<(usize, usize)> {
        let th = self.config.threshold;
        let mut raw: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &v) in norm.iter().enumerate() {
            if v < th {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                raw.push((s, i));
            }
        }
        if let Some(s) = start {
            raw.push((s, norm.len()));
        }
        raw
    }

    /// Merges runs separated by at most `merge_gap_samples`.
    fn merge_runs(&self, raw: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
        for run in raw {
            match merged.last_mut() {
                Some(last) if run.0 - last.1 <= self.config.merge_gap_samples => {
                    last.1 = run.1;
                }
                _ => merged.push(run),
            }
        }
        merged
    }

    /// Widens each run outward to the `edge_level` crossings, without
    /// letting adjacent events overlap, then re-merges any that now
    /// abut. Reference implementation over a materialized normalized
    /// signal; production refines from run lists via
    /// [`refine_from_runs`].
    #[cfg(test)]
    fn refine_edges(&self, norm: &[f64], merged: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        let edge = self.config.edge_level;
        let mut refined: Vec<(usize, usize)> = Vec::with_capacity(merged.len());
        for (idx, &(mut s, mut e)) in merged.iter().enumerate() {
            let left_bound = refined.last().map_or(0, |r: &(usize, usize)| r.1);
            while s > left_bound && norm[s - 1] < edge {
                s -= 1;
            }
            let right_bound = merged.get(idx + 1).map_or(norm.len(), |n| n.0);
            while e < right_bound && norm[e] < edge {
                e += 1;
            }
            refined.push((s, e));
        }
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(refined.len());
        for run in refined {
            match out.last_mut() {
                Some(last) if run.0 <= last.1 => last.1 = last.1.max(run.1),
                _ => out.push(run),
            }
        }
        out
    }
}

/// Widens each merged below-threshold run outward to the `edge_level`
/// crossings using the below-edge **run list** instead of the normalized
/// signal, then re-merges any runs that now abut — bit-identical to the
/// reference `refine_edges`, with the normalized signal never
/// materialized.
///
/// Why this is exact: a merged run's start `s` is a below-threshold
/// sample, and configuration validation guarantees
/// `threshold <= edge_level`, so `s` lies inside some below-edge run
/// `(bs, be)`. The reference walks `s` left while the previous sample is
/// below edge and `s` stays above the previous refined run's end — that
/// walk stops at exactly `max(bs, left_bound)`. Symmetrically the run's
/// last sample `e - 1` lies in a below-edge run `(bs', be')` and the
/// right walk (clipped by the next merged run's start) stops at
/// `min(be', right_bound)`. Interior samples of a merged run — including
/// above-edge samples inside a gap the merge step bridged — are never
/// consulted by the reference, so they cannot matter here either. The
/// final abut-merge is the reference's, verbatim.
pub(crate) fn refine_from_runs(
    merged: Vec<(usize, usize)>,
    below_edge: &[(usize, usize)],
    total: usize,
) -> Vec<(usize, usize)> {
    let mut refined: Vec<(usize, usize)> = Vec::with_capacity(merged.len());
    // Forward cursor into `below_edge`: merged runs are sorted, so the
    // containing below-edge runs only ever advance.
    let mut cursor = 0usize;
    for (idx, &(s, e)) in merged.iter().enumerate() {
        let left_bound = refined.last().map_or(0, |r: &(usize, usize)| r.1);
        while below_edge[cursor].1 <= s {
            cursor += 1;
        }
        debug_assert!(below_edge[cursor].0 <= s, "run start not below edge");
        let refined_start = below_edge[cursor].0.max(left_bound);
        let mut last = cursor;
        while below_edge[last].1 < e {
            last += 1;
        }
        debug_assert!(below_edge[last].0 < e, "run end not below edge");
        let right_bound = merged.get(idx + 1).map_or(total, |m| m.0);
        let refined_end = below_edge[last].1.min(right_bound);
        refined.push((refined_start, refined_end));
        cursor = last;
    }
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(refined.len());
    for run in refined {
        match out.last_mut() {
            Some(last) if run.0 <= last.1 => last.1 = last.1.max(run.1),
            _ => out.push(run),
        }
    }
    out
}

/// Drops non-finite samples ahead of detection, borrowing when the
/// signal is already clean (the overwhelmingly common case — the scan
/// is a single cheap pass). Used by the parallel entry point, which must
/// know the survivor signal before it can chunk it; the batch path folds
/// the same check into the fused kernel instead and only filters on the
/// rare dirty signal. Returns the surviving
/// samples and how many were rejected, plus the survivor positions where
/// runs of rejected samples collapsed out (one point per contiguous gap,
/// the `emprof_fault::survivor_dropout_points` convention) — events
/// touching those positions carry [`Confidence::Degraded`].
pub(crate) fn sanitize_magnitude(magnitude: &[f64]) -> (Cow<'_, [f64]>, usize, Vec<usize>) {
    if magnitude.iter().all(|v| v.is_finite()) {
        return (Cow::Borrowed(magnitude), 0, Vec::new());
    }
    let mut kept: Vec<f64> = Vec::with_capacity(magnitude.len());
    let mut gaps: Vec<usize> = Vec::new();
    for &v in magnitude {
        if v.is_finite() {
            kept.push(v);
        } else if gaps.last() != Some(&kept.len()) {
            gaps.push(kept.len());
        }
    }
    let rejected = magnitude.len() - kept.len();
    (Cow::Owned(kept), rejected, gaps)
}

/// Flushes per-event telemetry shared by the batch and streaming paths:
/// `detect.events` / `detect.refresh_events` counters and the
/// `detect.event_width_samples` width histogram.
pub(crate) fn record_event_metrics(events: &[StallEvent]) {
    if !obs::is_enabled() {
        return;
    }
    obs::counter_add!("detect.events", events.len() as u64);
    let refresh = events
        .iter()
        .filter(|e| e.kind == StallKind::RefreshCollision)
        .count();
    obs::counter_add!("detect.refresh_events", refresh as u64);
    let degraded = events
        .iter()
        .filter(|e| e.confidence == Confidence::Degraded)
        .count();
    obs::counter_add!("detect.confidence.events_degraded", degraded as u64);
    for e in events {
        obs::histogram_record!(
            "detect.event_width_samples",
            (e.end_sample - e.start_sample) as u64
        );
        obs::histogram_record!("detect.stall_latency_cycles", e.duration_cycles as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 40e6;
    const CLK: f64 = 1.0e9;
    const CPS: f64 = CLK / FS; // 25 cycles per sample

    fn emprof() -> Emprof {
        Emprof::new(EmprofConfig::for_rates(FS, CLK))
    }

    /// Busy signal at 5.0 with dips of `dip_samples` at the given starts.
    fn signal_with_dips(len: usize, dips: &[(usize, usize)]) -> Vec<f64> {
        let mut s = vec![5.0; len];
        for &(start, width) in dips {
            for v in s.iter_mut().skip(start).take(width) {
                *v = 0.8;
            }
        }
        s
    }

    #[test]
    fn detects_isolated_stalls() {
        let mag = signal_with_dips(20_000, &[(5_000, 12), (9_000, 12), (13_000, 12)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 3);
        for e in p.events() {
            // 12 samples = 300 cycles; edge refinement may widen slightly.
            assert!(
                (250.0..450.0).contains(&e.duration_cycles),
                "latency {}",
                e.duration_cycles
            );
            assert_eq!(e.kind, StallKind::Normal);
        }
    }

    #[test]
    fn short_dips_are_rejected() {
        // 2 samples = 50 cycles < 100-cycle minimum: on-chip latency, not
        // an LLC miss.
        let mag = signal_with_dips(20_000, &[(5_000, 2)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
    }

    #[test]
    fn long_stall_classified_as_refresh() {
        // 100 samples = 2500 cycles = 2.5 us at 1 GHz: a refresh collision.
        let mag = signal_with_dips(20_000, &[(5_000, 100)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
        assert_eq!(p.refresh_count(), 1);
        assert!(p.events()[0].duration_cycles >= 2000.0);
    }

    #[test]
    fn noise_spike_inside_dip_does_not_split_it() {
        let mut mag = signal_with_dips(20_000, &[(5_000, 12)]);
        mag[5_006] = 5.0; // single-sample spike into the dip
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 1, "merge_gap should absorb the spike");
    }

    #[test]
    fn gain_step_does_not_create_false_stalls() {
        // Probe gain drops 40% mid-capture; normalization must absorb it.
        let mut mag = vec![5.0; 30_000];
        for v in mag.iter_mut().skip(15_000) {
            *v = 3.0;
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0, "gain step misread as a stall");
    }

    #[test]
    fn dips_detected_under_slow_drift() {
        // ±10% sinusoidal drift over the capture plus real dips.
        let mut mag: Vec<f64> = (0..40_000)
            .map(|i| 5.0 * (1.0 + 0.1 * (i as f64 * 1e-4).sin()))
            .collect();
        for &start in &[10_000usize, 20_000, 30_000] {
            for v in mag.iter_mut().skip(start).take(12) {
                *v *= 0.15;
            }
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 3);
    }

    #[test]
    fn measured_latency_tracks_true_duration() {
        // Dips of 8, 16, and 40 samples: 200, 400, 1000 cycles.
        let mag = signal_with_dips(30_000, &[(5_000, 8), (10_000, 16), (15_000, 40)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.events().len(), 3);
        let measured: Vec<f64> = p.events().iter().map(|e| e.duration_cycles).collect();
        for (m, expected) in measured.iter().zip([200.0, 400.0, 1000.0]) {
            let err = (m - expected).abs() / expected;
            assert!(err < 0.3, "measured {m} vs expected {expected}");
        }
        // Ordering must be preserved exactly.
        assert!(measured[0] < measured[1] && measured[1] < measured[2]);
    }

    #[test]
    fn event_positions_map_to_cycles() {
        let mag = signal_with_dips(20_000, &[(5_000, 12)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        let cycle = p.sample_to_cycle(p.events()[0].center_sample());
        let expected = (5_006.0 * CPS) as i64;
        assert!((cycle as i64 - expected).abs() < (3.0 * CPS) as i64);
    }

    #[test]
    fn dip_at_signal_edges_is_handled() {
        // Dip running off the end of the capture.
        let mut mag = vec![5.0; 10_000];
        for v in mag.iter_mut().skip(9_990) {
            *v = 0.8;
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert!(p.events().len() <= 1);
        if let Some(e) = p.events().first() {
            assert_eq!(e.end_sample, 10_000);
        }
    }

    #[test]
    fn power_trace_path_uses_20_cycle_averaging() {
        // A 1 GHz power trace with a 300-cycle stall; averaged per 20
        // cycles -> 50 MS/s, stall = 15 samples.
        let mut power = vec![5.0f32; 100_000];
        for v in power.iter_mut().skip(50_000).take(300) {
            *v = 1.0;
        }
        let trace = PowerTrace::from_samples(power, 1.0e9);
        let emprof = Emprof::new(EmprofConfig::for_rates(50e6, 1.0e9));
        let p = emprof.profile_power_trace(&trace, 20);
        assert_eq!(p.miss_count(), 1);
        assert!((p.events()[0].duration_cycles - 300.0).abs() < 120.0);
    }

    #[test]
    fn empty_signal_gives_empty_profile() {
        let p = emprof().profile_magnitude(&[], FS, CLK);
        assert_eq!(p.events().len(), 0);
    }

    #[test]
    fn non_finite_samples_cannot_alter_events() {
        // Interleave NaN/±inf between clean samples: the surviving
        // subsequence is exactly the clean signal, so the profile must
        // be identical to the clean run — no poisoned windows, no
        // shifted indices, no phantom or lost events.
        let clean = signal_with_dips(20_000, &[(5_000, 12), (9_000, 30)]);
        let mut dirty = Vec::with_capacity(clean.len() + 64);
        for (i, &v) in clean.iter().enumerate() {
            if i % 997 == 0 {
                dirty.push(f64::NAN);
            }
            if i % 2503 == 0 {
                dirty.push(f64::INFINITY);
            }
            if i % 4099 == 0 {
                dirty.push(f64::NEG_INFINITY);
            }
            dirty.push(v);
        }
        let pc = emprof().profile_magnitude(&clean, FS, CLK);
        let pd = emprof().profile_magnitude(&dirty, FS, CLK);
        assert_eq!(pc.events().len(), pd.events().len());
        for (c, d) in pc.events().iter().zip(pd.events()) {
            assert_eq!((c.start_sample, c.end_sample), (d.start_sample, d.end_sample));
            assert_eq!(c.duration_cycles, d.duration_cycles);
            assert_eq!(c.kind, d.kind);
            assert_eq!(c.confidence, Confidence::High);
        }
        // The dirty run detects the same events but cannot fully trust
        // ones that straddle a collapsed dropout gap (the first dip
        // spans the ∞ inserted before sample 5006).
        assert_eq!(pc.degraded_count(), 0);
        assert!(pd.degraded_count() >= 1, "gap-touching event not degraded");
        assert_eq!(pd.total_samples(), clean.len());
    }

    #[test]
    fn all_non_finite_signal_gives_empty_profile() {
        let p = emprof().profile_magnitude(&[f64::NAN; 5_000], FS, CLK);
        assert_eq!(p.events().len(), 0);
        assert_eq!(p.total_samples(), 0);
    }

    #[test]
    fn constant_signal_yields_no_events() {
        // Flat windows normalize to 1.0 ("no dip"), never a
        // threshold-crossing value.
        let p = emprof().profile_magnitude(&[3.3; 20_000], FS, CLK);
        assert_eq!(p.events().len(), 0);
    }

    #[test]
    fn step_signal_yields_no_events() {
        // A clean upward gain step has flat plateaus on both sides; the
        // lower plateau must not read as a dip.
        let mut mag = vec![2.0; 15_000];
        mag.extend(vec![6.0; 15_000]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid EMPROF configuration")]
    fn bad_config_panics() {
        let mut c = EmprofConfig::for_rates(FS, CLK);
        c.threshold = 2.0;
        Emprof::new(c);
    }

    #[test]
    fn fused_path_matches_reference_pipeline() {
        // The production profile (fused kernel + run-list refine) must be
        // event-for-event identical to the executable specification: a
        // materialized normalization followed by threshold/merge/refine.
        let mut mag: Vec<f64> = (0..50_000)
            .map(|i| 5.0 * (1.0 + 0.1 * (i as f64 * 7e-5).sin()))
            .collect();
        for &(start, width) in &[
            (5_000usize, 12usize),
            (9_000, 8),
            (9_012, 8), // close pair: exercises the merge step
            (20_000, 100),
            (35_000, 2), // too short on its own
            (35_004, 10),
            (49_990, 10), // runs off the end
        ] {
            for v in mag.iter_mut().skip(start).take(width) {
                *v *= 0.15;
            }
        }
        let e = emprof();
        let norm =
            emprof_signal::stats::normalize_moving_minmax(&mag, e.config().norm_window_samples);
        let dips = e.detect_dips(&norm);
        let expected = e.events_from_dips(dips, CPS);
        assert!(expected.len() >= 4, "signal produced too few events");
        let p = e.profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.events(), &expected[..]);
    }

    #[test]
    fn refine_from_runs_matches_reference_refine() {
        // Pseudo-random normalized signals across threshold/edge combos,
        // including threshold == edge and a barely-separated pair where
        // merged runs bridge above-edge gaps.
        for (threshold, edge) in [(0.35, 0.5), (0.4, 0.4), (0.3, 0.35), (0.2, 0.9)] {
            let mut cfg = EmprofConfig::for_rates(FS, CLK);
            cfg.threshold = threshold;
            cfg.edge_level = edge;
            let e = Emprof::new(cfg);
            for seed in 0..40usize {
                let norm: Vec<f64> = (0..400)
                    .map(|i| {
                        let h = (i + seed * 991).wrapping_mul(2_654_435_761) % 1024;
                        h as f64 / 1023.0
                    })
                    .collect();
                let below_edge = {
                    let mut runs = Vec::new();
                    let mut start = None;
                    for (i, &v) in norm.iter().enumerate() {
                        if v < edge {
                            start.get_or_insert(i);
                        } else if let Some(s) = start.take() {
                            runs.push((s, i));
                        }
                    }
                    if let Some(s) = start {
                        runs.push((s, norm.len()));
                    }
                    runs
                };
                let merged = e.merge_runs(e.threshold_runs(&norm));
                let reference = e.refine_edges(&norm, merged.clone());
                let fast = refine_from_runs(merged, &below_edge, norm.len());
                assert_eq!(fast, reference, "threshold {threshold} edge {edge} seed {seed}");
            }
        }
    }
}
