//! The EMPROF detector: normalization and dip extraction.

use std::borrow::Cow;

use emprof_obs as obs;
use emprof_signal::stats;
use emprof_sim::PowerTrace;

use crate::config::EmprofConfig;
use crate::profile::{Profile, StallEvent, StallKind};

/// The EMPROF profiler (Section IV of the paper).
///
/// Stateless apart from its configuration: the detector needs no training
/// and no a-priori knowledge of the profiled program, which is what lets
/// the paper profile boot sequences before any software infrastructure is
/// up (Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Emprof {
    config: EmprofConfig,
}

impl Emprof {
    /// Creates a profiler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EmprofConfig::validate`].
    pub fn new(config: EmprofConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid EMPROF configuration: {e}"));
        Emprof { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> EmprofConfig {
        self.config
    }

    /// Profiles a magnitude signal sampled at `sample_rate_hz` from a core
    /// clocked at `clock_hz`.
    ///
    /// This is the heart of EMPROF: moving-min/max normalization, then a
    /// duration-filtered threshold detector over the normalized signal.
    ///
    /// Non-finite samples (NaN, ±inf) are dropped before normalization —
    /// a single NaN would otherwise poison every moving min/max window
    /// that sees it. The detector runs on the surviving subsequence, so
    /// event indices are positions within the *accepted* samples and the
    /// profile's `total_samples` counts accepted samples only; rejections
    /// surface on the `detect.samples_rejected` counter. This is the same
    /// policy [`crate::StreamingEmprof::push`] applies, keeping batch and
    /// streaming results identical on any input.
    pub fn profile_magnitude(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> Profile {
        let _profile_span = obs::span!("detect.profile");
        let (magnitude, rejected) = sanitize_magnitude(magnitude);
        if rejected > 0 {
            obs::counter_add!("detect.samples_rejected", rejected as u64);
        }
        let cps = clock_hz / sample_rate_hz;
        let norm = {
            let _s = obs::span!("detect.normalize");
            stats::normalize_moving_minmax(&magnitude, self.config.norm_window_samples)
        };
        let dips = self.detect_dips(&norm);
        let events = self.events_from_dips(dips, cps);
        obs::counter_add!("detect.samples", magnitude.len() as u64);
        record_event_metrics(&events);
        Profile::new(events, magnitude.len(), sample_rate_hz, clock_hz)
    }

    /// Profiles a captured EM signal (the physical-device path).
    ///
    /// Generic over anything that can provide a magnitude signal with its
    /// rates; in practice this is `emprof_emsim::CapturedSignal` via the
    /// `(magnitude, sample_rate, clock)` triple.
    pub fn profile_capture(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> Profile {
        self.profile_magnitude(magnitude, sample_rate_hz, clock_hz)
    }

    /// Profiles a simulator power trace, first averaging it over
    /// `cycles_per_sample`-cycle intervals exactly as the paper does
    /// (20-cycle intervals, Section III-B) — the Table III validation
    /// path.
    pub fn profile_power_trace(&self, trace: &PowerTrace, cycles_per_sample: usize) -> Profile {
        let (samples, rate) = trace.averaged(cycles_per_sample);
        self.profile_magnitude(&samples, rate, trace.clock_hz())
    }

    /// Finds below-threshold runs in the normalized signal, merges runs
    /// separated by at most `merge_gap_samples`, and widens each run
    /// outward to the `edge_level` crossings.
    fn detect_dips(&self, norm: &[f64]) -> Vec<(usize, usize)> {
        let raw = {
            let _s = obs::span!("detect.threshold");
            self.threshold_runs(norm)
        };
        let merged = {
            let _s = obs::span!("detect.merge");
            self.merge_runs(raw)
        };
        let _s = obs::span!("detect.refine");
        self.refine_edges(norm, merged)
    }

    /// Turns refined dips into duration-filtered, classified stall
    /// events — the last detection stage, shared verbatim by the batch
    /// and parallel paths so their event streams cannot diverge.
    pub(crate) fn events_from_dips(
        &self,
        dips: Vec<(usize, usize)>,
        cps: f64,
    ) -> Vec<StallEvent> {
        let min_samples =
            (self.config.min_duration_cycles / cps).max(self.config.min_duration_samples as f64);
        dips.into_iter()
            .filter(|&(s, e)| (e - s) as f64 >= min_samples)
            .map(|(s, e)| {
                let duration_cycles = (e - s) as f64 * cps;
                StallEvent {
                    start_sample: s,
                    end_sample: e,
                    duration_cycles,
                    kind: if duration_cycles >= self.config.refresh_min_cycles {
                        StallKind::RefreshCollision
                    } else {
                        StallKind::Normal
                    },
                }
            })
            .collect()
    }

    /// Below-threshold runs of the normalized signal, as `(start, end)`.
    pub(crate) fn threshold_runs(&self, norm: &[f64]) -> Vec<(usize, usize)> {
        let th = self.config.threshold;
        let mut raw: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &v) in norm.iter().enumerate() {
            if v < th {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                raw.push((s, i));
            }
        }
        if let Some(s) = start {
            raw.push((s, norm.len()));
        }
        raw
    }

    /// Merges runs separated by at most `merge_gap_samples`.
    fn merge_runs(&self, raw: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
        for run in raw {
            match merged.last_mut() {
                Some(last) if run.0 - last.1 <= self.config.merge_gap_samples => {
                    last.1 = run.1;
                }
                _ => merged.push(run),
            }
        }
        merged
    }

    /// Widens each run outward to the `edge_level` crossings, without
    /// letting adjacent events overlap, then re-merges any that now abut.
    pub(crate) fn refine_edges(
        &self,
        norm: &[f64],
        merged: Vec<(usize, usize)>,
    ) -> Vec<(usize, usize)> {
        let edge = self.config.edge_level;
        let mut refined: Vec<(usize, usize)> = Vec::with_capacity(merged.len());
        for (idx, &(mut s, mut e)) in merged.iter().enumerate() {
            let left_bound = refined.last().map_or(0, |r: &(usize, usize)| r.1);
            while s > left_bound && norm[s - 1] < edge {
                s -= 1;
            }
            let right_bound = merged.get(idx + 1).map_or(norm.len(), |n| n.0);
            while e < right_bound && norm[e] < edge {
                e += 1;
            }
            refined.push((s, e));
        }
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(refined.len());
        for run in refined {
            match out.last_mut() {
                Some(last) if run.0 <= last.1 => last.1 = last.1.max(run.1),
                _ => out.push(run),
            }
        }
        out
    }
}

/// Drops non-finite samples ahead of detection, borrowing when the
/// signal is already clean (the overwhelmingly common case — the scan
/// is a single cheap pass). Returns the surviving samples and how many
/// were rejected. Shared by the batch and parallel entry points so the
/// two can never disagree about which samples exist.
pub(crate) fn sanitize_magnitude(magnitude: &[f64]) -> (Cow<'_, [f64]>, usize) {
    if magnitude.iter().all(|v| v.is_finite()) {
        return (Cow::Borrowed(magnitude), 0);
    }
    let kept: Vec<f64> = magnitude.iter().copied().filter(|v| v.is_finite()).collect();
    let rejected = magnitude.len() - kept.len();
    (Cow::Owned(kept), rejected)
}

/// Flushes per-event telemetry shared by the batch and streaming paths:
/// `detect.events` / `detect.refresh_events` counters and the
/// `detect.event_width_samples` width histogram.
pub(crate) fn record_event_metrics(events: &[StallEvent]) {
    if !obs::is_enabled() {
        return;
    }
    obs::counter_add!("detect.events", events.len() as u64);
    let refresh = events
        .iter()
        .filter(|e| e.kind == StallKind::RefreshCollision)
        .count();
    obs::counter_add!("detect.refresh_events", refresh as u64);
    for e in events {
        obs::histogram_record!(
            "detect.event_width_samples",
            (e.end_sample - e.start_sample) as u64
        );
        obs::histogram_record!("detect.stall_latency_cycles", e.duration_cycles as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 40e6;
    const CLK: f64 = 1.0e9;
    const CPS: f64 = CLK / FS; // 25 cycles per sample

    fn emprof() -> Emprof {
        Emprof::new(EmprofConfig::for_rates(FS, CLK))
    }

    /// Busy signal at 5.0 with dips of `dip_samples` at the given starts.
    fn signal_with_dips(len: usize, dips: &[(usize, usize)]) -> Vec<f64> {
        let mut s = vec![5.0; len];
        for &(start, width) in dips {
            for v in s.iter_mut().skip(start).take(width) {
                *v = 0.8;
            }
        }
        s
    }

    #[test]
    fn detects_isolated_stalls() {
        let mag = signal_with_dips(20_000, &[(5_000, 12), (9_000, 12), (13_000, 12)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 3);
        for e in p.events() {
            // 12 samples = 300 cycles; edge refinement may widen slightly.
            assert!(
                (250.0..450.0).contains(&e.duration_cycles),
                "latency {}",
                e.duration_cycles
            );
            assert_eq!(e.kind, StallKind::Normal);
        }
    }

    #[test]
    fn short_dips_are_rejected() {
        // 2 samples = 50 cycles < 100-cycle minimum: on-chip latency, not
        // an LLC miss.
        let mag = signal_with_dips(20_000, &[(5_000, 2)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
    }

    #[test]
    fn long_stall_classified_as_refresh() {
        // 100 samples = 2500 cycles = 2.5 us at 1 GHz: a refresh collision.
        let mag = signal_with_dips(20_000, &[(5_000, 100)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
        assert_eq!(p.refresh_count(), 1);
        assert!(p.events()[0].duration_cycles >= 2000.0);
    }

    #[test]
    fn noise_spike_inside_dip_does_not_split_it() {
        let mut mag = signal_with_dips(20_000, &[(5_000, 12)]);
        mag[5_006] = 5.0; // single-sample spike into the dip
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 1, "merge_gap should absorb the spike");
    }

    #[test]
    fn gain_step_does_not_create_false_stalls() {
        // Probe gain drops 40% mid-capture; normalization must absorb it.
        let mut mag = vec![5.0; 30_000];
        for v in mag.iter_mut().skip(15_000) {
            *v = 3.0;
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0, "gain step misread as a stall");
    }

    #[test]
    fn dips_detected_under_slow_drift() {
        // ±10% sinusoidal drift over the capture plus real dips.
        let mut mag: Vec<f64> = (0..40_000)
            .map(|i| 5.0 * (1.0 + 0.1 * (i as f64 * 1e-4).sin()))
            .collect();
        for &start in &[10_000usize, 20_000, 30_000] {
            for v in mag.iter_mut().skip(start).take(12) {
                *v *= 0.15;
            }
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 3);
    }

    #[test]
    fn measured_latency_tracks_true_duration() {
        // Dips of 8, 16, and 40 samples: 200, 400, 1000 cycles.
        let mag = signal_with_dips(30_000, &[(5_000, 8), (10_000, 16), (15_000, 40)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.events().len(), 3);
        let measured: Vec<f64> = p.events().iter().map(|e| e.duration_cycles).collect();
        for (m, expected) in measured.iter().zip([200.0, 400.0, 1000.0]) {
            let err = (m - expected).abs() / expected;
            assert!(err < 0.3, "measured {m} vs expected {expected}");
        }
        // Ordering must be preserved exactly.
        assert!(measured[0] < measured[1] && measured[1] < measured[2]);
    }

    #[test]
    fn event_positions_map_to_cycles() {
        let mag = signal_with_dips(20_000, &[(5_000, 12)]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        let cycle = p.sample_to_cycle(p.events()[0].center_sample());
        let expected = (5_006.0 * CPS) as i64;
        assert!((cycle as i64 - expected).abs() < (3.0 * CPS) as i64);
    }

    #[test]
    fn dip_at_signal_edges_is_handled() {
        // Dip running off the end of the capture.
        let mut mag = vec![5.0; 10_000];
        for v in mag.iter_mut().skip(9_990) {
            *v = 0.8;
        }
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert!(p.events().len() <= 1);
        if let Some(e) = p.events().first() {
            assert_eq!(e.end_sample, 10_000);
        }
    }

    #[test]
    fn power_trace_path_uses_20_cycle_averaging() {
        // A 1 GHz power trace with a 300-cycle stall; averaged per 20
        // cycles -> 50 MS/s, stall = 15 samples.
        let mut power = vec![5.0f32; 100_000];
        for v in power.iter_mut().skip(50_000).take(300) {
            *v = 1.0;
        }
        let trace = PowerTrace::from_samples(power, 1.0e9);
        let emprof = Emprof::new(EmprofConfig::for_rates(50e6, 1.0e9));
        let p = emprof.profile_power_trace(&trace, 20);
        assert_eq!(p.miss_count(), 1);
        assert!((p.events()[0].duration_cycles - 300.0).abs() < 120.0);
    }

    #[test]
    fn empty_signal_gives_empty_profile() {
        let p = emprof().profile_magnitude(&[], FS, CLK);
        assert_eq!(p.events().len(), 0);
    }

    #[test]
    fn non_finite_samples_cannot_alter_events() {
        // Interleave NaN/±inf between clean samples: the surviving
        // subsequence is exactly the clean signal, so the profile must
        // be identical to the clean run — no poisoned windows, no
        // shifted indices, no phantom or lost events.
        let clean = signal_with_dips(20_000, &[(5_000, 12), (9_000, 30)]);
        let mut dirty = Vec::with_capacity(clean.len() + 64);
        for (i, &v) in clean.iter().enumerate() {
            if i % 997 == 0 {
                dirty.push(f64::NAN);
            }
            if i % 2503 == 0 {
                dirty.push(f64::INFINITY);
            }
            if i % 4099 == 0 {
                dirty.push(f64::NEG_INFINITY);
            }
            dirty.push(v);
        }
        let pc = emprof().profile_magnitude(&clean, FS, CLK);
        let pd = emprof().profile_magnitude(&dirty, FS, CLK);
        assert_eq!(pc.events(), pd.events());
        assert_eq!(pd.total_samples(), clean.len());
    }

    #[test]
    fn all_non_finite_signal_gives_empty_profile() {
        let p = emprof().profile_magnitude(&[f64::NAN; 5_000], FS, CLK);
        assert_eq!(p.events().len(), 0);
        assert_eq!(p.total_samples(), 0);
    }

    #[test]
    fn constant_signal_yields_no_events() {
        // Flat windows normalize to 1.0 ("no dip"), never a
        // threshold-crossing value.
        let p = emprof().profile_magnitude(&[3.3; 20_000], FS, CLK);
        assert_eq!(p.events().len(), 0);
    }

    #[test]
    fn step_signal_yields_no_events() {
        // A clean upward gain step has flat plateaus on both sides; the
        // lower plateau must not read as a dip.
        let mut mag = vec![2.0; 15_000];
        mag.extend(vec![6.0; 15_000]);
        let p = emprof().profile_magnitude(&mag, FS, CLK);
        assert_eq!(p.miss_count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid EMPROF configuration")]
    fn bad_config_panics() {
        let mut c = EmprofConfig::for_rates(FS, CLK);
        c.threshold = 2.0;
        Emprof::new(c);
    }
}
