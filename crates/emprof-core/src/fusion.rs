//! Dual-probe fusion: cross-validating stalls between a CPU-side and a
//! memory-side EM probe (paper Fig. 10, DESIGN.md §15).
//!
//! The paper's dual-probe setup points one probe at the processor and a
//! second at the DRAM chip. A genuine LLC-miss stall has a signature in
//! *both*: the CPU envelope dips while the memory probe bursts with the
//! DRAM access that services the miss. A dip that appears on the CPU
//! probe alone — interference, probe motion, receiver glitches — has no
//! matching memory activity. [`FusedDetector`] profiles the CPU probe as
//! usual, then checks each detected event against the memory probe's
//! normalized activity and rejects events whose span shows (almost) no
//! memory-side activity, counting decisions in `fusion.*` telemetry.

use emprof_obs as obs;
use emprof_par::Parallelism;

use crate::profile::{Profile, StallEvent};
use crate::Emprof;

/// Cross-validation rule for [`FusedDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionConfig {
    /// Normalized memory-probe level at or above which a sample counts
    /// as "memory active" (a DRAM burst), in `(0, 1)`.
    pub burst_level: f64,
    /// Minimum fraction of an event's span that must be memory-active
    /// for the event to be confirmed, in `(0, 1]`.
    pub min_active_fraction: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            burst_level: 0.6,
            min_active_fraction: 0.25,
        }
    }
}

impl FusionConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.burst_level && self.burst_level < 1.0) {
            return Err(format!(
                "burst level must be in (0, 1), got {}",
                self.burst_level
            ));
        }
        if !(0.0 < self.min_active_fraction && self.min_active_fraction <= 1.0) {
            return Err(format!(
                "min active fraction must be in (0, 1], got {}",
                self.min_active_fraction
            ));
        }
        Ok(())
    }
}

/// What dual-probe cross-validation did to one profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionReport {
    /// Events confirmed by memory-side activity.
    pub confirmed: usize,
    /// Events rejected as single-probe artifacts (no memory activity
    /// under the dip), removed from the fused profile.
    pub rejected: usize,
    /// The rejected events themselves, for inspection.
    pub rejected_events: Vec<StallEvent>,
}

/// A dual-probe profiler: the standard CPU-probe detector plus
/// memory-probe cross-validation of every event.
#[derive(Debug, Clone, Copy)]
pub struct FusedDetector {
    emprof: Emprof,
    fusion: FusionConfig,
}

impl FusedDetector {
    /// Creates a dual-probe profiler.
    ///
    /// # Panics
    ///
    /// Panics if the fusion rule fails [`FusionConfig::validate`].
    pub fn new(emprof: Emprof, fusion: FusionConfig) -> Self {
        fusion
            .validate()
            .unwrap_or_else(|e| panic!("invalid fusion configuration: {e}"));
        FusedDetector { emprof, fusion }
    }

    /// The underlying single-probe profiler.
    pub fn emprof(&self) -> &Emprof {
        &self.emprof
    }

    /// Profiles the CPU-probe magnitude, then cross-validates each event
    /// against the memory-probe magnitude: events whose span has less
    /// than the configured fraction of memory-side activity are rejected
    /// as single-probe artifacts and removed.
    ///
    /// The two captures must be sampled at the same rate and aligned;
    /// events extending past the end of the memory capture are confirmed
    /// (no evidence against them). Decisions are counted in the
    /// `fusion.confirmed` / `fusion.rejected` counters.
    pub fn profile_dual(
        &self,
        cpu_magnitude: &[f64],
        mem_magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
        par: Parallelism,
    ) -> (Profile, FusionReport) {
        let profile =
            self.emprof
                .profile_magnitude_par(cpu_magnitude, sample_rate_hz, clock_hz, par);
        self.cross_validate(profile, mem_magnitude, sample_rate_hz, clock_hz)
    }

    /// The cross-validation half of [`profile_dual`](Self::profile_dual),
    /// applied to an already-computed CPU-probe profile.
    pub fn cross_validate(
        &self,
        profile: Profile,
        mem_magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> (Profile, FusionReport) {
        let _span = obs::span!("fusion.cross_validate");
        // Non-finite memory samples are replaced (not dropped — that
        // would shift the alignment) with the last finite value, which
        // reads as "no new information". The memory probe is normalized
        // *globally*, not with the CPU probe's moving window: DRAM
        // bursts are sparse, so a moving min/max would flatten any
        // burst-free stretch to 1.0 and misread exactly the spans we
        // need to call quiet.
        let mem = sanitize_substitute(mem_magnitude);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &mem {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = hi - lo;
        let cut = lo + self.fusion.burst_level * range;
        // Quiet (below-burst) runs of the memory probe, as `(start, end)`.
        // A flat memory capture has no bursts anywhere: all quiet.
        let mut quiet: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &v) in mem.iter().enumerate() {
            if range <= 0.0 || v < cut {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                quiet.push((s, i));
            }
        }
        if let Some(s) = start {
            quiet.push((s, mem.len()));
        }

        let mut kept: Vec<StallEvent> = Vec::with_capacity(profile.events().len());
        let mut rejected_events: Vec<StallEvent> = Vec::new();
        let mut cursor = 0usize;
        for &e in profile.events() {
            if e.end_sample > mem.len() {
                kept.push(e);
                continue;
            }
            let span = (e.end_sample - e.start_sample).max(1);
            while cursor < quiet.len() && quiet[cursor].1 <= e.start_sample {
                cursor += 1;
            }
            let mut inactive = 0usize;
            for &(qs, qe) in &quiet[cursor..] {
                if qs >= e.end_sample {
                    break;
                }
                inactive += qe.min(e.end_sample) - qs.max(e.start_sample);
            }
            let active_fraction = 1.0 - inactive as f64 / span as f64;
            if active_fraction >= self.fusion.min_active_fraction {
                kept.push(e);
            } else {
                rejected_events.push(e);
            }
        }
        let report = FusionReport {
            confirmed: kept.len(),
            rejected: rejected_events.len(),
            rejected_events,
        };
        obs::counter_add!("fusion.confirmed", report.confirmed as u64);
        obs::counter_add!("fusion.rejected", report.rejected as u64);
        let total = profile.total_samples();
        (
            Profile::new(kept, total, sample_rate_hz, clock_hz),
            report,
        )
    }
}

/// Replaces non-finite samples with the last finite value (0 before the
/// first), preserving length and therefore alignment with the CPU probe.
fn sanitize_substitute(signal: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(signal.len());
    let mut last = 0.0f64;
    for &v in signal {
        if v.is_finite() {
            last = v;
        }
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmprofConfig;

    const FS: f64 = 40e6;
    const CLK: f64 = 1.0e9;

    fn detector() -> FusedDetector {
        FusedDetector::new(
            Emprof::new(EmprofConfig::for_rates(FS, CLK)),
            FusionConfig::default(),
        )
    }

    /// CPU probe: busy at 5.0 with dips at the given (start, width).
    fn cpu(len: usize, dips: &[(usize, usize)]) -> Vec<f64> {
        let mut s = vec![5.0; len];
        for &(start, width) in dips {
            for v in s.iter_mut().skip(start).take(width) {
                *v = 0.8;
            }
        }
        s
    }

    /// Memory probe: idle at 0.5 with bursts to 5.0 at (start, width).
    fn mem(len: usize, bursts: &[(usize, usize)]) -> Vec<f64> {
        let mut s = vec![0.5; len];
        for &(start, width) in bursts {
            for v in s.iter_mut().skip(start).take(width) {
                *v = 5.0;
            }
        }
        s
    }

    #[test]
    fn corroborated_events_pass_artifacts_fail() {
        // Two CPU dips; only the first has a matching memory burst.
        let c = cpu(40_000, &[(10_000, 12), (25_000, 12)]);
        let m = mem(40_000, &[(10_000, 14)]);
        let d = detector();
        let (fusedp, report) =
            d.profile_dual(&c, &m, FS, CLK, Parallelism::sequential());
        assert_eq!(report.confirmed, 1);
        assert_eq!(report.rejected, 1);
        assert_eq!(fusedp.events().len(), 1);
        let e = fusedp.events()[0];
        assert!(e.start_sample <= 10_000 && e.end_sample >= 10_010);
        assert!(report.rejected_events[0].start_sample.abs_diff(25_000) <= 4);
    }

    #[test]
    fn partial_overlap_clears_the_fraction_bar() {
        // Memory burst covers only the first third of the dip: above the
        // 25% default bar, still confirmed.
        let c = cpu(40_000, &[(10_000, 12)]);
        let m = mem(40_000, &[(10_000, 4)]);
        let (fusedp, report) =
            detector().profile_dual(&c, &m, FS, CLK, Parallelism::sequential());
        assert_eq!(report.rejected, 0);
        assert_eq!(fusedp.events().len(), 1);
    }

    #[test]
    fn event_past_memory_capture_is_confirmed() {
        let c = cpu(40_000, &[(39_980, 20)]);
        let m = mem(30_000, &[]);
        let (fusedp, report) =
            detector().profile_dual(&c, &m, FS, CLK, Parallelism::sequential());
        assert_eq!(report.rejected, 0);
        assert_eq!(fusedp.events().len(), 1);
    }

    #[test]
    fn non_finite_memory_samples_do_not_shift_alignment() {
        let c = cpu(40_000, &[(10_000, 12)]);
        let mut m = mem(40_000, &[(10_000, 14)]);
        for i in (0..m.len()).step_by(777) {
            m[i] = f64::NAN;
        }
        let (_, report) =
            detector().profile_dual(&c, &m, FS, CLK, Parallelism::sequential());
        assert_eq!(report.rejected, 0);
    }

    #[test]
    #[should_panic(expected = "invalid fusion configuration")]
    fn bad_fusion_config_panics() {
        FusedDetector::new(
            Emprof::new(EmprofConfig::for_rates(FS, CLK)),
            FusionConfig {
                burst_level: 1.5,
                min_active_fraction: 0.25,
            },
        );
    }
}
