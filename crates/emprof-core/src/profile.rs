//! Profiling results: stall events and summary statistics.

use crate::histogram::Histogram;

/// Classification of a detected stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// An ordinary LLC-miss-induced stall (~hundreds of cycles).
    Normal,
    /// A stall long enough to be a DRAM-refresh collision (Fig. 5);
    /// the paper counts and accounts for these separately.
    RefreshCollision,
}

/// How much the detector trusts a reported event.
///
/// Events are `Degraded` when the probe signal was compromised while
/// they were detected: either the event touches a collapsed dropout gap
/// (non-finite samples were removed under it), or the online calibration
/// loop's confidence state machine was in the degraded state (noise span
/// too close to the dip contrast — DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// Detected under healthy probe conditions.
    High,
    /// Detected while the probe signal was compromised; position and
    /// duration may be inaccurate.
    Degraded,
}

/// One detected LLC-miss-induced processor stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallEvent {
    /// First sample of the dip (after edge refinement).
    pub start_sample: usize,
    /// One past the last sample of the dip.
    pub end_sample: usize,
    /// Measured stall latency in core cycles (Δt × f_clk, Section III-A).
    pub duration_cycles: f64,
    /// Stall classification.
    pub kind: StallKind,
    /// Detection confidence under probe faults and drift.
    pub confidence: Confidence,
}

impl StallEvent {
    /// Dip width in samples.
    pub fn duration_samples(&self) -> usize {
        self.end_sample - self.start_sample
    }

    /// Midpoint of the dip, in samples.
    pub fn center_sample(&self) -> usize {
        (self.start_sample + self.end_sample) / 2
    }
}

/// The result of profiling one capture: every detected stall plus the
/// context needed to convert between samples, cycles, and seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    events: Vec<StallEvent>,
    total_samples: usize,
    sample_rate_hz: f64,
    clock_hz: f64,
}

impl Profile {
    /// Assembles a profile; events must be in time order.
    ///
    /// # Panics
    ///
    /// Panics if events are out of order or extend past `total_samples`.
    pub fn new(
        events: Vec<StallEvent>,
        total_samples: usize,
        sample_rate_hz: f64,
        clock_hz: f64,
    ) -> Self {
        for pair in events.windows(2) {
            assert!(
                pair[0].end_sample <= pair[1].start_sample,
                "stall events must be ordered and disjoint"
            );
        }
        if let Some(last) = events.last() {
            assert!(
                last.end_sample <= total_samples,
                "event extends past the capture ({} > {total_samples})",
                last.end_sample
            );
        }
        Profile {
            events,
            total_samples,
            sample_rate_hz,
            clock_hz,
        }
    }

    /// All detected stalls in time order.
    pub fn events(&self) -> &[StallEvent] {
        &self.events
    }

    /// Detected LLC misses — the paper reports one miss per detected
    /// stall, refresh collisions excluded (they are accounted separately,
    /// Section III-C).
    pub fn miss_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == StallKind::Normal)
            .count()
    }

    /// Number of refresh-collision stalls.
    pub fn refresh_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == StallKind::RefreshCollision)
            .count()
    }

    /// Number of events flagged [`Confidence::Degraded`].
    pub fn degraded_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.confidence == Confidence::Degraded)
            .count()
    }

    /// Total measured stall time in cycles (all kinds).
    pub fn total_stall_cycles(&self) -> f64 {
        self.events.iter().map(|e| e.duration_cycles).sum()
    }

    /// Capture length in core cycles.
    pub fn total_cycles(&self) -> f64 {
        self.total_samples as f64 * self.clock_hz / self.sample_rate_hz
    }

    /// Stall time as a fraction of execution time — the
    /// "Miss Latency (%Total Time)" column of Table IV (divide by 100).
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0.0 {
            0.0
        } else {
            self.total_stall_cycles() / total
        }
    }

    /// Mean stall latency in cycles, or 0 with no events.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.total_stall_cycles() / self.events.len() as f64
        }
    }

    /// Histogram of stall latencies (Fig. 11).
    pub fn latency_histogram(&self, bin_width_cycles: f64, max_cycles: f64) -> Histogram {
        Histogram::from_values(
            self.events.iter().map(|e| e.duration_cycles),
            bin_width_cycles,
            max_cycles,
        )
    }

    /// Restricts the profile to events whose center lies in
    /// `[start_sample, end_sample)` — used to isolate the microbenchmark's
    /// measured section.
    ///
    /// Events keep their *absolute* sample positions from the original
    /// capture (only the totals are rebased), so positions remain directly
    /// comparable with ground-truth cycle stamps and with the raw signal.
    pub fn slice_samples(&self, start_sample: usize, end_sample: usize) -> Profile {
        let events: Vec<StallEvent> = self
            .events
            .iter()
            .filter(|e| {
                let c = e.center_sample();
                c >= start_sample && c < end_sample
            })
            .copied()
            .collect();
        Profile {
            events,
            total_samples: end_sample.saturating_sub(start_sample),
            sample_rate_hz: self.sample_rate_hz,
            clock_hz: self.clock_hz,
        }
    }

    /// Restricts the profile to a window expressed in core cycles.
    pub fn slice_cycles(&self, start_cycle: u64, end_cycle: u64) -> Profile {
        let to_sample =
            |c: u64| (c as f64 * self.sample_rate_hz / self.clock_hz).round() as usize;
        self.slice_samples(to_sample(start_cycle), to_sample(end_cycle))
    }

    /// Capture sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Profiled core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Capture length in samples.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// Core cycles represented by one sample.
    pub fn cycles_per_sample(&self) -> f64 {
        self.clock_hz / self.sample_rate_hz
    }

    /// Converts a sample index to a core cycle.
    pub fn sample_to_cycle(&self, sample: usize) -> u64 {
        (sample as f64 * self.cycles_per_sample()).round() as u64
    }

    /// Misses per million cycles — the rate column of Table V.
    pub fn miss_rate_per_mcycle(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0.0 {
            0.0
        } else {
            self.miss_count() as f64 / total * 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: usize, end: usize, cycles: f64, kind: StallKind) -> StallEvent {
        StallEvent {
            start_sample: start,
            end_sample: end,
            duration_cycles: cycles,
            kind,
            confidence: Confidence::High,
        }
    }

    fn profile() -> Profile {
        Profile::new(
            vec![
                ev(100, 112, 300.0, StallKind::Normal),
                ev(200, 212, 310.0, StallKind::Normal),
                ev(300, 400, 2500.0, StallKind::RefreshCollision),
                ev(500, 510, 250.0, StallKind::Normal),
            ],
            10_000,
            40e6,
            1.0e9,
        )
    }

    #[test]
    fn counts_separate_refresh() {
        let p = profile();
        assert_eq!(p.miss_count(), 3);
        assert_eq!(p.refresh_count(), 1);
        assert_eq!(p.events().len(), 4);
    }

    #[test]
    fn stall_cycle_totals() {
        let p = profile();
        assert!((p.total_stall_cycles() - 3360.0).abs() < 1e-9);
        // 10_000 samples at 25 cycles/sample = 250k cycles.
        assert!((p.total_cycles() - 250_000.0).abs() < 1e-6);
        assert!((p.stall_fraction() - 3360.0 / 250_000.0).abs() < 1e-9);
    }

    #[test]
    fn mean_latency() {
        let p = profile();
        assert!((p.mean_latency_cycles() - 3360.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn slicing_by_samples() {
        let p = profile();
        let s = p.slice_samples(150, 450);
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.miss_count(), 1);
        assert_eq!(s.refresh_count(), 1);
        assert_eq!(s.total_samples(), 300);
    }

    #[test]
    fn slicing_by_cycles() {
        let p = profile();
        // Cycle window [2500, 11250) = samples [100, 450).
        let s = p.slice_cycles(2500, 11_250);
        assert_eq!(s.events().len(), 3);
    }

    #[test]
    fn miss_rate_per_mcycle() {
        let p = profile();
        assert!((p.miss_rate_per_mcycle() - 3.0 / 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = Profile::new(vec![], 0, 40e6, 1e9);
        assert_eq!(p.miss_count(), 0);
        assert_eq!(p.stall_fraction(), 0.0);
        assert_eq!(p.mean_latency_cycles(), 0.0);
        assert_eq!(p.miss_rate_per_mcycle(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ordered and disjoint")]
    fn out_of_order_events_panic() {
        Profile::new(
            vec![
                ev(200, 212, 300.0, StallKind::Normal),
                ev(100, 112, 300.0, StallKind::Normal),
            ],
            1000,
            40e6,
            1e9,
        );
    }

    #[test]
    #[should_panic(expected = "past the capture")]
    fn event_past_end_panics() {
        Profile::new(vec![ev(100, 2000, 300.0, StallKind::Normal)], 1000, 40e6, 1e9);
    }
}
