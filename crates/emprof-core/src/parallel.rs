//! Multi-core dip detection with overlap-merge equivalence.
//!
//! [`Emprof::profile_magnitude_par`] splits the capture into per-worker
//! chunks, runs the fused normalize-and-detect kernel per chunk on a
//! scoped worker pool, and stitches the per-chunk results back into
//! exactly the event stream the batch detector produces. The equivalence
//! argument (DESIGN.md §8) has three legs:
//!
//! 1. **Normalization** — each chunk runs
//!    [`fused::detect_runs_range`], whose moving wedges read
//!    moving-extreme context from the full signal. Every chunk sample is
//!    therefore normalized to the bit-identical value the batch kernel
//!    produces; the overlap margin (`norm_window / 2` on each side) is
//!    implicit in the shared full-signal slice. The normalized values
//!    themselves are never materialized — only their below-level runs
//!    leave the kernel.
//! 2. **Below-level runs** — runs found per chunk over disjoint core
//!    ranges concatenate to the batch run lists, except that a run
//!    straddling a seam arrives split into abutting pieces. For
//!    below-threshold runs the batch gap-merge criterion
//!    (`gap <= merge_gap_samples`) always rejoins a gap-0 split, and
//!    left-to-right greedy merging is invariant under splitting of
//!    abutting runs, so the merged run list is identical; each seam
//!    rejoin is counted in the `par.merge_fixups` gauge. Below-edge runs
//!    within a chunk can never abut (a run only ends on an above-edge
//!    sample or the chunk boundary), so gap-0 stitching rejoins exactly
//!    the seam-split runs and reconstructs the batch below-edge list.
//! 3. **Edge refinement and classification** — both run on the stitched
//!    run lists through literally the same code as the batch path
//!    ([`crate::detect::refine_from_runs`]).
//!
//! Net: for any thread count and any input, the parallel profile is
//! event-for-event (in fact bit-for-bit) identical to
//! [`Emprof::profile_magnitude`].

use emprof_obs as obs;
use emprof_par::chunk::ChunkPlan;
use emprof_par::{pool, Parallelism};
use emprof_signal::fused::{self, LevelRuns};

use crate::detect::{record_event_metrics, refine_from_runs, sanitize_magnitude, Emprof};
use crate::profile::Profile;

impl Emprof {
    /// Parallel [`profile_magnitude`](Emprof::profile_magnitude): same
    /// arguments, same result, fanned out over `par` workers.
    ///
    /// With a sequential [`Parallelism`] this *is* the batch detector
    /// (same code path), which is what `--threads 1` relies on. Otherwise
    /// the capture is chunked per worker and the results are stitched as
    /// described in the module docs; the output `Profile` is identical to
    /// the batch detector's for any thread count.
    ///
    /// Emits the same `detect.samples` / `detect.events` /
    /// `detect.refresh_events` counters and `detect.event_width_samples`
    /// histogram as the batch path, plus `par.chunks`, `par.threads` and
    /// `par.merge_fixups` gauges describing the chunking itself.
    pub fn profile_magnitude_par(
        &self,
        magnitude: &[f64],
        sample_rate_hz: f64,
        clock_hz: f64,
        par: Parallelism,
    ) -> Profile {
        if self.config().calib.enabled {
            // Adaptive detection runs its own block-parallel fan-out and
            // is schedule-identical across all entry points.
            return self.profile_adaptive(magnitude, sample_rate_hz, clock_hz, par);
        }
        if par.is_sequential() {
            // The batch path folds the finite check into the fused kernel;
            // handing off before sanitizing keeps the clean-path sequential
            // case at exactly one read of the signal.
            return self.profile_magnitude(magnitude, sample_rate_hz, clock_hz);
        }
        // Same non-finite rejection as the batch path, applied before
        // chunking so every worker sees the identical survivor signal.
        let (magnitude, rejected, gaps) = sanitize_magnitude(magnitude);
        if rejected > 0 {
            obs::counter_add!("detect.samples_rejected", rejected as u64);
        }
        let magnitude = &magnitude[..];
        let n = magnitude.len();
        if n < 2 {
            // Already sanitized, so the batch fused pass cannot fail.
            return self.profile_magnitude(magnitude, sample_rate_hz, clock_hz);
        }
        let _span = obs::span!("par.profile");
        let cfg = self.config();
        let margin = cfg.norm_window_samples / 2;
        let plan = ChunkPlan::new(n, par.get(), margin);
        obs::gauge_set!("par.chunks", plan.count() as f64);
        obs::gauge_set!("par.threads", par.get().min(plan.count()) as f64);

        // Per chunk: one fused pass over the core range against
        // full-signal context, emitting below-threshold and below-edge
        // runs directly in global coordinates. The signal is sanitized,
        // so the pass cannot hit a non-finite sample.
        let parts: Vec<LevelRuns> = pool::parallel_map(par, plan.chunks(), |c| {
            fused::detect_runs_range(
                magnitude,
                cfg.norm_window_samples,
                cfg.threshold,
                cfg.edge_level,
                c.start,
                c.end,
                None,
            )
            .expect("chunk passes run on the sanitized signal")
        });

        let _stitch = obs::span!("par.stitch");
        let mut raw: Vec<(usize, usize)> = Vec::new();
        let mut below_edge: Vec<(usize, usize)> = Vec::new();
        for part in parts {
            raw.extend(part.below_threshold);
            // Below-edge runs split at a seam abut with gap 0; runs from
            // the same chunk never abut, so this rejoins exactly the
            // seam splits and reconstructs the batch below-edge list.
            for run in part.below_edge {
                match below_edge.last_mut() {
                    Some(last) if last.1 == run.0 => last.1 = run.1,
                    _ => below_edge.push(run),
                }
            }
        }

        // The batch merge criterion, with seam-rejoin accounting. Within a
        // chunk, threshold runs are never abutting (a run only ends on an
        // above-threshold sample), so a gap of exactly 0 can only be a run
        // split at a chunk seam.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
        let mut fixups = 0u64;
        for run in raw {
            match merged.last_mut() {
                Some(last) if run.0 - last.1 <= cfg.merge_gap_samples => {
                    if run.0 == last.1 {
                        fixups += 1;
                    }
                    last.1 = run.1;
                }
                _ => merged.push(run),
            }
        }
        obs::gauge_set!("par.merge_fixups", fixups as f64);

        let dips = refine_from_runs(merged, &below_edge, n);
        let mut events = self.events_from_dips(dips, clock_hz / sample_rate_hz);
        crate::calib::mark_gap_degraded(&mut events, &gaps);
        obs::counter_add!("detect.samples", n as u64);
        record_event_metrics(&events);
        Profile::new(events, n, sample_rate_hz, clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmprofConfig;

    const FS: f64 = 40e6;
    const CLK: f64 = 1.0e9;

    fn emprof() -> Emprof {
        Emprof::new(EmprofConfig::for_rates(FS, CLK))
    }

    /// Busy signal with ±10% drift and dips of the given (start, width).
    fn signal(len: usize, dips: &[(usize, usize)]) -> Vec<f64> {
        let mut s: Vec<f64> = (0..len)
            .map(|i| 5.0 * (1.0 + 0.1 * (i as f64 * 7e-5).sin()))
            .collect();
        for &(start, width) in dips {
            for v in s.iter_mut().skip(start).take(width) {
                *v *= 0.15;
            }
        }
        s
    }

    #[test]
    fn parallel_profile_matches_batch_bit_for_bit() {
        let mag = signal(
            60_000,
            &[(5_000, 12), (9_000, 8), (9_030, 8), (20_000, 100), (55_000, 40)],
        );
        let e = emprof();
        let batch = e.profile_magnitude(&mag, FS, CLK);
        for threads in [2, 3, 5, 8] {
            let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::new(threads));
            assert_eq!(batch, par, "threads {threads}");
        }
    }

    #[test]
    fn dip_straddling_a_seam_is_rejoined() {
        // With 2 threads over 40_000 samples the seam is at 20_000; plant
        // a dip right across it (flat busy level so it is the only event).
        let mut mag = vec![5.0; 40_000];
        for v in mag.iter_mut().skip(19_990).take(20) {
            *v = 0.8;
        }
        let e = emprof();
        let batch = e.profile_magnitude(&mag, FS, CLK);
        assert_eq!(batch.events().len(), 1);
        let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::new(2));
        assert_eq!(batch, par, "seam-straddling dip must not split");
    }

    #[test]
    fn sequential_parallelism_is_the_batch_path() {
        let mag = signal(30_000, &[(12_000, 12)]);
        let e = emprof();
        let batch = e.profile_magnitude(&mag, FS, CLK);
        let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::sequential());
        assert_eq!(batch, par);
    }

    #[test]
    fn degenerate_inputs_match() {
        let e = emprof();
        for mag in [vec![], vec![5.0], vec![0.1; 3]] {
            let batch = e.profile_magnitude(&mag, FS, CLK);
            let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::new(4));
            assert_eq!(batch, par, "len {}", mag.len());
        }
    }

    #[test]
    fn non_finite_input_matches_batch() {
        let mut mag = signal(40_000, &[(9_000, 12), (25_000, 30)]);
        for i in (0..mag.len()).step_by(1_371) {
            mag[i] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][i % 3];
        }
        let e = emprof();
        let batch = e.profile_magnitude(&mag, FS, CLK);
        for threads in [2, 5] {
            let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::new(threads));
            assert_eq!(batch, par, "threads {threads}");
        }
    }

    #[test]
    fn many_more_threads_than_structure_still_match() {
        // Chunks much smaller than the normalization window: every chunk's
        // extrema context crosses multiple seams.
        let mag = signal(4_096, &[(1_000, 12), (2_040, 30), (3_900, 60)]);
        let e = emprof();
        let batch = e.profile_magnitude(&mag, FS, CLK);
        let par = e.profile_magnitude_par(&mag, FS, CLK, Parallelism::new(16));
        assert_eq!(batch, par);
    }
}
