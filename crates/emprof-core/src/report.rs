//! Profile reports: summary statistics, before/after comparison, and a
//! plain-text interchange format.
//!
//! EMPROF's end use is optimization work (Section VI-D): a developer
//! profiles a device, changes code, profiles again, and asks what moved.
//! [`ProfileSummary`] condenses a profile into the numbers the paper's
//! tables report, [`ProfileDiff`] compares two of them, and the CSV
//! routines let captures and profiles cross tool boundaries (a real rig's
//! digitizer exports samples; a CI system archives event lists).

use std::fmt;

use crate::profile::{Confidence, Profile, StallEvent, StallKind};

/// Condensed statistics of one profile (one device + workload run).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Detected ordinary miss stalls.
    pub miss_count: usize,
    /// Detected refresh-collision stalls.
    pub refresh_count: usize,
    /// Total measured stall cycles.
    pub stall_cycles: f64,
    /// Stall time as a fraction of execution time.
    pub stall_fraction: f64,
    /// Misses per million cycles.
    pub miss_rate_per_mcycle: f64,
    /// Mean stall latency (cycles).
    pub mean_latency_cycles: f64,
    /// Median stall latency (cycles).
    pub p50_latency_cycles: f64,
    /// 95th-percentile stall latency (cycles) — the tail the paper argues
    /// counter-based profiling cannot see.
    pub p95_latency_cycles: f64,
    /// 99th-percentile stall latency (cycles).
    pub p99_latency_cycles: f64,
    /// Capture length in cycles.
    pub total_cycles: f64,
}

impl ProfileSummary {
    /// Summarizes a profile.
    pub fn of(profile: &Profile) -> ProfileSummary {
        let mut latencies: Vec<f64> = profile
            .events()
            .iter()
            .map(|e| e.duration_cycles)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |q: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
                latencies[idx]
            }
        };
        ProfileSummary {
            miss_count: profile.miss_count(),
            refresh_count: profile.refresh_count(),
            stall_cycles: profile.total_stall_cycles(),
            stall_fraction: profile.stall_fraction(),
            miss_rate_per_mcycle: profile.miss_rate_per_mcycle(),
            mean_latency_cycles: profile.mean_latency_cycles(),
            p50_latency_cycles: pct(0.50),
            p95_latency_cycles: pct(0.95),
            p99_latency_cycles: pct(0.99),
            total_cycles: profile.total_cycles(),
        }
    }
}

impl fmt::Display for ProfileSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "misses: {} (+{} refresh collisions)",
            self.miss_count, self.refresh_count
        )?;
        writeln!(
            f,
            "stall time: {:.0} cycles ({:.2}% of {:.0} cycles)",
            self.stall_cycles,
            self.stall_fraction * 100.0,
            self.total_cycles
        )?;
        writeln!(f, "miss rate: {:.1} per Mcycle", self.miss_rate_per_mcycle)?;
        write!(
            f,
            "latency: mean {:.0}, p50 {:.0}, p95 {:.0}, p99 {:.0} cycles",
            self.mean_latency_cycles,
            self.p50_latency_cycles,
            self.p95_latency_cycles,
            self.p99_latency_cycles
        )
    }
}

/// A before/after comparison of two profiles of the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Summary of the baseline run.
    pub before: ProfileSummary,
    /// Summary of the modified run.
    pub after: ProfileSummary,
}

impl ProfileDiff {
    /// Compares `after` against `before`.
    pub fn between(before: &Profile, after: &Profile) -> ProfileDiff {
        ProfileDiff {
            before: ProfileSummary::of(before),
            after: ProfileSummary::of(after),
        }
    }

    /// Relative change in miss count (−0.25 = 25 % fewer misses).
    pub fn miss_change(&self) -> f64 {
        relative(self.before.miss_count as f64, self.after.miss_count as f64)
    }

    /// Relative change in total stall cycles.
    pub fn stall_cycle_change(&self) -> f64 {
        relative(self.before.stall_cycles, self.after.stall_cycles)
    }

    /// Relative change in the p95 latency tail.
    pub fn tail_change(&self) -> f64 {
        relative(
            self.before.p95_latency_cycles,
            self.after.p95_latency_cycles,
        )
    }

    /// Relative change in execution time.
    pub fn runtime_change(&self) -> f64 {
        relative(self.before.total_cycles, self.after.total_cycles)
    }
}

fn relative(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        if after == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (after - before) / before
    }
}

impl fmt::Display for ProfileDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = |v: f64| format!("{}{:.1}%", if v >= 0.0 { "+" } else { "" }, v * 100.0);
        writeln!(
            f,
            "misses:       {} -> {} ({})",
            self.before.miss_count,
            self.after.miss_count,
            sign(self.miss_change())
        )?;
        writeln!(
            f,
            "stall cycles: {:.0} -> {:.0} ({})",
            self.before.stall_cycles,
            self.after.stall_cycles,
            sign(self.stall_cycle_change())
        )?;
        writeln!(
            f,
            "p95 latency:  {:.0} -> {:.0} ({})",
            self.before.p95_latency_cycles,
            self.after.p95_latency_cycles,
            sign(self.tail_change())
        )?;
        write!(
            f,
            "runtime:      {:.0} -> {:.0} ({})",
            self.before.total_cycles,
            self.after.total_cycles,
            sign(self.runtime_change())
        )
    }
}

/// Errors from the CSV interchange routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A line did not have the expected number of fields.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// The header line was missing or unrecognized.
    BadHeader(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadRecord { line, message } => {
                write!(f, "line {line}: {message}")
            }
            CsvError::BadHeader(h) => write!(f, "unrecognized header: {h}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Writes a profile's events as CSV
/// (`start_sample,end_sample,duration_cycles,kind,confidence`).
pub fn events_to_csv(profile: &Profile) -> String {
    let mut out =
        String::from("start_sample,end_sample,duration_cycles,kind,confidence\n");
    for e in profile.events() {
        out.push_str(&format!(
            "{},{},{:.3},{},{}\n",
            e.start_sample,
            e.end_sample,
            e.duration_cycles,
            match e.kind {
                StallKind::Normal => "miss",
                StallKind::RefreshCollision => "refresh",
            },
            match e.confidence {
                Confidence::High => "high",
                Confidence::Degraded => "degraded",
            }
        ));
    }
    out
}

/// Parses the CSV produced by [`events_to_csv`] back into events. Also
/// accepts the pre-confidence 4-column format (missing confidence reads
/// as `high`).
///
/// # Errors
///
/// Returns [`CsvError`] on a missing/unknown header or malformed record.
pub fn events_from_csv(csv: &str) -> Result<Vec<StallEvent>, CsvError> {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or("").trim();
    if header != "start_sample,end_sample,duration_cycles,kind,confidence"
        && header != "start_sample,end_sample,duration_cycles,kind"
    {
        return Err(CsvError::BadHeader(header.to_string()));
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(CsvError::BadRecord {
                line: line_no,
                message: format!("expected 4 or 5 fields, got {}", fields.len()),
            });
        }
        let parse_u = |s: &str, what: &str| {
            s.parse::<usize>().map_err(|_| CsvError::BadRecord {
                line: line_no,
                message: format!("bad {what}: {s}"),
            })
        };
        let start_sample = parse_u(fields[0], "start_sample")?;
        let end_sample = parse_u(fields[1], "end_sample")?;
        let duration_cycles = fields[2].parse::<f64>().map_err(|_| CsvError::BadRecord {
            line: line_no,
            message: format!("bad duration: {}", fields[2]),
        })?;
        let kind = match fields[3] {
            "miss" => StallKind::Normal,
            "refresh" => StallKind::RefreshCollision,
            other => {
                return Err(CsvError::BadRecord {
                    line: line_no,
                    message: format!("unknown kind: {other}"),
                })
            }
        };
        let confidence = match fields.get(4).copied() {
            None | Some("high") => Confidence::High,
            Some("degraded") => Confidence::Degraded,
            Some(other) => {
                return Err(CsvError::BadRecord {
                    line: line_no,
                    message: format!("unknown confidence: {other}"),
                })
            }
        };
        if end_sample < start_sample {
            return Err(CsvError::BadRecord {
                line: line_no,
                message: "end before start".to_string(),
            });
        }
        events.push(StallEvent {
            start_sample,
            end_sample,
            duration_cycles,
            kind,
            confidence,
        });
    }
    Ok(events)
}

/// Writes a magnitude signal as one-column CSV with a header, the format
/// [`signal_from_csv`] reads — a lowest-common-denominator interchange
/// with digitizer exports.
pub fn signal_to_csv(signal: &[f64]) -> String {
    let mut out = String::from("magnitude\n");
    for v in signal {
        out.push_str(&format!("{v}\n"));
    }
    out
}

/// Reads a one-column magnitude CSV (header `magnitude`).
///
/// # Errors
///
/// Returns [`CsvError`] on a bad header or a non-numeric sample.
pub fn signal_from_csv(csv: &str) -> Result<Vec<f64>, CsvError> {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or("").trim();
    if header != "magnitude" {
        return Err(CsvError::BadHeader(header.to_string()));
    }
    let mut signal = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        signal.push(line.parse::<f64>().map_err(|_| CsvError::BadRecord {
            line: i + 2,
            message: format!("bad sample: {line}"),
        })?);
    }
    Ok(signal)
}

/// [`signal_from_csv`] with the detector's non-finite sanitization
/// applied at the ingestion boundary: `NaN` / `inf` / `-inf` *parse*
/// as valid `f64`s (so [`signal_from_csv`] accepts them), but a single
/// one would poison every moving min/max window it reaches. This
/// variant drops them at read time and reports how many were rejected,
/// matching the policy of `StreamingEmprof::push`.
///
/// # Errors
///
/// Returns [`CsvError`] on a bad header or a non-numeric sample.
pub fn signal_from_csv_sanitized(csv: &str) -> Result<(Vec<f64>, usize), CsvError> {
    let mut signal = signal_from_csv(csv)?;
    let before = signal.len();
    signal.retain(|v| v.is_finite());
    let rejected = before - signal.len();
    Ok((signal, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: usize, width: usize, cycles: f64) -> StallEvent {
        StallEvent {
            start_sample: start,
            end_sample: start + width,
            duration_cycles: cycles,
            kind: StallKind::Normal,
            confidence: Confidence::High,
        }
    }

    fn sample_profile() -> Profile {
        let mut events: Vec<StallEvent> = (0..99)
            .map(|i| ev(100 + i * 100, 12, 300.0))
            .collect();
        events.push(StallEvent {
            start_sample: 100 + 99 * 100,
            end_sample: 100 + 99 * 100 + 100,
            duration_cycles: 2500.0,
            kind: StallKind::RefreshCollision,
            confidence: Confidence::Degraded,
        });
        Profile::new(events, 20_000, 40e6, 1.0e9)
    }

    #[test]
    fn summary_percentiles() {
        let s = ProfileSummary::of(&sample_profile());
        assert_eq!(s.miss_count, 99);
        assert_eq!(s.refresh_count, 1);
        assert_eq!(s.p50_latency_cycles, 300.0);
        // With 100 events, the rounded 99th-percentile rank is index 98 —
        // still an ordinary 300-cycle stall; the single refresh outlier
        // sits beyond it.
        assert_eq!(s.p99_latency_cycles, 300.0);
        assert!(s.p95_latency_cycles <= s.p99_latency_cycles);
        assert!((s.stall_cycles - (99.0 * 300.0 + 2500.0)).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_profile() {
        let s = ProfileSummary::of(&Profile::new(vec![], 100, 40e6, 1e9));
        assert_eq!(s.miss_count, 0);
        assert_eq!(s.p99_latency_cycles, 0.0);
        assert_eq!(s.stall_fraction, 0.0);
    }

    #[test]
    fn diff_reports_improvements() {
        let before = sample_profile();
        let after = Profile::new(
            (0..49).map(|i| ev(100 + i * 100, 12, 300.0)).collect(),
            18_000,
            40e6,
            1.0e9,
        );
        let diff = ProfileDiff::between(&before, &after);
        assert!((diff.miss_change() - (49.0 - 99.0) / 99.0).abs() < 1e-9);
        assert!(diff.stall_cycle_change() < -0.4);
        assert!(diff.runtime_change() < 0.0);
        let text = diff.to_string();
        assert!(text.contains("misses"));
        assert!(text.contains("->"));
    }

    #[test]
    fn diff_handles_zero_baselines() {
        let empty = Profile::new(vec![], 100, 40e6, 1e9);
        let busy = sample_profile();
        let diff = ProfileDiff::between(&empty, &busy);
        assert!(diff.miss_change().is_infinite());
        let same = ProfileDiff::between(&empty, &empty);
        assert_eq!(same.miss_change(), 0.0);
    }

    #[test]
    fn events_csv_round_trip() {
        let profile = sample_profile();
        let csv = events_to_csv(&profile);
        let events = events_from_csv(&csv).unwrap();
        assert_eq!(events.len(), profile.events().len());
        for (a, b) in events.iter().zip(profile.events()) {
            assert_eq!(a.start_sample, b.start_sample);
            assert_eq!(a.end_sample, b.end_sample);
            assert_eq!(a.kind, b.kind);
            assert!((a.duration_cycles - b.duration_cycles).abs() < 1e-3);
        }
    }

    #[test]
    fn signal_csv_round_trip() {
        let signal = vec![1.5, -0.25, 3.125, 0.0];
        let csv = signal_to_csv(&signal);
        assert_eq!(signal_from_csv(&csv).unwrap(), signal);
    }

    #[test]
    fn csv_errors_are_reported_with_lines() {
        assert!(matches!(
            events_from_csv("nope\n"),
            Err(CsvError::BadHeader(_))
        ));
        let bad = "start_sample,end_sample,duration_cycles,kind\n1,2,3\n";
        match events_from_csv(bad) {
            Err(CsvError::BadRecord { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadRecord, got {other:?}"),
        }
        let bad_kind = "start_sample,end_sample,duration_cycles,kind\n1,2,3.0,weird\n";
        assert!(events_from_csv(bad_kind).is_err());
        let inverted = "start_sample,end_sample,duration_cycles,kind\n5,2,3.0,miss\n";
        assert!(events_from_csv(inverted).is_err());
        assert!(signal_from_csv("magnitude\nabc\n").is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let csv = "magnitude\n1.0\n\n2.0\n";
        assert_eq!(signal_from_csv(csv).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn sanitized_csv_drops_non_finite_samples() {
        // `NaN`/`inf` parse as valid f64s, so the plain reader accepts
        // them — the sanitized boundary must reject them with a count.
        let csv = "magnitude\n1.0\nNaN\n2.0\ninf\n-inf\n3.0\n";
        let plain = signal_from_csv(csv).unwrap();
        assert_eq!(plain.len(), 6);
        let (clean, rejected) = signal_from_csv_sanitized(csv).unwrap();
        assert_eq!(clean, vec![1.0, 2.0, 3.0]);
        assert_eq!(rejected, 3);
    }
}
