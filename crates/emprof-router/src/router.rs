//! The router front tier: terminates the v4 protocol toward clients,
//! owns the session→backend mapping via the [`HashRing`], probes
//! backend health, and migrates sessions off dead backends by
//! replaying their `emprof-store` journals into the new owner.
//!
//! ## Identity model
//!
//! The router issues its *own* session ids and resume tokens to
//! clients; the backend session behind a router session is an
//! implementation detail that can change across migrations without the
//! client noticing. Per session the router keeps the translation:
//!
//! * `seq_offset` — client SAMPLES seq = backend seq + offset,
//! * `event_offset` — client event seq = backend event seq + offset.
//!
//! Both are 0 for a session that has never been lossily migrated, so
//! the common path forwards sequence numbers unchanged and the
//! backend's `admit_seq` dedup works on the client's own numbering.
//!
//! ## Migration
//!
//! When a backend dies (probe mark-down or an I/O failure on the
//! proxied connection), the session's journal is read from the dead
//! node's journal directory ([`BackendSpec::journal_dir`], shared-disk
//! deployment) and replayed into the ring's next owner: samples with
//! their original sequence numbers, then a FLUSH to quiesce, then an
//! EVENTS_ACK seeding the v3 delivery cursor at the recovered value.
//! The deterministic detector regenerates byte-identical events with
//! identical numbering, so the unacked suffix is re-offered exactly
//! where the old backend left off — zero loss, zero duplication
//! (`tests/router_equivalence.rs`, `router_soak`). Without a journal
//! the fallback is a fresh backend session bridged by the offsets
//! above: best-effort, honestly counted as `router.migrations_lossy`
//! (detector state inside the lost window cannot be reconstructed).
//!
//! Journal handoff is only attempted against *dead* backends: journal
//! recovery repairs torn tails in place, which must never race a live
//! writer. A *draining* backend keeps its sessions (drain only stops
//! new placements) until it actually goes down.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use emprof_obs as obs;
use emprof_serve::client::{backoff_with_jitter, ClientConfig};
use emprof_serve::proto::{
    self, ClusterAction, ErrorCode, Frame, HealthWire, Hello, MetricsReply, NodeHealthWire,
    ProtoError, QueryResultWire, QuerySpecWire, ServerStatsWire, SessionRow, SessionStatsWire,
    MAX_SAMPLES_PER_FRAME, VERSION,
};
use emprof_store::JournalConfig;

use crate::ring::{fnv1a_64, HashRing};

/// Read timeout on router-side sockets; bounds shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How long a backend gets to answer a proxied control frame.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// TCP connect timeout when dialing a backend.
const DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// Hard cap on the router-side per-session replay buffer, in frames.
/// Beyond it the oldest frames are dropped and a mid-stream journal
/// replay that would need them instead falls back to dropping the
/// client connection — the client's own resume replay then covers the
/// gap with zero loss.
const UNACKED_CAP: usize = 256;

/// One backend serve node as the router knows it.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Ring name (stable across address changes).
    pub name: String,
    /// `host:port` of the backend's session listener.
    pub addr: String,
    /// The backend's `--journal` directory *as visible to the router*
    /// (shared disk / same host). `None` disables journal handoff for
    /// sessions on this backend — migrations off it are lossy.
    pub journal_dir: Option<PathBuf>,
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The initial backend set. CLUSTER_JOIN frames can grow/shrink it
    /// at runtime.
    pub backends: Vec<BackendSpec>,
    /// Virtual nodes per backend on the ring.
    pub replicas: usize,
    /// Baseline interval between health probes per backend.
    pub probe_interval: Duration,
    /// Consecutive probe failures before a backend is marked down.
    pub down_after: u32,
    /// Backoff machinery for failed probes (the same schedule a
    /// resuming client runs, via [`backoff_with_jitter`]).
    pub client: ClientConfig,
    /// Router sessions idle longer than this are forgotten (mirrors the
    /// backend reaper: a resume after both fired gets NO_SESSION).
    pub idle_timeout: Duration,
    /// When set, serve `GET /metrics` (Prometheus text format) here.
    pub metrics_addr: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            replicas: 64,
            probe_interval: Duration::from_millis(500),
            down_after: 2,
            client: ClientConfig::default(),
            idle_timeout: Duration::from_secs(60),
            metrics_addr: None,
        }
    }
}

/// Live health/ownership state for one backend.
#[derive(Debug, Clone)]
struct BackendState {
    spec: BackendSpec,
    up: bool,
    draining: bool,
    consecutive_failures: u64,
    /// Last NODE_HEALTH reply's numbers (0 until the first probe).
    sessions_active: u64,
    max_sessions: u64,
    uptime_ms: u64,
    migrations_in: u64,
    migrations_out: u64,
}

impl BackendState {
    fn new(spec: BackendSpec) -> BackendState {
        BackendState {
            spec,
            // Optimistic start: a backend is assumed up until probes say
            // otherwise, so the router is usable immediately after bind.
            up: true,
            draining: false,
            consecutive_failures: 0,
            sessions_active: 0,
            max_sessions: 0,
            uptime_ms: 0,
            migrations_in: 0,
            migrations_out: 0,
        }
    }

    fn wire(&self) -> NodeHealthWire {
        NodeHealthWire {
            name: self.spec.name.clone(),
            addr: self.spec.addr.clone(),
            up: self.up,
            draining: self.draining,
            sessions_active: self.sessions_active,
            max_sessions: self.max_sessions,
            migrations_in: self.migrations_in,
            migrations_out: self.migrations_out,
            consecutive_failures: self.consecutive_failures,
            uptime_ms: self.uptime_ms,
        }
    }
}

/// The router-side state of one client session.
#[derive(Debug)]
struct RouterSession {
    rsid: u64,
    rtoken: u64,
    trace_id: u64,
    device: String,
    sample_rate_hz: f64,
    clock_hz: f64,
    config: emprof_core::EmprofConfig,
    /// Current owner backend (ring name).
    backend: String,
    /// Backend-side session id / resume token.
    bsid: u64,
    btoken: u64,
    /// client seq = backend seq + seq_offset.
    seq_offset: u64,
    /// client event seq = backend event seq + event_offset.
    event_offset: u64,
    /// Highest backend-space SAMPLES seq the backend acknowledged.
    backend_acked: u64,
    /// Highest client-space event seq the client acknowledged.
    events_acked_c: u64,
    /// One past the highest client-space event seq ever offered.
    last_offered_end_c: u64,
    /// Whether the final (FIN) stats were forwarded to the client.
    fin_reported: bool,
    /// Replay buffer: client-space frames not yet backend-acked.
    unacked: VecDeque<(u64, Vec<f64>)>,
    /// Oldest frames were dropped from `unacked` (cap); a replay that
    /// needs them must fall back to a client-driven resume.
    unacked_torn: bool,
    /// Connection generation: a resume bumps it, superseding any stale
    /// proxy loop still attached.
    conn_gen: u64,
    attached: bool,
    /// Set by the prober when the owner died while this session was
    /// detached or quiet; the proxy loop migrates at the next frame.
    migrate_requested: bool,
    last_active: Instant,
    samples_pushed: u64,
    /// Degraded-confidence events relayed to the client (deduplicated
    /// against re-offers by the offered watermark).
    events_degraded: u64,
}

impl RouterSession {
    fn key(&self) -> String {
        format!("{}#{}", self.device, self.rsid)
    }

    fn hello(&self, resume: bool) -> Hello {
        Hello {
            sample_rate_hz: self.sample_rate_hz,
            clock_hz: self.clock_hz,
            config: self.config,
            device: self.device.clone(),
            watch: false,
            proxied: true,
            resume_session_id: if resume { self.bsid } else { 0 },
            resume_token: if resume { self.btoken } else { 0 },
        }
    }
}

#[derive(Debug, Default)]
struct RouterCounters {
    sessions_opened: AtomicU64,
    frames_in: AtomicU64,
    samples_in: AtomicU64,
    bytes_in: AtomicU64,
    events_out: AtomicU64,
    migrations: AtomicU64,
    migrations_lossy: AtomicU64,
    probe_failures: AtomicU64,
    mark_downs: AtomicU64,
    reconnects: AtomicU64,
}

/// A point-in-time copy of the router counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStatsSnapshot {
    /// Router sessions opened since startup.
    pub sessions_opened: u64,
    /// Router sessions currently known.
    pub sessions_active: u64,
    /// SAMPLES frames forwarded.
    pub frames_in: u64,
    /// Magnitude samples forwarded.
    pub samples_in: u64,
    /// Events relayed to clients.
    pub events_out: u64,
    /// Sessions migrated between backends (all kinds).
    pub migrations: u64,
    /// Migrations that fell back to the lossy no-journal path.
    pub migrations_lossy: u64,
    /// Failed health probes.
    pub probe_failures: u64,
    /// Up→down transitions.
    pub mark_downs: u64,
    /// Client resumes accepted.
    pub reconnects: u64,
    /// Backends currently marked up.
    pub backends_up: u64,
}

struct RouterShared {
    config: RouterConfig,
    ring: Mutex<HashRing>,
    backends: Mutex<HashMap<String, BackendState>>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<RouterSession>>>>,
    counters: RouterCounters,
    next_rsid: AtomicU64,
    token_seed: u64,
    shutdown: AtomicBool,
    epoch: Instant,
    local_addr: Mutex<String>,
    reader_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// SplitMix64 — the same mixer the serve registry uses for resume
/// tokens.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RouterShared {
    fn backends_up(&self) -> u64 {
        self.backends
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|b| b.up)
            .count() as u64
    }

    fn stats(&self) -> RouterStatsSnapshot {
        let c = &self.counters;
        RouterStatsSnapshot {
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_active: self.sessions.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            frames_in: c.frames_in.load(Ordering::Relaxed),
            samples_in: c.samples_in.load(Ordering::Relaxed),
            events_out: c.events_out.load(Ordering::Relaxed),
            migrations: c.migrations.load(Ordering::Relaxed),
            migrations_lossy: c.migrations_lossy.load(Ordering::Relaxed),
            probe_failures: c.probe_failures.load(Ordering::Relaxed),
            mark_downs: c.mark_downs.load(Ordering::Relaxed),
            reconnects: c.reconnects.load(Ordering::Relaxed),
            backends_up: self.backends_up(),
        }
    }

    fn uptime_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// The backend that should own `key` right now: ring lookup
    /// excluding down and draining nodes. Returns `(name, addr)`.
    fn choose_owner(&self, key: &str, also_exclude: &[&str]) -> Option<(String, String)> {
        let backends = self.backends.lock().unwrap_or_else(|e| e.into_inner());
        let mut excluded: Vec<&str> = backends
            .values()
            .filter(|b| !b.up || b.draining)
            .map(|b| b.spec.name.as_str())
            .collect();
        excluded.extend_from_slice(also_exclude);
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let name = ring.owner_excluding(key, &excluded)?.to_string();
        let addr = backends.get(&name)?.spec.addr.clone();
        Some((name, addr))
    }

    /// Marks a backend down after an I/O failure on a proxied
    /// connection (the prober will mark it back up if it recovers).
    fn mark_down(&self, name: &str) {
        let mut backends = self.backends.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(b) = backends.get_mut(name) {
            if b.up {
                b.up = false;
                self.counters.mark_downs.fetch_add(1, Ordering::Relaxed);
                obs::counter_add!("router.mark_downs", 1);
            }
        }
    }

    fn backend_journal_dir(&self, name: &str) -> Option<PathBuf> {
        self.backends
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)?
            .spec
            .journal_dir
            .clone()
    }

    fn backend_addr(&self, name: &str) -> Option<String> {
        Some(
            self.backends
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(name)?
                .spec
                .addr
                .clone(),
        )
    }

    fn note_migration(&self, from: &str, to: &str, lossy: bool) {
        self.counters.migrations.fetch_add(1, Ordering::Relaxed);
        obs::counter_add!("router.migrations", 1);
        if lossy {
            self.counters.migrations_lossy.fetch_add(1, Ordering::Relaxed);
            obs::counter_add!("router.migrations_lossy", 1);
        }
        let mut backends = self.backends.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(b) = backends.get_mut(from) {
            b.migrations_out += 1;
        }
        if let Some(b) = backends.get_mut(to) {
            b.migrations_in += 1;
        }
    }

    fn cluster_state(&self) -> Vec<NodeHealthWire> {
        let backends = self.backends.lock().unwrap_or_else(|e| e.into_inner());
        let mut nodes: Vec<NodeHealthWire> = backends.values().map(BackendState::wire).collect();
        nodes.sort_by(|a, b| a.name.cmp(&b.name));
        nodes
    }

    /// The router's own aggregate row (name `router`).
    fn self_health(&self) -> NodeHealthWire {
        let backends = self.backends.lock().unwrap_or_else(|e| e.into_inner());
        NodeHealthWire {
            name: "router".into(),
            addr: self.local_addr.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            up: backends.values().any(|b| b.up),
            draining: false,
            sessions_active: self.sessions.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            max_sessions: backends.values().map(|b| b.max_sessions).sum(),
            migrations_in: 0,
            migrations_out: self.counters.migrations.load(Ordering::Relaxed),
            consecutive_failures: 0,
            uptime_ms: self.uptime_ms(),
        }
    }

    fn health(&self) -> HealthWire {
        let s = self.self_health();
        HealthWire {
            healthy: s.up && !self.shutdown.load(Ordering::SeqCst),
            uptime_ms: s.uptime_ms,
            sessions_active: s.sessions_active,
            max_sessions: s.max_sessions,
            journal_enabled: false,
        }
    }

    fn metrics_reply(&self) -> MetricsReply {
        let sessions_map = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let mut sessions: Vec<SessionRow> = sessions_map
            .values()
            .map(|entry| {
                let s = entry.lock().unwrap_or_else(|e| e.into_inner());
                SessionRow {
                    session_id: s.rsid,
                    trace_id: s.trace_id,
                    device: s.device.clone(),
                    connected: s.attached,
                    queue_depth: s.unacked.len() as u64,
                    queue_capacity: UNACKED_CAP as u64,
                    samples_pushed: s.samples_pushed,
                    samples_per_sec: 0.0,
                    events_emitted: s.last_offered_end_c,
                    events_acked: s.events_acked_c,
                    journaled_events: 0,
                    sheds: 0,
                    samples_rejected: 0,
                    events_degraded: s.events_degraded,
                    idle_ms: s.last_active.elapsed().as_millis().min(u64::MAX as u128) as u64,
                }
            })
            .collect();
        drop(sessions_map);
        sessions.sort_by_key(|r| r.session_id);
        sessions.truncate(proto::MAX_SESSION_ROWS as usize);
        let c = &self.counters;
        MetricsReply {
            snapshot: obs::snapshot(),
            server: ServerStatsWire {
                sessions_active: sessions.len() as u64,
                frames_in: c.frames_in.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                samples_in: c.samples_in.load(Ordering::Relaxed),
                events_total: c.events_out.load(Ordering::Relaxed),
                sheds: 0,
            },
            sessions,
        }
    }

    fn note_sessions_active(&self) {
        let n = self.sessions.lock().unwrap_or_else(|e| e.into_inner()).len();
        obs::gauge_set!("router.sessions_active", n as f64);
    }
}

// ---------------------------------------------------------------------
// Framed connections (same contract as the serve-side reader: buffered
// decode so short poll timeouts never lose frame sync).

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Reads one frame; `Ok(None)` on clean close or shutdown. With a
    /// `deadline`, a quiet peer past it is an I/O timeout error.
    fn read_frame(
        &mut self,
        shutdown: &AtomicBool,
        deadline: Option<Instant>,
    ) -> Result<Option<Frame>, ProtoError> {
        loop {
            if self.buf.len() >= proto::HEADER_LEN {
                match proto::decode_frame_view(&self.buf) {
                    Ok((view, consumed)) => {
                        let frame = match view {
                            proto::FrameView::Samples(v) => {
                                let mut samples = Vec::new();
                                v.copy_into(&mut samples);
                                Frame::Samples {
                                    seq: v.seq,
                                    samples,
                                }
                            }
                            proto::FrameView::Owned(frame) => frame,
                        };
                        self.buf.drain(..consumed);
                        return Ok(Some(frame));
                    }
                    Err(ProtoError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {}
                    Err(e) => return Err(e),
                }
            }
            if shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ProtoError::Io(io::ErrorKind::TimedOut.into()));
            }
            let mut tmp = [0u8; 64 * 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(ProtoError::Io(io::ErrorKind::UnexpectedEof.into()))
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn write(&mut self, frame: &Frame) -> io::Result<()> {
        proto::write_frame(&mut self.stream, frame)
    }

    fn bail(&mut self, code: ErrorCode, message: &str) {
        let _ = self.write(&Frame::Error {
            code,
            message: message.into(),
        });
    }
}

/// Why a backend operation failed.
#[derive(Debug)]
enum BErr {
    Io(io::Error),
    Proto(ProtoError),
    /// The backend answered with an ERROR frame.
    Remote(ErrorCode, String),
    /// No live backend can take the session.
    NoBackends,
    /// The router-side replay buffer cannot cover the unjournaled gap;
    /// the client's own resume replay must.
    ReplayGap,
}

impl From<io::Error> for BErr {
    fn from(e: io::Error) -> BErr {
        BErr::Io(e)
    }
}

impl From<ProtoError> for BErr {
    fn from(e: ProtoError) -> BErr {
        BErr::Proto(e)
    }
}

impl std::fmt::Display for BErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BErr::Io(e) => write!(f, "backend i/o: {e}"),
            BErr::Proto(e) => write!(f, "backend protocol: {e}"),
            BErr::Remote(code, msg) => write!(f, "backend error {code:?}: {msg}"),
            BErr::NoBackends => write!(f, "no live backend available"),
            BErr::ReplayGap => write!(f, "replay buffer torn; client resume required"),
        }
    }
}

/// What a backend's HELLO_ACK carried:
/// `(session_id, resume_token, acked_seq, trace_id)`.
type BackendAck = (u64, u64, u64, u64);

/// Dials `addr` and performs the HELLO handshake.
fn dial_backend(
    addr: &str,
    hello: Hello,
    shutdown: &AtomicBool,
) -> Result<(Conn, BackendAck), BErr> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable backend addr"))?;
    let stream = TcpStream::connect_timeout(&sock, DIAL_TIMEOUT)?;
    let mut conn = Conn::new(stream)?;
    conn.write(&Frame::Hello(hello))?;
    let deadline = Some(Instant::now() + REPLY_TIMEOUT);
    loop {
        match conn.read_frame(shutdown, deadline)? {
            Some(Frame::HelloAck {
                version,
                session_id,
                resume_token,
                acked_seq,
                trace_id,
                ..
            }) => {
                if version != VERSION {
                    return Err(BErr::Remote(
                        ErrorCode::UnsupportedVersion,
                        format!("backend speaks v{version}"),
                    ));
                }
                return Ok((conn, (session_id, resume_token, acked_seq, trace_id)));
            }
            Some(Frame::Heartbeat { .. }) => {}
            Some(Frame::Error { code, message }) => return Err(BErr::Remote(code, message)),
            Some(_) => {
                return Err(BErr::Proto(ProtoError::Malformed(
                    "unexpected frame during backend handshake",
                )))
            }
            None => return Err(BErr::Io(io::ErrorKind::UnexpectedEof.into())),
        }
    }
}

/// Reads a FLUSH/FIN reply off a backend connection: zero or more
/// EVENTS frames then a STATS frame. Heartbeats are absorbed. Each
/// EVENTS batch is handed to `on_events` (backend-space numbering).
fn relay_reply(
    bconn: &mut Conn,
    shutdown: &AtomicBool,
    mut on_events: impl FnMut(u64, Vec<emprof_core::StallEvent>) -> Result<(), BErr>,
) -> Result<SessionStatsWire, BErr> {
    let deadline = Some(Instant::now() + REPLY_TIMEOUT);
    loop {
        match bconn.read_frame(shutdown, deadline)? {
            Some(Frame::Events { first_seq, events }) => on_events(first_seq, events)?,
            Some(Frame::Stats(stats)) => return Ok(stats),
            Some(Frame::Heartbeat { .. }) => {}
            Some(Frame::Error { code, message }) => return Err(BErr::Remote(code, message)),
            Some(_) => {
                return Err(BErr::Proto(ProtoError::Malformed(
                    "unexpected frame in backend reply",
                )))
            }
            None => return Err(BErr::Io(io::ErrorKind::UnexpectedEof.into())),
        }
    }
}

/// Migrates `sess` off its (dead) owner onto the ring's next choice.
/// On success the session points at the new backend and the returned
/// connection is attached to it. See the module docs for the
/// exactly-once argument.
fn migrate_session(shared: &Arc<RouterShared>, sess: &mut RouterSession) -> Result<Conn, BErr> {
    let old = sess.backend.clone();
    shared.mark_down(&old);
    let key = sess.key();
    let (new_name, new_addr) = shared
        .choose_owner(&key, &[old.as_str()])
        .ok_or(BErr::NoBackends)?;

    // Journal handoff: read the dead node's journal for this session.
    let recovered = shared
        .backend_journal_dir(&old)
        .map(|root| root.join(format!("session-{}", sess.bsid)))
        .and_then(|dir| emprof_store::read_session(&dir, JournalConfig::default()).ok().flatten()
            .map(|rec| (dir, rec)));

    if let Some((old_dir, rec)) = recovered {
        // The replay buffer must cover everything past the journal's
        // watermark, or the continuation would have a sequence gap the
        // backend rejects. (Client-space seq of the journal watermark.)
        let journal_acked_c = rec.acked_samples_seq + sess.seq_offset;
        let oldest_buffered = sess.unacked.front().map(|&(cseq, _)| cseq);
        if sess.unacked_torn
            && oldest_buffered.is_some_and(|cseq| cseq > journal_acked_c + 1)
        {
            return Err(BErr::ReplayGap);
        }

        let (mut bconn, (bsid2, btoken2, _, _)) =
            dial_backend(&new_addr, sess.hello(false), &shared.shutdown)?;
        // Replay the accepted sample stream with its original backend-
        // space sequence numbers: the deterministic detector rebuilds
        // the exact pre-crash state and event numbering.
        for (seq, samples) in &rec.samples {
            bconn.write(&Frame::Samples {
                seq: *seq,
                samples: samples.clone(),
            })?;
        }
        // Quiesce so the regenerated events finalize, then seed the v3
        // delivery cursor at the recovered value. The events of this
        // administrative flush are NOT forwarded — the unacked suffix
        // is re-offered to the client on its own next FLUSH/FIN and
        // deduped by its seen-watermark either way.
        bconn.write(if rec.finished.is_some() {
            &Frame::Fin
        } else {
            &Frame::Flush
        })?;
        let stats = relay_reply(&mut bconn, &shared.shutdown, |_, _| Ok(()))?;
        if rec.acked_events > 0 {
            bconn.write(&Frame::EventsAck {
                seq: rec.acked_events,
            })?;
        }
        // Top up with the router-buffered frames the journal missed.
        for (cseq, samples) in &sess.unacked {
            let bseq = cseq - sess.seq_offset;
            if bseq > stats.acked_seq {
                bconn.write(&Frame::Samples {
                    seq: bseq,
                    samples: samples.clone(),
                })?;
            }
        }
        sess.backend = new_name.clone();
        sess.bsid = bsid2;
        sess.btoken = btoken2;
        sess.backend_acked = stats.acked_seq.max(rec.acked_samples_seq);
        shared.note_migration(&old, &new_name, false);
        // The old node is dead; were it to restart on the same journal
        // directory it would resurrect a session the fleet has already
        // moved — delete the handed-off journal to make the migration
        // exactly-once across restarts too.
        let _ = fs::remove_dir_all(&old_dir);
        Ok(bconn)
    } else {
        // No journal to hand off: bridge a fresh backend session with
        // sequence offsets. The detector state inside the lost window
        // is gone — honestly lossy, counted as such.
        let (bconn, (bsid2, btoken2, _, _)) =
            dial_backend(&new_addr, sess.hello(false), &shared.shutdown)?;
        let backend_acked_c = sess.backend_acked + sess.seq_offset;
        sess.seq_offset = backend_acked_c;
        sess.event_offset = sess.last_offered_end_c.max(sess.events_acked_c);
        sess.backend = new_name.clone();
        sess.bsid = bsid2;
        sess.btoken = btoken2;
        sess.backend_acked = 0;
        let mut bconn = bconn;
        for (cseq, samples) in &sess.unacked {
            if *cseq > sess.seq_offset {
                bconn.write(&Frame::Samples {
                    seq: cseq - sess.seq_offset,
                    samples: samples.clone(),
                })?;
            }
        }
        shared.note_migration(&old, &new_name, true);
        Ok(bconn)
    }
}

// ---------------------------------------------------------------------
// The public handle.

/// A running router tier. Dropping it (or calling [`Router::shutdown`])
/// stops it.
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    metrics_handle: Option<std::thread::JoinHandle<()>>,
    prober_handle: Option<std::thread::JoinHandle<()>>,
    reaper_handle: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds the client-facing listener and starts the accept, prober,
    /// and reaper threads (plus the `/metrics` responder when
    /// configured).
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let mut ring = HashRing::new(config.replicas);
        let mut backends = HashMap::new();
        for spec in &config.backends {
            ring.add(&spec.name);
            backends.insert(spec.name.clone(), BackendState::new(spec.clone()));
        }
        let token_seed = splitmix64(
            fnv1a_64(local_addr.to_string().as_bytes()) ^ u64::from(std::process::id()),
        );
        let shared = Arc::new(RouterShared {
            config,
            ring: Mutex::new(ring),
            backends: Mutex::new(backends),
            sessions: Mutex::new(HashMap::new()),
            counters: RouterCounters::default(),
            next_rsid: AtomicU64::new(1),
            token_seed,
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            local_addr: Mutex::new(local_addr.to_string()),
            reader_handles: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("emprof-router-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let mut metrics_addr = None;
        let mut metrics_handle = None;
        if let Some(addr) = shared.config.metrics_addr.clone() {
            let metrics_listener = TcpListener::bind(&*addr)?;
            metrics_addr = Some(metrics_listener.local_addr()?);
            let metrics_shared = Arc::clone(&shared);
            metrics_handle = Some(
                std::thread::Builder::new()
                    .name("emprof-router-metrics".into())
                    .spawn(move || metrics_http_loop(&metrics_listener, &metrics_shared))?,
            );
        }

        let prober_shared = Arc::clone(&shared);
        let prober_handle = std::thread::Builder::new()
            .name("emprof-router-prober".into())
            .spawn(move || prober_loop(&prober_shared))?;

        let reaper_shared = Arc::clone(&shared);
        let reaper_handle = std::thread::Builder::new()
            .name("emprof-router-reaper".into())
            .spawn(move || reaper_loop(&reaper_shared))?;

        Ok(Router {
            shared,
            local_addr,
            metrics_addr,
            accept_handle: Some(accept_handle),
            metrics_handle,
            prober_handle: Some(prober_handle),
            reaper_handle: Some(reaper_handle),
        })
    }

    /// The client-facing listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The `/metrics` HTTP listener address, when configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A snapshot of the router counters.
    pub fn stats(&self) -> RouterStatsSnapshot {
        self.shared.stats()
    }

    /// The per-backend health table, as CLUSTER_STATE reports it.
    pub fn cluster_state(&self) -> Vec<NodeHealthWire> {
        self.shared.cluster_state()
    }

    /// Marks a backend draining router-side and forwards the drain verb
    /// to the backend itself (best-effort): no new sessions land there,
    /// existing ones keep working until the node goes away.
    pub fn drain_backend(&self, name: &str) -> bool {
        drain_backend_inner(&self.shared, name)
    }

    /// Graceful shutdown: stop accepting, join every thread.
    pub fn shutdown(mut self) -> RouterStatsSnapshot {
        self.shutdown_inner();
        self.shared.stats()
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, POLL_INTERVAL);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect_timeout(&addr, POLL_INTERVAL);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_handle.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(
            &mut *self
                .shared
                .reader_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in readers {
            let _ = h.join();
        }
        if let Some(h) = self.prober_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn drain_backend_inner(shared: &Arc<RouterShared>, name: &str) -> bool {
    let addr = {
        let mut backends = shared.backends.lock().unwrap_or_else(|e| e.into_inner());
        let Some(b) = backends.get_mut(name) else {
            return false;
        };
        b.draining = true;
        b.spec.addr.clone()
    };
    obs::counter_add!("router.drains", 1);
    // Forward the drain so the backend also rejects fresh sessions that
    // bypass the router. Best-effort: a dead backend is already drained.
    let sock = addr.to_socket_addrs().ok().and_then(|mut a| a.next());
    let stream = sock.and_then(|s| TcpStream::connect_timeout(&s, DIAL_TIMEOUT).ok());
    if let Some(mut conn) = stream.and_then(|s| Conn::new(s).ok()) {
        let _ = conn.write(&Frame::ClusterJoin {
            name: name.to_string(),
            addr,
            action: ClusterAction::Drain,
        });
        let _ = conn.read_frame(&shared.shutdown, Some(Instant::now() + DIAL_TIMEOUT));
    }
    true
}

// ---------------------------------------------------------------------
// Threads.

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("emprof-router-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
        if let Ok(handle) = spawned {
            shared
                .reader_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
    }
}

/// Health probing: one NODE_HEALTH poll per backend per interval, with
/// [`backoff_with_jitter`] pacing retries against failing nodes —
/// exactly the schedule a reconnecting client runs, so a flapping
/// backend sees the same pressure either way.
fn prober_loop(shared: &Arc<RouterShared>) {
    let mut rng: u64 = splitmix64(shared.token_seed ^ 0x0070_726f_6265);
    let mut next_probe: HashMap<String, Instant> = HashMap::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let names: Vec<String> = shared
            .backends
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        let now = Instant::now();
        for name in names {
            if next_probe.get(&name).is_some_and(|&t| now < t) {
                continue;
            }
            let Some(addr) = shared.backend_addr(&name) else {
                continue;
            };
            match probe_backend(&addr, &shared.shutdown) {
                Ok(reply) => {
                    let mut backends = shared.backends.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(b) = backends.get_mut(&name) {
                        if !b.up {
                            obs::counter_add!("router.mark_ups", 1);
                        }
                        b.up = true;
                        b.consecutive_failures = 0;
                        // A backend that reports draining (drained out of
                        // band) is honored router-side too.
                        b.draining = b.draining || reply.draining;
                        b.sessions_active = reply.sessions_active;
                        b.max_sessions = reply.max_sessions;
                        b.uptime_ms = reply.uptime_ms;
                    }
                    next_probe.insert(name, now + shared.config.probe_interval);
                }
                Err(_) => {
                    shared.counters.probe_failures.fetch_add(1, Ordering::Relaxed);
                    obs::counter_add!("router.probe_failures", 1);
                    let failures = {
                        let mut backends =
                            shared.backends.lock().unwrap_or_else(|e| e.into_inner());
                        let Some(b) = backends.get_mut(&name) else {
                            continue;
                        };
                        b.consecutive_failures += 1;
                        if b.up && b.consecutive_failures >= u64::from(shared.config.down_after) {
                            b.up = false;
                            shared.counters.mark_downs.fetch_add(1, Ordering::Relaxed);
                            obs::counter_add!("router.mark_downs", 1);
                            request_migrations(shared, &name);
                        }
                        b.consecutive_failures
                    };
                    let attempt = u32::try_from(failures.saturating_sub(1)).unwrap_or(u32::MAX);
                    let delay = backoff_with_jitter(&shared.config.client, attempt, &mut rng);
                    next_probe.insert(name, now + shared.config.probe_interval.max(delay));
                }
            }
        }
        obs::gauge_set!("router.backends_up", shared.backends_up() as f64);
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One NODE_HEALTH round trip.
fn probe_backend(addr: &str, shutdown: &AtomicBool) -> Result<NodeHealthWire, BErr> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable backend addr"))?;
    let stream = TcpStream::connect_timeout(&sock, DIAL_TIMEOUT)?;
    let mut conn = Conn::new(stream)?;
    conn.write(&Frame::NodeHealthRequest)?;
    match conn.read_frame(shutdown, Some(Instant::now() + REPLY_TIMEOUT))? {
        Some(Frame::NodeHealthReply(n)) => Ok(n),
        Some(Frame::Error { code, message }) => Err(BErr::Remote(code, message)),
        Some(_) => Err(BErr::Proto(ProtoError::Malformed(
            "unexpected probe reply",
        ))),
        None => Err(BErr::Io(io::ErrorKind::UnexpectedEof.into())),
    }
}

/// Flags every session owned by a just-downed backend for migration.
/// Detached sessions are migrated here and now (their journals are
/// safe to read — the node is down); attached ones are flagged so the
/// proxy loop migrates in-stream at its next frame.
fn request_migrations(shared: &Arc<RouterShared>, dead: &str) {
    let entries: Vec<Arc<Mutex<RouterSession>>> = shared
        .sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .cloned()
        .collect();
    for entry in entries {
        let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
        if s.backend != dead {
            continue;
        }
        if s.attached {
            s.migrate_requested = true;
        } else {
            // Migrate now; the connection is dropped right after — the
            // session sits detached on the new owner awaiting resume.
            let _ = migrate_session(shared, &mut s);
        }
    }
}

fn reaper_loop(shared: &Arc<RouterShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL_INTERVAL);
        let idle = shared.config.idle_timeout;
        let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
        sessions.retain(|_, entry| {
            let s = entry.lock().unwrap_or_else(|e| e.into_inner());
            s.attached || s.last_active.elapsed() < idle
        });
        drop(sessions);
        shared.note_sessions_active();
    }
}

// ---------------------------------------------------------------------
// Connection handling.

fn handle_connection(stream: TcpStream, shared: &Arc<RouterShared>) {
    let Ok(mut conn) = Conn::new(stream) else {
        return;
    };
    let first = match conn.read_frame(&shared.shutdown, None) {
        Ok(Some(f)) => f,
        Ok(None) => return,
        Err(e) => {
            conn.bail(e.error_code(), &e.to_string());
            return;
        }
    };
    match first {
        Frame::Hello(h) if h.watch => {
            conn.bail(
                ErrorCode::Protocol,
                "the router has no watch tail; WATCH a backend directly",
            );
        }
        Frame::Hello(h) => proxy_connection(&mut conn, shared, h),
        poll @ (Frame::MetricsRequest
        | Frame::HealthRequest
        | Frame::FlightRequest { .. }
        | Frame::NodeHealthRequest
        | Frame::ClusterStateRequest
        | Frame::ClusterJoin { .. }
        | Frame::Query(_)) => observability_connection(&mut conn, shared, poll),
        _ => conn.bail(ErrorCode::Protocol, "expected HELLO first"),
    }
}

/// Serves observability pollers and cluster admin verbs on the router's
/// own listener — the same poll loop a backend runs, plus the cluster
/// table and topology verbs.
fn observability_connection(conn: &mut Conn, shared: &Arc<RouterShared>, first: Frame) {
    let mut next = Some(first);
    loop {
        let frame = match next.take() {
            Some(f) => f,
            None => match conn.read_frame(&shared.shutdown, None) {
                Ok(Some(f)) => f,
                Ok(None) => return,
                Err(e) => {
                    conn.bail(e.error_code(), &e.to_string());
                    return;
                }
            },
        };
        let reply = match frame {
            Frame::MetricsRequest => Frame::Metrics(shared.metrics_reply()),
            Frame::HealthRequest => Frame::Health(shared.health()),
            // The router has no per-session flight recorders; the
            // backends do. Answer with an empty dump set rather than an
            // error so fleet-blind pollers keep working.
            Frame::FlightRequest { .. } => Frame::FlightReply { dumps: Vec::new() },
            Frame::NodeHealthRequest => Frame::NodeHealthReply(shared.self_health()),
            Frame::ClusterStateRequest => Frame::ClusterStateReply {
                nodes: shared.cluster_state(),
            },
            Frame::ClusterJoin { name, addr, action } => {
                let row = apply_cluster_join(shared, &name, &addr, action);
                Frame::NodeHealthReply(row)
            }
            // A fleet query: fan the spec out to every up backend and
            // merge the per-node results. Identical power-of-two
            // histogram bounds make the merged statistics bit-identical
            // to one query over the union of journals, so
            // routed-equals-direct holds for queries too.
            Frame::Query(spec) => match fan_out_query(shared, &spec) {
                Some(merged) => Frame::QueryResult(merged),
                None => {
                    conn.bail(ErrorCode::Internal, "no backend answered the query");
                    return;
                }
            },
            Frame::Fin => return,
            _ => {
                conn.bail(ErrorCode::Protocol, "metrics connections may only poll");
                return;
            }
        };
        if conn.write(&reply).is_err() {
            return;
        }
    }
}

/// Fans a journal query out to every up backend and merges the
/// results. Backends that fail mid-query are skipped (and counted in
/// `router.query_backend_down`); `None` means not a single backend
/// produced a result.
fn fan_out_query(shared: &Arc<RouterShared>, spec: &QuerySpecWire) -> Option<QueryResultWire> {
    let targets: Vec<String> = {
        let backends = shared.backends.lock().unwrap_or_else(|e| e.into_inner());
        backends
            .values()
            .filter(|b| b.up)
            .map(|b| b.spec.addr.clone())
            .collect()
    };
    let mut merged: Option<QueryResultWire> = None;
    for addr in &targets {
        match query_backend(addr, spec, &shared.shutdown) {
            Ok(result) => match merged.as_mut() {
                Some(m) => m.merge(&result),
                None => merged = Some(result),
            },
            Err(_) => {
                obs::counter_add!("router.query_backend_down", 1);
            }
        }
    }
    merged
}

/// One QUERY round trip against a backend, on a fresh connection (the
/// probe-loop pattern: dial, ask, read one reply, drop).
fn query_backend(
    addr: &str,
    spec: &QuerySpecWire,
    shutdown: &AtomicBool,
) -> Result<QueryResultWire, BErr> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable backend addr"))?;
    let stream = TcpStream::connect_timeout(&sock, DIAL_TIMEOUT)?;
    let mut conn = Conn::new(stream)?;
    conn.write(&Frame::Query(spec.clone()))?;
    match conn.read_frame(shutdown, Some(Instant::now() + REPLY_TIMEOUT))? {
        Some(Frame::QueryResult(r)) => Ok(r),
        Some(Frame::Error { code, message }) => Err(BErr::Remote(code, message)),
        Some(_) => Err(BErr::Proto(ProtoError::Malformed(
            "unexpected query reply",
        ))),
        None => Err(BErr::Io(io::ErrorKind::UnexpectedEof.into())),
    }
}

/// Applies a topology verb and returns the affected node's row.
fn apply_cluster_join(
    shared: &Arc<RouterShared>,
    name: &str,
    addr: &str,
    action: ClusterAction,
) -> NodeHealthWire {
    match action {
        ClusterAction::Join => {
            let mut backends = shared.backends.lock().unwrap_or_else(|e| e.into_inner());
            let state = backends
                .entry(name.to_string())
                .or_insert_with(|| {
                    BackendState::new(BackendSpec {
                        name: name.to_string(),
                        addr: addr.to_string(),
                        journal_dir: None,
                    })
                });
            if !addr.is_empty() {
                state.spec.addr = addr.to_string();
            }
            state.up = true;
            state.draining = false;
            state.consecutive_failures = 0;
            let row = state.wire();
            drop(backends);
            shared
                .ring
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .add(name);
            obs::counter_add!("router.joins", 1);
            row
        }
        ClusterAction::Drain | ClusterAction::Leave => {
            drain_backend_inner(shared, name);
            if action == ClusterAction::Leave {
                // Leaving also takes the node's arc off the ring so new
                // keys never hash there again; its state row is kept
                // (down+draining) for the journal-handoff path.
                shared
                    .ring
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(name);
            }
            shared
                .backends
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(name)
                .map(BackendState::wire)
                .unwrap_or_default()
        }
    }
}

/// How the proxied session connection ended.
enum ProxyExit {
    /// A resumed connection took the session over.
    Superseded,
    /// Transport lost while live; session stays resumable.
    Lost,
    /// Session finished and fully acknowledged: retire it.
    Retired,
}

fn proxy_connection(conn: &mut Conn, shared: &Arc<RouterShared>, hello: Hello) {
    let _sp = obs::span!("router.session");
    let (entry, mut bconn, my_gen) = if hello.resume_session_id != 0 {
        match attach_resume(conn, shared, &hello) {
            Some(x) => x,
            None => return,
        }
    } else {
        match attach_fresh(conn, shared, hello) {
            Some(x) => x,
            None => return,
        }
    };
    let exit = proxy_loop(conn, shared, &entry, &mut bconn, my_gen);
    let rsid = {
        let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
        if s.conn_gen == my_gen {
            s.attached = false;
        }
        s.rsid
    };
    if matches!(exit, ProxyExit::Retired) {
        shared
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&rsid);
        shared.note_sessions_active();
    }
    if matches!(exit, ProxyExit::Lost) && shared.shutdown.load(Ordering::SeqCst) {
        conn.bail(ErrorCode::Shutdown, "router shutting down");
    }
}

/// Places a fresh session on the ring and opens its backend leg.
/// Failing backends are marked down and the walk continues, so a cold
/// dead node costs one dial timeout, not the session.
fn attach_fresh(
    conn: &mut Conn,
    shared: &Arc<RouterShared>,
    hello: Hello,
) -> Option<(Arc<Mutex<RouterSession>>, Conn, u64)> {
    let rsid = shared.next_rsid.fetch_add(1, Ordering::Relaxed);
    let rtoken = splitmix64(shared.token_seed ^ rsid);
    let trace_id = splitmix64(shared.token_seed ^ rsid ^ 0x0074_7261_6365);
    let key = format!("{}#{}", hello.device, rsid);
    let backend_count = shared
        .backends
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len();
    let mut tried: Vec<String> = Vec::new();
    let (bconn, bname, bsid, btoken) = loop {
        if tried.len() > backend_count {
            conn.bail(ErrorCode::Internal, "no live backend available");
            return None;
        }
        let tried_refs: Vec<&str> = tried.iter().map(String::as_str).collect();
        let Some((name, addr)) = shared.choose_owner(&key, &tried_refs) else {
            conn.bail(ErrorCode::Shutdown, "no live backend available");
            return None;
        };
        let bh = Hello {
            proxied: true,
            watch: false,
            resume_session_id: 0,
            resume_token: 0,
            ..hello.clone()
        };
        match dial_backend(&addr, bh, &shared.shutdown) {
            Ok((bconn, (bsid, btoken, _, _))) => break (bconn, name, bsid, btoken),
            Err(BErr::Remote(code, message)) => {
                // The backend answered and refused (bad config, session
                // limit, draining): relay its verdict verbatim.
                conn.bail(code, &message);
                return None;
            }
            Err(_) => {
                shared.mark_down(&name);
                tried.push(name);
            }
        }
    };
    let sess = RouterSession {
        rsid,
        rtoken,
        trace_id,
        device: hello.device,
        sample_rate_hz: hello.sample_rate_hz,
        clock_hz: hello.clock_hz,
        config: hello.config,
        backend: bname,
        bsid,
        btoken,
        seq_offset: 0,
        event_offset: 0,
        backend_acked: 0,
        events_acked_c: 0,
        last_offered_end_c: 0,
        fin_reported: false,
        unacked: VecDeque::new(),
        unacked_torn: false,
        events_degraded: 0,
        conn_gen: 1,
        attached: true,
        migrate_requested: false,
        last_active: Instant::now(),
        samples_pushed: 0,
    };
    let entry = Arc::new(Mutex::new(sess));
    shared
        .sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(rsid, Arc::clone(&entry));
    shared.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
    obs::counter_add!("router.sessions_opened", 1);
    shared.note_sessions_active();
    if conn
        .write(&Frame::HelloAck {
            version: VERSION,
            session_id: rsid,
            max_samples_per_frame: MAX_SAMPLES_PER_FRAME,
            resume_token: rtoken,
            acked_seq: 0,
            trace_id,
        })
        .is_err()
    {
        let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
        s.attached = false;
        return None;
    }
    Some((entry, bconn, 1))
}

/// Reattaches a resuming client: reclaims the backend leg (resume) or
/// migrates if the owner died while the client was away.
fn attach_resume(
    conn: &mut Conn,
    shared: &Arc<RouterShared>,
    hello: &Hello,
) -> Option<(Arc<Mutex<RouterSession>>, Conn, u64)> {
    let entry = {
        let sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
        sessions.get(&hello.resume_session_id).cloned()
    };
    let Some(entry) = entry else {
        conn.bail(
            ErrorCode::NoSession,
            "cannot resume: unknown session or bad token",
        );
        return None;
    };
    let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
    if s.rtoken != hello.resume_token {
        drop(s);
        conn.bail(
            ErrorCode::NoSession,
            "cannot resume: unknown session or bad token",
        );
        return None;
    }
    s.conn_gen += 1;
    s.attached = true;
    s.migrate_requested = false;
    s.last_active = Instant::now();
    let my_gen = s.conn_gen;

    // First try to reclaim the current owner; a dead owner triggers
    // migration (journaled when possible).
    let bconn = match dial_backend(
        &shared.backend_addr(&s.backend).unwrap_or_default(),
        s.hello(true),
        &shared.shutdown,
    ) {
        Ok((bconn, (_, _, acked_seq, _))) => {
            s.backend_acked = acked_seq;
            Ok(bconn)
        }
        Err(BErr::Remote(ErrorCode::NoSession, _)) => {
            // The backend reaped or retired it; nothing to resume.
            drop(s);
            conn.bail(ErrorCode::NoSession, "session expired on its backend");
            return None;
        }
        Err(_) => migrate_session(shared, &mut s),
    };
    let bconn = match bconn {
        Ok(b) => b,
        Err(e) => {
            drop(s);
            conn.bail(ErrorCode::Internal, &format!("resume failed: {e}"));
            return None;
        }
    };
    // Prune the replay buffer to the surviving watermark before the
    // client replays on top of it.
    let acked_c = s.backend_acked + s.seq_offset;
    while s.unacked.front().is_some_and(|&(cseq, _)| cseq <= acked_c) {
        s.unacked.pop_front();
    }
    shared.counters.reconnects.fetch_add(1, Ordering::Relaxed);
    obs::counter_add!("router.reconnects", 1);
    let ack = Frame::HelloAck {
        version: VERSION,
        session_id: s.rsid,
        max_samples_per_frame: MAX_SAMPLES_PER_FRAME,
        resume_token: s.rtoken,
        acked_seq: acked_c,
        trace_id: s.trace_id,
    };
    drop(s);
    if conn.write(&ack).is_err() {
        let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
        if s.conn_gen == my_gen {
            s.attached = false;
        }
        let _ = bconn;
        return None;
    }
    Some((entry, bconn, my_gen))
}

/// Forwards one frame to the backend, migrating (at most twice) on
/// transport failure. `op` re-runs against the post-migration
/// connection; migration itself replays the unacked buffer, so a
/// failed SAMPLES write is already covered when `op` runs again.
fn with_backend_retry(
    shared: &Arc<RouterShared>,
    sess: &mut RouterSession,
    bconn: &mut Conn,
    mut op: impl FnMut(&mut Conn, &RouterSession) -> Result<(), BErr>,
) -> Result<(), BErr> {
    let mut last = match op(bconn, sess) {
        Ok(()) => return Ok(()),
        Err(BErr::Remote(code, message)) => return Err(BErr::Remote(code, message)),
        Err(e) => e,
    };
    for _ in 0..2 {
        match migrate_session(shared, sess) {
            Ok(new_conn) => {
                *bconn = new_conn;
                match op(bconn, sess) {
                    Ok(()) => return Ok(()),
                    Err(BErr::Remote(code, message)) => return Err(BErr::Remote(code, message)),
                    Err(e) => last = e,
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

fn proxy_loop(
    conn: &mut Conn,
    shared: &Arc<RouterShared>,
    entry: &Arc<Mutex<RouterSession>>,
    bconn: &mut Conn,
    my_gen: u64,
) -> ProxyExit {
    loop {
        let frame = match conn.read_frame(&shared.shutdown, None) {
            Ok(Some(f)) => f,
            Ok(None) => {
                let s = entry.lock().unwrap_or_else(|e| e.into_inner());
                return if s.fin_reported && s.events_acked_c >= s.last_offered_end_c {
                    ProxyExit::Retired
                } else {
                    ProxyExit::Lost
                };
            }
            Err(e) => {
                conn.bail(e.error_code(), &e.to_string());
                return ProxyExit::Lost;
            }
        };
        let mut s = entry.lock().unwrap_or_else(|e| e.into_inner());
        if s.conn_gen != my_gen {
            return ProxyExit::Superseded;
        }
        s.last_active = Instant::now();
        // The prober saw this session's owner die while the connection
        // was quiet: migrate before touching the dead leg.
        if s.migrate_requested {
            s.migrate_requested = false;
            match migrate_session(shared, &mut s) {
                Ok(new_conn) => *bconn = new_conn,
                Err(_) => {
                    drop(s);
                    conn.bail(ErrorCode::Internal, "owner died and migration failed");
                    return ProxyExit::Lost;
                }
            }
        }
        match frame {
            Frame::Samples { seq, samples } => {
                shared.counters.frames_in.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .samples_in
                    .fetch_add(samples.len() as u64, Ordering::Relaxed);
                shared
                    .counters
                    .bytes_in
                    .fetch_add((samples.len() * 8 + 4) as u64, Ordering::Relaxed);
                obs::counter_add!("router.frames_forwarded", 1);
                s.samples_pushed += samples.len() as u64;
                // Buffer before forwarding: a mid-write backend death is
                // then covered by the migration replay.
                s.unacked.push_back((seq, samples));
                while s.unacked.len() > UNACKED_CAP {
                    s.unacked.pop_front();
                    s.unacked_torn = true;
                }
                let forward = with_backend_retry(shared, &mut s, bconn, |b, s| {
                    let (bseq, samples) = {
                        let (cseq, samples) = s.unacked.back().expect("just pushed");
                        (cseq - s.seq_offset, samples.clone())
                    };
                    b.write(&Frame::Samples {
                        seq: bseq,
                        samples,
                    })?;
                    Ok(())
                });
                if let Err(e) = forward {
                    drop(s);
                    conn.bail(ErrorCode::Internal, &format!("forward failed: {e}"));
                    return ProxyExit::Lost;
                }
            }
            ctl @ (Frame::Flush | Frame::Fin) => {
                let fin = matches!(ctl, Frame::Fin);
                // Forward the control frame and stream the reply back,
                // translating the event and sample numbering. On a
                // backend death mid-reply the whole exchange re-runs
                // against the new owner: the delivery cursor only moves
                // on client EVENTS_ACK, so the re-offered events are
                // deduped by the client's seen-watermark — the reply is
                // idempotent by construction.
                let mut relayed: Vec<Frame> = Vec::new();
                let exchange = with_backend_retry(shared, &mut s, bconn, |b, s| {
                    relayed.clear();
                    b.write(if fin { &Frame::Fin } else { &Frame::Flush })?;
                    let event_offset = s.event_offset;
                    let seq_offset = s.seq_offset;
                    let mut frames: Vec<Frame> = Vec::new();
                    let stats = relay_reply(b, &shared.shutdown, |first_seq, events| {
                        frames.push(Frame::Events {
                            first_seq: first_seq + event_offset,
                            events,
                        });
                        Ok(())
                    })?;
                    let mut stats_c = stats;
                    stats_c.acked_seq = stats.acked_seq + seq_offset;
                    frames.push(Frame::Stats(stats_c));
                    relayed = frames;
                    Ok(())
                });
                if let Err(e) = exchange {
                    drop(s);
                    conn.bail(ErrorCode::Internal, &format!("flush failed: {e}"));
                    return ProxyExit::Lost;
                }
                // Bookkeeping from the translated reply, then forward.
                for f in &relayed {
                    match f {
                        Frame::Events { first_seq, events } if !events.is_empty() => {
                            // Re-offered (unacked) events reappear below
                            // the watermark; only count the fresh suffix.
                            let prev = s.last_offered_end_c;
                            s.last_offered_end_c =
                                s.last_offered_end_c.max(first_seq + events.len() as u64 - 1);
                            s.events_degraded += events
                                .iter()
                                .enumerate()
                                .filter(|(i, e)| {
                                    first_seq + *i as u64 > prev
                                        && e.confidence == emprof_core::Confidence::Degraded
                                })
                                .count() as u64;
                            shared
                                .counters
                                .events_out
                                .fetch_add(events.len() as u64, Ordering::Relaxed);
                        }
                        Frame::Stats(stats) => {
                            s.backend_acked = stats.acked_seq.saturating_sub(s.seq_offset);
                            let acked_c = stats.acked_seq;
                            while s.unacked.front().is_some_and(|&(cseq, _)| cseq <= acked_c) {
                                s.unacked.pop_front();
                            }
                            if s.unacked.is_empty() {
                                s.unacked_torn = false;
                            }
                            if stats.final_report {
                                s.fin_reported = true;
                            }
                        }
                        _ => {}
                    }
                }
                drop(s);
                for f in &relayed {
                    if conn.write(f).is_err() {
                        return ProxyExit::Lost;
                    }
                }
            }
            Frame::EventsAck { seq } => {
                s.events_acked_c = s.events_acked_c.max(seq);
                let bseq = seq.saturating_sub(s.event_offset);
                let retired = s.fin_reported && s.events_acked_c >= s.last_offered_end_c;
                if bseq > 0 {
                    let forward = with_backend_retry(shared, &mut s, bconn, |b, _| {
                        b.write(&Frame::EventsAck { seq: bseq })?;
                        Ok(())
                    });
                    if forward.is_err() && !retired {
                        drop(s);
                        return ProxyExit::Lost;
                    }
                }
                if retired {
                    return ProxyExit::Retired;
                }
            }
            _ => {
                drop(s);
                conn.bail(ErrorCode::Protocol, "unexpected frame in session");
                return ProxyExit::Lost;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The /metrics scrape endpoint (same minimal HTTP as the backend's).

const SCRAPE_READ_TIMEOUT: Duration = Duration::from_secs(2);
const SCRAPE_REQUEST_MAX: usize = 8 * 1024;

fn metrics_http_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        serve_scrape(stream, shared);
    }
}

fn serve_scrape(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_read_timeout(Some(SCRAPE_READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_READ_TIMEOUT));
    let mut buf = Vec::new();
    let mut tmp = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < SCRAPE_REQUEST_MAX {
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let is_metrics = path == "/metrics" || path.starts_with("/metrics?");
    let (status, body) = if method == "GET" && is_metrics {
        ("200 OK", scrape_body(shared))
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
}

/// The router exposition body: the obs snapshot, per-backend health
/// rows, and the fleet aggregates.
fn scrape_body(shared: &Arc<RouterShared>) -> String {
    use emprof_obs::prom;
    let mut out = prom::encode_snapshot(&obs::snapshot());
    out.push_str("# TYPE emprof_router_backend_up gauge\n");
    out.push_str("# TYPE emprof_router_backend_draining gauge\n");
    out.push_str("# TYPE emprof_router_backend_sessions gauge\n");
    out.push_str("# TYPE emprof_router_backend_consecutive_failures gauge\n");
    out.push_str("# TYPE emprof_router_backend_migrations_in counter\n");
    out.push_str("# TYPE emprof_router_backend_migrations_out counter\n");
    for node in shared.cluster_state() {
        let labels = format!(
            "{{backend=\"{}\",addr=\"{}\"}}",
            prom::escape_label_value(&node.name),
            prom::escape_label_value(&node.addr)
        );
        out.push_str(&format!(
            "emprof_router_backend_up{labels} {}\n",
            u64::from(node.up)
        ));
        out.push_str(&format!(
            "emprof_router_backend_draining{labels} {}\n",
            u64::from(node.draining)
        ));
        out.push_str(&format!(
            "emprof_router_backend_sessions{labels} {}\n",
            node.sessions_active
        ));
        out.push_str(&format!(
            "emprof_router_backend_consecutive_failures{labels} {}\n",
            node.consecutive_failures
        ));
        out.push_str(&format!(
            "emprof_router_backend_migrations_in{labels} {}\n",
            node.migrations_in
        ));
        out.push_str(&format!(
            "emprof_router_backend_migrations_out{labels} {}\n",
            node.migrations_out
        ));
    }
    let stats = shared.stats();
    out.push_str(&format!(
        "# TYPE emprof_router_sessions_active gauge\nemprof_router_sessions_active {}\n",
        stats.sessions_active
    ));
    out.push_str(&format!(
        "# TYPE emprof_router_migrations counter\nemprof_router_migrations {}\n",
        stats.migrations
    ));
    out.push_str(&format!(
        "# TYPE emprof_router_migrations_lossy counter\nemprof_router_migrations_lossy {}\n",
        stats.migrations_lossy
    ));
    out.push_str(&format!(
        "# TYPE emprof_router_probe_failures counter\nemprof_router_probe_failures {}\n",
        stats.probe_failures
    ));
    out.push_str(&format!(
        "# TYPE emprof_router_backends_up gauge\nemprof_router_backends_up {}\n",
        stats.backends_up
    ));
    out.push_str(&format!(
        "# TYPE emprof_router_healthy gauge\nemprof_router_healthy {}\n",
        u64::from(shared.health().healthy)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = RouterConfig::default();
        assert!(c.replicas > 0);
        assert!(c.down_after > 0);
        assert!(c.probe_interval > Duration::ZERO);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
