//! The consistent-hash ring: sessions → backends with minimal movement.
//!
//! Each backend contributes `replicas` *virtual nodes* — FNV-1a-64
//! points on a `u64` circle, hashed from `"{name}#{replica}"`. A
//! session key owns the first vnode clockwise from its own hash
//! (wrapping at the top). Removing a backend deletes only that
//! backend's points, so only keys whose successor was one of those
//! points move — everything else keeps its owner. Re-adding the same
//! backend restores the identical point set and therefore the identical
//! assignment. `tests/prop_ring.rs` at the workspace root proves both
//! properties for arbitrary topologies.
//!
//! Lookups can *exclude* nodes (down or draining): the walk simply
//! skips their points and keeps going clockwise, which is exactly the
//! classic "failover to successor" rule — keys on a dead node spread
//! over its clockwise neighbors, keys on live nodes do not move.

use std::collections::BTreeMap;

/// FNV-1a 64-bit — the same hash family the wire protocol uses for
/// checksums, here spreading vnode points and session keys over the
/// ring circle.
#[must_use]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring over named backends.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// vnode point → backend name. BTreeMap gives the clockwise walk
    /// (`range(hash..)` then wrap) for free.
    points: BTreeMap<u64, String>,
    /// Virtual nodes per backend.
    replicas: usize,
}

impl HashRing {
    /// An empty ring placing `replicas` virtual nodes per backend.
    /// More replicas smooth the load split at the cost of memory;
    /// 64–128 is the usual sweet spot. Clamped to at least 1.
    #[must_use]
    pub fn new(replicas: usize) -> HashRing {
        HashRing {
            points: BTreeMap::new(),
            replicas: replicas.max(1),
        }
    }

    /// Adds a backend's virtual nodes. Re-adding an existing backend is
    /// a no-op (the same name hashes to the same points).
    pub fn add(&mut self, name: &str) {
        for i in 0..self.replicas {
            let point = fnv1a_64(format!("{name}#{i}").as_bytes());
            // On a point collision between two distinct names the
            // first-inserted owner keeps the point: deterministic, and
            // astronomically rare on a u64 circle.
            self.points.entry(point).or_insert_with(|| name.to_string());
        }
    }

    /// Removes a backend's virtual nodes.
    pub fn remove(&mut self, name: &str) {
        self.points.retain(|_, owner| owner != name);
    }

    /// Distinct backends currently on the ring.
    #[must_use]
    pub fn nodes(&self) -> Vec<String> {
        let mut names: Vec<String> = self.points.values().cloned().collect();
        names.sort();
        names.dedup();
        names
    }

    /// Whether the ring has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The backend owning `key`: the first vnode clockwise from the
    /// key's hash. `None` on an empty ring.
    #[must_use]
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.owner_excluding(key, &[])
    }

    /// [`HashRing::owner`] skipping `excluded` backends — the failover
    /// walk used while nodes are down or draining. Keys owned by a
    /// live, non-excluded backend resolve exactly as [`HashRing::owner`]
    /// does, so a mark-down never moves sessions that were not on the
    /// marked node. `None` when every backend is excluded.
    #[must_use]
    pub fn owner_excluding(&self, key: &str, excluded: &[&str]) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a_64(key.as_bytes());
        self.points
            .range(hash..)
            .chain(self.points.range(..hash))
            .map(|(_, owner)| owner.as_str())
            .find(|owner| !excluded.contains(owner))
    }

    /// Assignment census for `keys`: how many land on each backend
    /// (diagnostics and the balance test).
    #[must_use]
    pub fn census<'a, I: IntoIterator<Item = &'a str>>(&self, keys: I) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for key in keys {
            if let Some(owner) = self.owner(key) {
                *counts.entry(owner.to_string()).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(64);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("session"), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::new(64);
        ring.add("a");
        for i in 0..100 {
            assert_eq!(ring.owner(&format!("key-{i}")), Some("a"));
        }
    }

    #[test]
    fn lookup_is_deterministic_and_add_is_idempotent() {
        let mut ring = HashRing::new(64);
        ring.add("a");
        ring.add("b");
        ring.add("c");
        let before: Vec<_> = (0..200)
            .map(|i| ring.owner(&format!("key-{i}")).unwrap().to_string())
            .collect();
        ring.add("b");
        for (i, owner) in before.iter().enumerate() {
            assert_eq!(ring.owner(&format!("key-{i}")), Some(owner.as_str()));
        }
        assert_eq!(ring.nodes(), vec!["a", "b", "c"]);
    }

    #[test]
    fn removal_moves_only_the_removed_nodes_keys() {
        let mut ring = HashRing::new(64);
        for name in ["a", "b", "c", "d"] {
            ring.add(name);
        }
        let keys: Vec<String> = (0..500).map(|i| format!("dev{i}#s{i}")).collect();
        let before: Vec<String> = keys
            .iter()
            .map(|k| ring.owner(k).unwrap().to_string())
            .collect();
        ring.remove("b");
        for (k, owner) in keys.iter().zip(&before) {
            let now = ring.owner(k).unwrap();
            if owner != "b" {
                assert_eq!(now, owner, "key {k} moved although its owner survived");
            } else {
                assert_ne!(now, "b");
            }
        }
        // Re-adding restores the original assignment exactly.
        ring.add("b");
        for (k, owner) in keys.iter().zip(&before) {
            assert_eq!(ring.owner(k).unwrap(), owner);
        }
    }

    #[test]
    fn exclusion_fails_over_without_moving_live_keys() {
        let mut ring = HashRing::new(64);
        for name in ["a", "b", "c"] {
            ring.add(name);
        }
        let keys: Vec<String> = (0..300).map(|i| format!("k{i}")).collect();
        for k in &keys {
            let owner = ring.owner(k).unwrap().to_string();
            let with_down = ring.owner_excluding(k, &["b"]).unwrap();
            if owner != "b" {
                assert_eq!(with_down, owner);
            } else {
                assert_ne!(with_down, "b");
            }
        }
        assert_eq!(ring.owner_excluding("k0", &["a", "b", "c"]), None);
    }

    #[test]
    fn replicas_spread_load() {
        let mut ring = HashRing::new(128);
        for name in ["a", "b", "c", "d"] {
            ring.add(name);
        }
        let keys: Vec<String> = (0..4000).map(|i| format!("device-{i}#7")).collect();
        let census = ring.census(keys.iter().map(String::as_str));
        assert_eq!(census.len(), 4);
        for (node, count) in census {
            assert!(
                (200..=2200).contains(&count),
                "grossly unbalanced ring: {node} owns {count}/4000"
            );
        }
    }
}
