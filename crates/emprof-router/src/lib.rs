//! # emprof-router — the sharded fleet tier in front of `emprof serve`
//!
//! EMPROF's end goal is continuous fleet-scale profiling: millions of
//! capture rigs streaming into a collection tier that scales
//! *horizontally*. This crate is that tier, in pure `std`:
//!
//! * [`ring`] — a consistent-hash ring (FNV-1a-64, replicated virtual
//!   nodes) mapping session keys onto backends with the classic
//!   minimal-movement guarantee: a topology change only moves the keys
//!   whose arc changed (`tests/prop_ring.rs` proves it).
//! * [`router`] — the `emprof router` front tier: speaks the existing
//!   v4 wire protocol to clients, proxies frames to the owning backend,
//!   probes backend health over NODE_HEALTH frames with jittered
//!   exponential backoff, answers CLUSTER_STATE with the fleet table,
//!   and serves its own `/metrics`.
//!
//! ## The headline guarantee: routed equals direct
//!
//! Events collected through the router — across any schedule of
//! backend kills, drains, and rebalances — are **bit-for-bit
//! identical** to a single-node batch run on the same signal. The
//! mechanism is exactly-once session migration: when a backend dies,
//! the router replays the session's `emprof-store` journal into the
//! ring's next owner with the original sequence numbers, quiesces, and
//! seeds the protocol-v3 delivery cursor at the recovered value, so
//! the deterministic detector regenerates the identical event stream
//! and the client's seen-watermark dedups any re-offered suffix.
//! Enforced by `tests/router_equivalence.rs`, `tests/router_chaos.rs`,
//! and the `router_soak` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod router;

pub use ring::{fnv1a_64, HashRing};
pub use router::{BackendSpec, Router, RouterConfig, RouterStatsSnapshot};
