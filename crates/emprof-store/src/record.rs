//! Journal record kinds and their payload codec (little-endian, same
//! primitive encodings as the wire protocol: f64s as raw bits, strings
//! length-prefixed).
//!
//! A record's payload is opaque to the segment layer — framing and CRC
//! live in [`crate::segment`]. Decoding here is bounds-checked and
//! never panics; a payload that passes its CRC but fails to decode is a
//! format error (not a torn write) and is surfaced as such.

use emprof_core::{CalibConfig, Confidence, EmprofConfig, StallEvent, StallKind};

/// Upper bound on a device-label string.
const MAX_STRING: usize = 256;

/// Upper bound on samples per [`Record::Samples`] record.
pub const MAX_SAMPLES_PER_RECORD: u32 = 1 << 20;

/// Upper bound on events per [`Record::Events`] record.
pub const MAX_EVENTS_PER_RECORD: u32 = 1 << 20;

/// Exact encoded payload size of a [`Record::Footer`]: eleven 64-bit
/// fields, nothing variable-length, so a reader can fetch a sealed
/// segment's footer with a single fixed-size tail read.
pub const FOOTER_PAYLOAD_LEN: usize = 88;

/// Per-segment statistics index, written as the *last* record of a
/// segment when it is sealed at roll time.
///
/// The footer is an ordinary CRC-framed record, so legacy readers that
/// predate it still scan the segment cleanly; new readers use
/// [`crate::segment::read_segment_footer`] to fetch it in O(1) and
/// prune segments whose event range cannot intersect a query window.
/// Sentinel values make "no events" unambiguous: `min_*` fields are
/// `u64::MAX` / `+inf` and `max_*` fields are `0` / `-inf` when the
/// corresponding population is empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentFooter {
    /// Data records before this footer (footers never count themselves).
    pub record_count: u64,
    /// Stall events across all [`Record::Events`] records.
    pub event_count: u64,
    /// Events with degraded confidence.
    pub degraded_count: u64,
    /// Events classified as refresh collisions.
    pub refresh_count: u64,
    /// Magnitude samples across all [`Record::Samples`] records.
    pub samples_count: u64,
    /// Smallest event `start_sample` (`u64::MAX` when no events).
    pub min_event_start: u64,
    /// Largest event `end_sample` (`0` when no events).
    pub max_event_end: u64,
    /// Smallest event sequence number (`u64::MAX` when no events).
    pub min_event_seq: u64,
    /// Largest event sequence number (`0` when no events).
    pub max_event_seq: u64,
    /// Smallest event duration in cycles (`+inf` when no events).
    pub min_duration_cycles: f64,
    /// Largest event duration in cycles (`-inf` when no events).
    pub max_duration_cycles: f64,
}

impl Default for SegmentFooter {
    fn default() -> Self {
        SegmentFooter::empty()
    }
}

impl SegmentFooter {
    /// A footer describing zero records (sentinel mins/maxes).
    pub fn empty() -> SegmentFooter {
        SegmentFooter {
            record_count: 0,
            event_count: 0,
            degraded_count: 0,
            refresh_count: 0,
            samples_count: 0,
            min_event_start: u64::MAX,
            max_event_end: 0,
            min_event_seq: u64::MAX,
            max_event_seq: 0,
            min_duration_cycles: f64::INFINITY,
            max_duration_cycles: f64::NEG_INFINITY,
        }
    }

    /// Folds one record into the running statistics. Footer records are
    /// ignored, so re-accumulating over a whole scanned segment (which
    /// may contain an earlier footer from an interrupted roll)
    /// reproduces exactly what the final footer should claim.
    pub fn note(&mut self, rec: &Record) {
        match rec {
            Record::Footer(_) => return,
            Record::Samples { samples, .. } => {
                self.samples_count += samples.len() as u64;
            }
            Record::Events { first_seq, events } => {
                for (i, e) in events.iter().enumerate() {
                    let seq = first_seq + i as u64;
                    self.event_count += 1;
                    if e.confidence == Confidence::Degraded {
                        self.degraded_count += 1;
                    }
                    if e.kind == StallKind::RefreshCollision {
                        self.refresh_count += 1;
                    }
                    self.min_event_start = self.min_event_start.min(e.start_sample as u64);
                    self.max_event_end = self.max_event_end.max(e.end_sample as u64);
                    self.min_event_seq = self.min_event_seq.min(seq);
                    self.max_event_seq = self.max_event_seq.max(seq);
                    self.min_duration_cycles = self.min_duration_cycles.min(e.duration_cycles);
                    self.max_duration_cycles = self.max_duration_cycles.max(e.duration_cycles);
                }
            }
            Record::Meta(_) | Record::Cursor { .. } | Record::Finished { .. } => {}
        }
        self.record_count += 1;
    }

    /// Whether any event in this segment could have a `start_sample`
    /// inside `[t0, t1]`. Conservative: uses `[min_event_start,
    /// max_event_end]` as the covering interval (starts never exceed
    /// ends), so a `false` answer is always safe to prune on.
    pub fn overlaps(&self, t0: u64, t1: u64) -> bool {
        self.event_count > 0 && self.min_event_start <= t1 && self.max_event_end >= t0
    }
}

/// Identity of a journaled session, written as the first record of a
/// fresh journal and re-written at every segment roll (the checkpoint),
/// so any retained suffix of segments is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// The server-assigned session id (directory names must agree).
    pub session_id: u64,
    /// The resume token issued at the original HELLO. Persisting it is
    /// what lets a client resume across a server *restart*: a fresh
    /// registry would otherwise mint tokens from a different seed.
    pub resume_token: u64,
    /// Capture sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Profiled core clock in Hz.
    pub clock_hz: f64,
    /// Full detector configuration; recovery rebuilds the detector from
    /// this plus the journaled sample batches.
    pub config: EmprofConfig,
    /// Free-form device label from HELLO.
    pub device: String,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Session identity checkpoint; see [`SessionMeta`].
    Meta(SessionMeta),
    /// An accepted SAMPLES batch, journaled before ingestion so the
    /// acked watermark never runs ahead of durable state.
    Samples {
        /// The batch's wire sequence number (contiguous from 1).
        seq: u64,
        /// The magnitude samples.
        samples: Vec<f64>,
    },
    /// Finalized stall events, journaled before they are offered to the
    /// client. Event sequences are contiguous from 1 per session.
    Events {
        /// Sequence number of `events[0]`.
        first_seq: u64,
        /// The events, in finalization order.
        events: Vec<StallEvent>,
    },
    /// Delivery-cursor checkpoint: every event with sequence at or
    /// below this has been acknowledged by the client (EVENTS_ACK).
    Cursor {
        /// The acknowledged event sequence.
        acked_events: u64,
    },
    /// The session's detector was finalized. After this record, sample
    /// records are no longer needed for recovery (the detector will
    /// never be rebuilt), which releases them for compaction.
    Finished {
        /// Samples the detector ingested over the session's lifetime.
        samples_pushed: u64,
        /// Non-finite samples rejected at the ingest boundary.
        samples_rejected: u64,
        /// The SAMPLES ack watermark at finalization — recovery needs
        /// it after sample records have been compacted away, or a
        /// resuming client replaying unacked frames would see a bogus
        /// sequence gap.
        last_samples_seq: u64,
    },
    /// Segment statistics index written when the segment is sealed;
    /// see [`SegmentFooter`]. Purely advisory for recovery (the fold
    /// skips it) but load-bearing for range-query pruning.
    Footer(SegmentFooter),
}

/// Record discriminants as stored on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// [`Record::Meta`].
    Meta = 1,
    /// [`Record::Samples`].
    Samples = 2,
    /// [`Record::Events`].
    Events = 3,
    /// [`Record::Cursor`].
    Cursor = 4,
    /// [`Record::Finished`].
    Finished = 5,
    /// [`Record::Footer`].
    Footer = 6,
}

impl RecordKind {
    /// Decodes a stored discriminant.
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            1 => RecordKind::Meta,
            2 => RecordKind::Samples,
            3 => RecordKind::Events,
            4 => RecordKind::Cursor,
            5 => RecordKind::Finished,
            6 => RecordKind::Footer,
            _ => return None,
        })
    }
}

/// Why a CRC-valid payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed record payload: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        if len > MAX_STRING {
            return Err(DecodeError("string too long"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| DecodeError("string not UTF-8"))
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing bytes"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(MAX_STRING);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

/// Event kind byte: bit 0 is the refresh classification, bit 1 the
/// degraded-confidence mark, so replaying a journal reproduces exactly
/// the confidence the live session reported.
fn encode_event(out: &mut Vec<u8>, e: &StallEvent) {
    out.extend_from_slice(&(e.start_sample as u64).to_le_bytes());
    out.extend_from_slice(&(e.end_sample as u64).to_le_bytes());
    out.extend_from_slice(&e.duration_cycles.to_le_bytes());
    let mut kind = match e.kind {
        StallKind::Normal => 0,
        StallKind::RefreshCollision => 1,
    };
    if e.confidence == Confidence::Degraded {
        kind |= 2;
    }
    out.push(kind);
}

fn decode_event(r: &mut Reader<'_>) -> Result<StallEvent, DecodeError> {
    let start_sample = r.u64()? as usize;
    let end_sample = r.u64()? as usize;
    let duration_cycles = r.f64()?;
    let bits = r.u8()?;
    if bits > 3 {
        return Err(DecodeError("unknown stall kind"));
    }
    let kind = if bits & 1 != 0 {
        StallKind::RefreshCollision
    } else {
        StallKind::Normal
    };
    let confidence = if bits & 2 != 0 {
        Confidence::Degraded
    } else {
        Confidence::High
    };
    if end_sample < start_sample {
        return Err(DecodeError("event ends before it starts"));
    }
    Ok(StallEvent {
        start_sample,
        end_sample,
        duration_cycles,
        kind,
        confidence,
    })
}

impl Record {
    /// This record's on-disk discriminant.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::Meta(_) => RecordKind::Meta,
            Record::Samples { .. } => RecordKind::Samples,
            Record::Events { .. } => RecordKind::Events,
            Record::Cursor { .. } => RecordKind::Cursor,
            Record::Finished { .. } => RecordKind::Finished,
            Record::Footer(_) => RecordKind::Footer,
        }
    }

    /// Encodes the payload (framing and CRC are the segment layer's).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Record::Meta(m) => {
                p.extend_from_slice(&m.session_id.to_le_bytes());
                p.extend_from_slice(&m.resume_token.to_le_bytes());
                p.extend_from_slice(&m.sample_rate_hz.to_le_bytes());
                p.extend_from_slice(&m.clock_hz.to_le_bytes());
                let c = &m.config;
                p.extend_from_slice(&(c.norm_window_samples as u64).to_le_bytes());
                p.extend_from_slice(&c.threshold.to_le_bytes());
                p.extend_from_slice(&c.min_duration_cycles.to_le_bytes());
                p.extend_from_slice(&(c.min_duration_samples as u64).to_le_bytes());
                p.extend_from_slice(&(c.merge_gap_samples as u64).to_le_bytes());
                p.extend_from_slice(&c.edge_level.to_le_bytes());
                p.extend_from_slice(&c.refresh_min_cycles.to_le_bytes());
                p.push(c.calib.enabled as u8);
                p.extend_from_slice(&(c.calib.block_samples as u64).to_le_bytes());
                p.extend_from_slice(&c.calib.ewma_weight.to_le_bytes());
                p.extend_from_slice(&c.calib.threshold_pad.to_le_bytes());
                p.extend_from_slice(&c.calib.threshold_max.to_le_bytes());
                p.extend_from_slice(&c.calib.gate_fraction.to_le_bytes());
                p.extend_from_slice(&c.calib.degraded_enter.to_le_bytes());
                p.extend_from_slice(&c.calib.degraded_exit.to_le_bytes());
                p.extend_from_slice(&(c.calib.window_min as u64).to_le_bytes());
                p.extend_from_slice(&c.calib.drift_tolerance.to_le_bytes());
                put_string(&mut p, &m.device);
            }
            Record::Samples { seq, samples } => {
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for s in samples {
                    p.extend_from_slice(&s.to_le_bytes());
                }
            }
            Record::Events { first_seq, events } => {
                p.extend_from_slice(&first_seq.to_le_bytes());
                p.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for e in events {
                    encode_event(&mut p, e);
                }
            }
            Record::Cursor { acked_events } => {
                p.extend_from_slice(&acked_events.to_le_bytes());
            }
            Record::Finished {
                samples_pushed,
                samples_rejected,
                last_samples_seq,
            } => {
                p.extend_from_slice(&samples_pushed.to_le_bytes());
                p.extend_from_slice(&samples_rejected.to_le_bytes());
                p.extend_from_slice(&last_samples_seq.to_le_bytes());
            }
            Record::Footer(f) => {
                p.extend_from_slice(&f.record_count.to_le_bytes());
                p.extend_from_slice(&f.event_count.to_le_bytes());
                p.extend_from_slice(&f.degraded_count.to_le_bytes());
                p.extend_from_slice(&f.refresh_count.to_le_bytes());
                p.extend_from_slice(&f.samples_count.to_le_bytes());
                p.extend_from_slice(&f.min_event_start.to_le_bytes());
                p.extend_from_slice(&f.max_event_end.to_le_bytes());
                p.extend_from_slice(&f.min_event_seq.to_le_bytes());
                p.extend_from_slice(&f.max_event_seq.to_le_bytes());
                p.extend_from_slice(&f.min_duration_cycles.to_le_bytes());
                p.extend_from_slice(&f.max_duration_cycles.to_le_bytes());
                debug_assert_eq!(p.len(), FOOTER_PAYLOAD_LEN);
            }
        }
        p
    }

    /// Decodes a payload whose CRC already verified.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on unknown kinds, truncation, bound violations,
    /// or trailing bytes — never panics.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Record, DecodeError> {
        let kind = RecordKind::from_u8(kind).ok_or(DecodeError("unknown record kind"))?;
        let mut r = Reader::new(payload);
        let rec = match kind {
            RecordKind::Meta => {
                let session_id = r.u64()?;
                let resume_token = r.u64()?;
                let sample_rate_hz = r.f64()?;
                let clock_hz = r.f64()?;
                let config = EmprofConfig {
                    norm_window_samples: r.u64()? as usize,
                    threshold: r.f64()?,
                    min_duration_cycles: r.f64()?,
                    min_duration_samples: r.u64()? as usize,
                    merge_gap_samples: r.u64()? as usize,
                    edge_level: r.f64()?,
                    refresh_min_cycles: r.f64()?,
                    calib: CalibConfig {
                        enabled: r.u8()? != 0,
                        block_samples: r.u64()? as usize,
                        ewma_weight: r.f64()?,
                        threshold_pad: r.f64()?,
                        threshold_max: r.f64()?,
                        gate_fraction: r.f64()?,
                        degraded_enter: r.f64()?,
                        degraded_exit: r.f64()?,
                        window_min: r.u64()? as usize,
                        drift_tolerance: r.f64()?,
                    },
                };
                let device = r.string()?;
                Record::Meta(SessionMeta {
                    session_id,
                    resume_token,
                    sample_rate_hz,
                    clock_hz,
                    config,
                    device,
                })
            }
            RecordKind::Samples => {
                let seq = r.u64()?;
                let count = r.u32()?;
                if count > MAX_SAMPLES_PER_RECORD {
                    return Err(DecodeError("sample count exceeds bound"));
                }
                let mut samples = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    samples.push(r.f64()?);
                }
                Record::Samples { seq, samples }
            }
            RecordKind::Events => {
                let first_seq = r.u64()?;
                let count = r.u32()?;
                if count > MAX_EVENTS_PER_RECORD {
                    return Err(DecodeError("event count exceeds bound"));
                }
                let mut events = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    events.push(decode_event(&mut r)?);
                }
                Record::Events { first_seq, events }
            }
            RecordKind::Cursor => Record::Cursor {
                acked_events: r.u64()?,
            },
            RecordKind::Finished => Record::Finished {
                samples_pushed: r.u64()?,
                samples_rejected: r.u64()?,
                last_samples_seq: r.u64()?,
            },
            RecordKind::Footer => Record::Footer(SegmentFooter {
                record_count: r.u64()?,
                event_count: r.u64()?,
                degraded_count: r.u64()?,
                refresh_count: r.u64()?,
                samples_count: r.u64()?,
                min_event_start: r.u64()?,
                max_event_end: r.u64()?,
                min_event_seq: r.u64()?,
                max_event_seq: r.u64()?,
                min_duration_cycles: r.f64()?,
                max_duration_cycles: r.f64()?,
            }),
        };
        r.done()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SessionMeta {
        SessionMeta {
            session_id: 42,
            resume_token: 0xDEAD_BEEF,
            sample_rate_hz: 40e6,
            clock_hz: 1.0e9,
            config: EmprofConfig::for_rates(40e6, 1.0e9),
            device: "olimex".into(),
        }
    }

    fn roundtrip(rec: Record) {
        let payload = rec.encode();
        let decoded = Record::decode(rec.kind() as u8, &payload).expect("decodes");
        assert_eq!(decoded, rec);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(Record::Meta(meta()));
        roundtrip(Record::Samples {
            seq: 1,
            samples: vec![],
        });
        roundtrip(Record::Samples {
            seq: u64::MAX,
            samples: (0..500).map(|i| i as f64 * 0.25).collect(),
        });
        roundtrip(Record::Events {
            first_seq: 7,
            events: vec![
                StallEvent {
                    start_sample: 10,
                    end_sample: 20,
                    duration_cycles: 250.0,
                    kind: StallKind::Normal,
                    confidence: Confidence::High,
                },
                StallEvent {
                    start_sample: 100,
                    end_sample: 220,
                    duration_cycles: 3000.0,
                    kind: StallKind::RefreshCollision,
                    confidence: Confidence::Degraded,
                },
                StallEvent {
                    start_sample: 300,
                    end_sample: 301,
                    duration_cycles: 50.0,
                    kind: StallKind::Normal,
                    confidence: Confidence::Degraded,
                },
            ],
        });
        roundtrip(Record::Events {
            first_seq: 1,
            events: vec![],
        });
        roundtrip(Record::Cursor { acked_events: 31 });
        roundtrip(Record::Finished {
            samples_pushed: 123,
            samples_rejected: 4,
            last_samples_seq: 99,
        });
        roundtrip(Record::Footer(SegmentFooter::empty()));
        roundtrip(Record::Footer(SegmentFooter {
            record_count: 12,
            event_count: 9,
            degraded_count: 2,
            refresh_count: 1,
            samples_count: 4096,
            min_event_start: 17,
            max_event_end: 9001,
            min_event_seq: 3,
            max_event_seq: 11,
            min_duration_cycles: 50.0,
            max_duration_cycles: 3000.0,
        }));
    }

    #[test]
    fn footer_payload_is_fixed_size() {
        assert_eq!(
            Record::Footer(SegmentFooter::empty()).encode().len(),
            FOOTER_PAYLOAD_LEN
        );
    }

    #[test]
    fn footer_accumulation_matches_records() {
        let mut f = SegmentFooter::empty();
        f.note(&Record::Meta(meta()));
        f.note(&Record::Samples {
            seq: 1,
            samples: vec![1.0; 300],
        });
        f.note(&Record::Events {
            first_seq: 5,
            events: vec![
                StallEvent {
                    start_sample: 40,
                    end_sample: 90,
                    duration_cycles: 1250.0,
                    kind: StallKind::RefreshCollision,
                    confidence: Confidence::High,
                },
                StallEvent {
                    start_sample: 200,
                    end_sample: 230,
                    duration_cycles: 750.0,
                    kind: StallKind::Normal,
                    confidence: Confidence::Degraded,
                },
            ],
        });
        f.note(&Record::Cursor { acked_events: 5 });
        // A stale footer from an interrupted roll must not perturb the
        // statistics of the records around it.
        f.note(&Record::Footer(SegmentFooter::empty()));
        assert_eq!(f.record_count, 4);
        assert_eq!(f.event_count, 2);
        assert_eq!(f.degraded_count, 1);
        assert_eq!(f.refresh_count, 1);
        assert_eq!(f.samples_count, 300);
        assert_eq!((f.min_event_start, f.max_event_end), (40, 230));
        assert_eq!((f.min_event_seq, f.max_event_seq), (5, 6));
        assert_eq!((f.min_duration_cycles, f.max_duration_cycles), (750.0, 1250.0));
        assert!(f.overlaps(0, u64::MAX));
        assert!(f.overlaps(90, 199));
        assert!(!f.overlaps(231, u64::MAX));
        assert!(!f.overlaps(0, 39));
        assert!(!SegmentFooter::empty().overlaps(0, u64::MAX));
    }

    #[test]
    fn truncated_payloads_fail_cleanly() {
        let full = Record::Samples {
            seq: 3,
            samples: vec![1.0, 2.0, 3.0],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                Record::decode(RecordKind::Samples as u8, &full[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_fail() {
        assert!(Record::decode(99, &[]).is_err());
        let mut p = Record::Cursor { acked_events: 1 }.encode();
        p.push(0);
        assert!(Record::decode(RecordKind::Cursor as u8, &p).is_err());
    }

    #[test]
    fn fuzzed_payloads_never_panic() {
        let mut state = 0xA5A5_5A5Au64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in [0usize, 1, 7, 8, 31, 64, 200] {
            for kind in 0..8u8 {
                for _ in 0..50 {
                    let buf: Vec<u8> = (0..len).map(|_| next()).collect();
                    let _ = Record::decode(kind, &buf);
                }
            }
        }
    }
}
