//! Decoded-segment cache for the query path.
//!
//! Mirrors the querier/cache-driver split IOx uses: the query engine
//! (`crate::query`) is the *driver* — it decides what to load and what
//! a miss costs — while this module only remembers decoded segments
//! and answers "still valid?". Entries are keyed by `(directory,
//! base_index)` and hold the fully decoded, immutable view of one
//! *sealed* segment (only segments whose statistics footer validated
//! at the tail are ever inserted; the active segment keeps changing
//! and is never cached).
//!
//! Validity is re-checked on every hit against the file's current
//! length and mtime, so a session directory that was deleted and
//! re-created (same base indexes, different records) can never serve
//! stale data. Eviction is LRU beyond `max_entries` plus a TTL, with
//! `store.cache.hits` / `store.cache.misses` / `store.cache.evictions`
//! telemetry.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use emprof_obs as obs;

use crate::record::{SegmentFooter, SessionMeta};
use emprof_core::StallEvent;

/// Cache tuning knobs.
#[derive(Debug, Clone)]
pub struct SegmentCacheConfig {
    /// Decoded segments retained before LRU eviction kicks in.
    pub max_entries: usize,
    /// Age beyond which an entry is discarded regardless of use.
    pub ttl: Duration,
}

impl Default for SegmentCacheConfig {
    fn default() -> Self {
        SegmentCacheConfig {
            max_entries: 256,
            ttl: Duration::from_secs(600),
        }
    }
}

/// The fully decoded, immutable view of one sealed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSegment {
    /// The segment's base journal index.
    pub base_index: u64,
    /// Last identity checkpoint in the segment, if any.
    pub meta: Option<SessionMeta>,
    /// Every `(event sequence, event)` pair, in record order.
    pub events: Vec<(u64, StallEvent)>,
    /// The validated tail footer (cached so pruning decisions on a hit
    /// need no I/O beyond the validity stat).
    pub footer: SegmentFooter,
    /// File length at decode time; a hit with a different length is
    /// discarded.
    pub file_len: u64,
    /// File mtime at decode time, when the filesystem reports one.
    pub modified: Option<SystemTime>,
}

#[derive(Debug)]
struct Entry {
    seg: Arc<DecodedSegment>,
    last_used: u64,
    inserted: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(PathBuf, u64), Entry>,
    tick: u64,
}

/// A thread-safe LRU+TTL cache of [`DecodedSegment`]s.
#[derive(Debug)]
pub struct SegmentCache {
    cfg: SegmentCacheConfig,
    inner: Mutex<Inner>,
}

impl Default for SegmentCache {
    fn default() -> Self {
        SegmentCache::new(SegmentCacheConfig::default())
    }
}

impl SegmentCache {
    /// Creates a cache with the given knobs.
    pub fn new(cfg: SegmentCacheConfig) -> SegmentCache {
        SegmentCache {
            cfg,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up the decoded segment at `(dir, base_index)`, validating
    /// the entry against the file's *current* length and mtime. Any
    /// disagreement — or an expired TTL — discards the entry and
    /// reports a miss.
    pub fn get(
        &self,
        dir: &Path,
        base_index: u64,
        file_len: u64,
        modified: Option<SystemTime>,
    ) -> Option<Arc<DecodedSegment>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let key = (dir.to_path_buf(), base_index);
        let valid = match inner.map.get(&key) {
            None => {
                obs::counter_add!("store.cache.misses", 1);
                return None;
            }
            Some(e) => {
                e.inserted.elapsed() <= self.cfg.ttl
                    && e.seg.file_len == file_len
                    && e.seg.modified == modified
            }
        };
        if !valid {
            inner.map.remove(&key);
            obs::counter_add!("store.cache.misses", 1);
            obs::counter_add!("store.cache.evictions", 1);
            return None;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let e = inner.map.get_mut(&key).expect("validated above");
        e.last_used = tick;
        obs::counter_add!("store.cache.hits", 1);
        Some(Arc::clone(&e.seg))
    }

    /// Inserts a freshly decoded sealed segment, evicting the least
    /// recently used entries past `max_entries`.
    pub fn insert(&self, dir: &Path, base_index: u64, seg: Arc<DecodedSegment>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            (dir.to_path_buf(), base_index),
            Entry {
                seg,
                last_used: tick,
                inserted: Instant::now(),
            },
        );
        while inner.map.len() > self.cfg.max_entries {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&oldest);
            obs::counter_add!("store.cache.evictions", 1);
        }
    }

    /// Entries currently cached (for tests and telemetry).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(base: u64, len: u64) -> Arc<DecodedSegment> {
        Arc::new(DecodedSegment {
            base_index: base,
            meta: None,
            events: Vec::new(),
            footer: SegmentFooter::empty(),
            file_len: len,
            modified: None,
        })
    }

    #[test]
    fn hit_requires_matching_stat() {
        let cache = SegmentCache::default();
        let dir = Path::new("/tmp/x");
        cache.insert(dir, 0, seg(0, 100));
        assert!(cache.get(dir, 0, 100, None).is_some());
        // Same key, different length: the file changed → miss + evict.
        assert!(cache.get(dir, 0, 101, None).is_none());
        assert!(cache.get(dir, 0, 100, None).is_none(), "entry was discarded");
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = SegmentCache::new(SegmentCacheConfig {
            max_entries: 2,
            ttl: Duration::from_secs(600),
        });
        let dir = Path::new("/tmp/y");
        cache.insert(dir, 0, seg(0, 10));
        cache.insert(dir, 1, seg(1, 10));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(dir, 0, 10, None).is_some());
        cache.insert(dir, 2, seg(2, 10));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(dir, 0, 10, None).is_some());
        assert!(cache.get(dir, 1, 10, None).is_none());
        assert!(cache.get(dir, 2, 10, None).is_some());
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = SegmentCache::new(SegmentCacheConfig {
            max_entries: 8,
            ttl: Duration::from_millis(0),
        });
        let dir = Path::new("/tmp/z");
        cache.insert(dir, 0, seg(0, 10));
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.get(dir, 0, 10, None).is_none());
    }
}
