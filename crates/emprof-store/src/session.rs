//! [`SessionJournal`]: the record-semantics layer over [`Journal`] that
//! `emprof-serve` mounts under each session.
//!
//! It owns the checkpoint discipline (a fresh [`Record::Meta`] +
//! [`Record::Cursor`] — and [`Record::Finished`], once finalized — at
//! the head of every new segment, so compaction can delete old
//! segments without losing the session's identity or cursor), the
//! delivery-cursor bookkeeping, and ack-driven compaction. Recovery
//! ([`SessionJournal::open`]) folds the journal's records back into the
//! state a restarted server needs to resume the session exactly where
//! durable delivery left off.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use emprof_core::StallEvent;

use crate::journal::{Journal, JournalConfig, JournalStats, RecoveryReport};
use crate::record::{Record, SessionMeta, MAX_EVENTS_PER_RECORD, MAX_SAMPLES_PER_RECORD};

/// A session's journal: append hooks for the serve path plus cursor
/// and compaction bookkeeping.
#[derive(Debug)]
pub struct SessionJournal {
    journal: Journal,
    meta: SessionMeta,
    acked_events: u64,
    finished: Option<Record>,
}

/// Everything recovery folded out of a session's journal.
#[derive(Debug)]
pub struct RecoveredSession {
    /// Session identity (last checkpoint wins).
    pub meta: SessionMeta,
    /// Accepted sample batches in sequence order. For an unfinished
    /// session this is the complete accepted stream (samples are never
    /// compacted before finalization), so replaying it through a fresh
    /// detector reproduces the exact pre-crash state.
    pub samples: Vec<(u64, Vec<f64>)>,
    /// Journaled finalized events as `(sequence, event)`, in order.
    /// After compaction this may start past sequence 1; it always
    /// covers everything past the recovered cursor.
    pub events: Vec<(u64, StallEvent)>,
    /// Highest event sequence ever journaled.
    pub journaled_events: u64,
    /// The recovered delivery cursor: events at or below it were
    /// acknowledged by the client.
    pub acked_events: u64,
    /// The SAMPLES ack watermark (highest accepted sequence).
    pub acked_samples_seq: u64,
    /// `Some((samples_pushed, samples_rejected))` when the detector was
    /// finalized before the crash.
    pub finished: Option<(u64, u64)>,
    /// What the underlying [`Journal::open`] found and repaired.
    pub report: RecoveryReport,
}

impl SessionJournal {
    /// Creates a fresh session journal in `dir` (any stale contents are
    /// removed) and writes the identity checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates directory and write failures.
    pub fn create(dir: &Path, meta: SessionMeta, cfg: JournalConfig) -> io::Result<SessionJournal> {
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        let mut journal = Journal::open_with(dir, cfg)?.journal;
        journal.append(&Record::Meta(meta.clone()))?;
        Ok(SessionJournal {
            journal,
            meta,
            acked_events: 0,
            finished: None,
        })
    }

    /// Opens and recovers an existing session journal. Returns
    /// `Ok(None)` when the recovered prefix holds no identity record —
    /// the journal is unusable (e.g. torn before the first checkpoint
    /// landed) and the caller should discard the directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; corruption is repaired, not reported.
    pub fn open(
        dir: &Path,
        cfg: JournalConfig,
    ) -> io::Result<Option<(SessionJournal, RecoveredSession)>> {
        let recovered = Journal::open_with(dir, cfg)?;
        let mut meta: Option<SessionMeta> = None;
        let mut samples: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        let mut events: BTreeMap<u64, StallEvent> = BTreeMap::new();
        let mut acked_events = 0u64;
        let mut finished: Option<(u64, u64, u64)> = None;
        for (_, rec) in recovered.records {
            match rec {
                Record::Meta(m) => meta = Some(m),
                Record::Samples { seq, samples: s } => {
                    samples.insert(seq, s);
                }
                Record::Events {
                    first_seq,
                    events: evs,
                } => {
                    for (i, ev) in evs.into_iter().enumerate() {
                        events.insert(first_seq + i as u64, ev);
                    }
                }
                Record::Cursor { acked_events: a } => acked_events = acked_events.max(a),
                Record::Finished {
                    samples_pushed,
                    samples_rejected,
                    last_samples_seq,
                } => finished = Some((samples_pushed, samples_rejected, last_samples_seq)),
                // Segment statistics footers are a read-path index, not
                // session state: the fold skips them.
                Record::Footer(_) => {}
            }
        }
        let Some(meta) = meta else {
            return Ok(None);
        };
        let journaled_events = events.keys().next_back().copied().unwrap_or(0);
        // Events at or below the cursor may already be compacted away;
        // whatever remains of the acked prefix is equally delivered.
        let acked_samples_seq = samples
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(finished.map_or(0, |(_, _, last)| last));
        let session = SessionJournal {
            journal: recovered.journal,
            meta: meta.clone(),
            acked_events,
            finished: finished.map(|(p, r, last)| Record::Finished {
                samples_pushed: p,
                samples_rejected: r,
                last_samples_seq: last,
            }),
        };
        Ok(Some((
            session,
            RecoveredSession {
                meta,
                samples: samples.into_iter().collect(),
                events: events.into_iter().collect(),
                journaled_events,
                acked_events,
                acked_samples_seq,
                finished: finished.map(|(p, r, _)| (p, r)),
                report: recovered.report,
            },
        )))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        self.journal.dir()
    }

    /// Size accounting (for telemetry and tests).
    pub fn stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// The recovered/active delivery cursor.
    pub fn acked_events(&self) -> u64 {
        self.acked_events
    }

    /// Rolls segments at the size target, re-writing the checkpoint at
    /// the head of the new segment, then appends `rec`.
    fn append_checked(&mut self, rec: &Record) -> io::Result<()> {
        if self.journal.would_roll() {
            self.journal.roll()?;
            self.journal.append(&Record::Meta(self.meta.clone()))?;
            self.journal.append(&Record::Cursor {
                acked_events: self.acked_events,
            })?;
            if let Some(fin) = self.finished.clone() {
                self.journal.append(&fin)?;
            }
        }
        self.journal.append(rec)?;
        Ok(())
    }

    /// Journals an accepted SAMPLES batch. Call *before* reporting the
    /// batch acknowledged, so the watermark never runs ahead of durable
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_samples(&mut self, seq: u64, samples: &[f64]) -> io::Result<()> {
        // A wire frame (4 MiB payload cap) always fits one record, and a
        // sequence number must map to exactly one record.
        if samples.len() > MAX_SAMPLES_PER_RECORD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "samples batch exceeds one journal record",
            ));
        }
        self.append_checked(&Record::Samples {
            seq,
            samples: samples.to_vec(),
        })
    }

    /// Journals freshly finalized events. Call *before* offering them
    /// to the client: once offered, a reply loss must be recoverable
    /// from disk.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_events(&mut self, first_seq: u64, events: &[StallEvent]) -> io::Result<()> {
        let mut seq = first_seq;
        for chunk in events.chunks(MAX_EVENTS_PER_RECORD as usize) {
            self.append_checked(&Record::Events {
                first_seq: seq,
                events: chunk.to_vec(),
            })?;
            seq += chunk.len() as u64;
        }
        Ok(())
    }

    /// Advances the delivery cursor (journaling a [`Record::Cursor`])
    /// and compacts newly acked segments. A cursor at or below the
    /// current one is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates write and deletion failures.
    pub fn ack(&mut self, acked_events: u64) -> io::Result<()> {
        if acked_events <= self.acked_events {
            return Ok(());
        }
        self.acked_events = acked_events;
        self.append_checked(&Record::Cursor { acked_events })?;
        self.journal
            .compact(self.acked_events, self.finished.is_some())?;
        Ok(())
    }

    /// Journals the detector's finalization, releasing sample records
    /// for compaction.
    ///
    /// # Errors
    ///
    /// Propagates write and deletion failures.
    pub fn finish(
        &mut self,
        samples_pushed: u64,
        samples_rejected: u64,
        last_samples_seq: u64,
    ) -> io::Result<()> {
        let fin = Record::Finished {
            samples_pushed,
            samples_rejected,
            last_samples_seq,
        };
        self.append_checked(&fin)?;
        self.finished = Some(fin);
        self.journal.compact(self.acked_events, true)?;
        Ok(())
    }

    /// Flushes and fsyncs the journal.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync failures.
    pub fn sync(&mut self) -> io::Result<()> {
        self.journal.sync()
    }
}

/// Reads a session's journal for handoff without keeping it open: the
/// router's migration path uses this to lift a dead or draining
/// backend's session state off disk and replay it into the new owner.
/// The same longest-valid-prefix recovery as [`SessionJournal::open`]
/// applies (torn tails are truncated in place — the source process is
/// gone, so there is no writer to conflict with), but no journal handle
/// is retained and nothing is appended: the directory stays the old
/// owner's property until the migration succeeds and deletes it.
///
/// Returns `Ok(None)` when no identity checkpoint survived — there is
/// no session to hand off.
///
/// # Errors
///
/// Propagates I/O failures; corruption is repaired, not reported.
pub fn read_session(dir: &Path, cfg: JournalConfig) -> io::Result<Option<RecoveredSession>> {
    Ok(SessionJournal::open(dir, cfg)?.map(|(_, recovered)| recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_core::{Confidence, EmprofConfig, StallKind};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-session-{}-{}-{tag}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            session_id: 7,
            resume_token: 1234,
            sample_rate_hz: 40e6,
            clock_hz: 1.0e9,
            config: EmprofConfig::for_rates(40e6, 1.0e9),
            device: "t".into(),
        }
    }

    fn ev(i: usize) -> StallEvent {
        StallEvent {
            start_sample: i * 50,
            end_sample: i * 50 + 10,
            duration_cycles: 300.0,
            kind: StallKind::Normal,
            confidence: Confidence::High,
        }
    }

    #[test]
    fn create_append_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut sj = SessionJournal::create(&dir, meta(), JournalConfig::default()).unwrap();
        sj.append_samples(1, &[5.0; 64]).unwrap();
        sj.append_samples(2, &[4.0; 32]).unwrap();
        sj.append_events(1, &[ev(0), ev(1)]).unwrap();
        sj.ack(1).unwrap();
        drop(sj);
        let (sj, rec) = SessionJournal::open(&dir, JournalConfig::default())
            .unwrap()
            .expect("has meta");
        assert_eq!(rec.meta, meta());
        assert_eq!(rec.samples.len(), 2);
        assert_eq!(rec.samples[0], (1, vec![5.0; 64]));
        assert_eq!(rec.samples[1], (2, vec![4.0; 32]));
        assert_eq!(rec.events, vec![(1, ev(0)), (2, ev(1))]);
        assert_eq!(rec.journaled_events, 2);
        assert_eq!(rec.acked_events, 1);
        assert_eq!(rec.acked_samples_seq, 2);
        assert!(rec.finished.is_none());
        assert_eq!(sj.acked_events(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finish_releases_samples_and_watermark_survives_compaction() {
        let dir = tmp_dir("finish");
        let cfg = JournalConfig {
            segment_bytes: 400,
            sync_on_append: false,
            ..Default::default()
        };
        let mut sj = SessionJournal::create(&dir, meta(), cfg.clone()).unwrap();
        for seq in 1..=20u64 {
            sj.append_samples(seq, &[5.0; 32]).unwrap();
        }
        sj.append_events(1, &[ev(0), ev(1), ev(2)]).unwrap();
        sj.finish(640, 0, 20).unwrap();
        sj.ack(3).unwrap();
        let after = sj.stats();
        assert!(
            after.segments <= 2,
            "acked+finished prefix must compact, still {} segments",
            after.segments
        );
        drop(sj);
        let (_, rec) = SessionJournal::open(&dir, cfg).unwrap().expect("has meta");
        // The sample records are gone but the watermark survives via
        // the Finished record.
        assert_eq!(rec.acked_samples_seq, 20);
        assert_eq!(rec.finished, Some((640, 0)));
        assert_eq!(rec.acked_events, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_keep_rolled_journals_self_describing() {
        let dir = tmp_dir("checkpoint");
        let cfg = JournalConfig {
            segment_bytes: 300,
            sync_on_append: false,
            ..Default::default()
        };
        let mut sj = SessionJournal::create(&dir, meta(), cfg.clone()).unwrap();
        let mut seq = 1u64;
        for _ in 0..30 {
            sj.append_events(seq, &[ev(seq as usize)]).unwrap();
            seq += 1;
            sj.ack(seq - 1).unwrap();
        }
        assert!(sj.stats().segments <= 3, "acked events must compact");
        drop(sj);
        // Despite the compacted prefix, the retained suffix still knows
        // who it is and where the cursor stands.
        let (_, rec) = SessionJournal::open(&dir, cfg).unwrap().expect("has meta");
        assert_eq!(rec.meta, meta());
        assert_eq!(rec.acked_events, seq - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_without_meta_is_discarded() {
        let dir = tmp_dir("nometa");
        // A bare journal with no Meta record (not created through
        // SessionJournal::create).
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&Record::Cursor { acked_events: 3 }).unwrap();
        drop(j);
        assert!(SessionJournal::open(&dir, JournalConfig::default())
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
