//! Read-only journal inspection for `emprof journal-inspect`.
//!
//! Unlike [`crate::journal::Journal::open`], inspection never mutates
//! the directory: torn tails are reported, not truncated, and broken
//! segments are reported, not deleted. Safe to run against a journal a
//! live server has open.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{Record, RecordKind};
use crate::segment::{parse_segment_file_name, scan_segment};

/// Per-segment health as found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentHealth {
    /// Segment file name (`seg-<base>.emj`).
    pub file_name: String,
    /// Base journal index from the file name.
    pub base_index: u64,
    /// File size on disk.
    pub bytes_on_disk: u64,
    /// Length of the CRC-valid record prefix (header included).
    pub valid_bytes: u64,
    /// Whether the segment header itself validated.
    pub header_ok: bool,
    /// Whether bytes past `valid_bytes` exist (torn or corrupt tail).
    pub torn: bool,
    /// Number of valid records.
    pub records: u64,
    /// Valid records by kind: `[Meta, Samples, Events, Cursor, Finished]`.
    pub records_by_kind: [u64; 5],
    /// Total samples across valid `Samples` records.
    pub samples_total: u64,
    /// Total events across valid `Events` records.
    pub events_total: u64,
    /// Highest event sequence covered by valid `Events` records.
    pub max_event_seq: u64,
}

/// A whole-journal inspection report.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalInspect {
    /// The inspected directory.
    pub dir: PathBuf,
    /// Segments in base-index order (header-less files sort by name).
    pub segments: Vec<SegmentHealth>,
}

impl JournalInspect {
    /// Whether every segment is fully intact.
    pub fn healthy(&self) -> bool {
        self.segments.iter().all(|s| s.header_ok && !s.torn)
    }

    /// Total valid records across all segments.
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }
}

fn kind_slot(rec: &Record) -> usize {
    match rec.kind() {
        RecordKind::Meta => 0,
        RecordKind::Samples => 1,
        RecordKind::Events => 2,
        RecordKind::Cursor => 3,
        RecordKind::Finished => 4,
    }
}

/// Walks every `seg-*.emj` file in `dir` without modifying anything.
///
/// # Errors
///
/// Propagates I/O failures reading the directory or its files.
pub fn inspect_dir(dir: &Path) -> io::Result<JournalInspect> {
    let mut named: Vec<(u64, String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(base) = parse_segment_file_name(&name) {
            named.push((base, name, entry.path()));
        }
    }
    named.sort();
    let mut segments = Vec::with_capacity(named.len());
    for (base, file_name, path) in named {
        let bytes_on_disk = fs::metadata(&path)?.len();
        let health = match scan_segment(&path)? {
            None => SegmentHealth {
                file_name,
                base_index: base,
                bytes_on_disk,
                valid_bytes: 0,
                header_ok: false,
                torn: true,
                records: 0,
                records_by_kind: [0; 5],
                samples_total: 0,
                events_total: 0,
                max_event_seq: 0,
            },
            Some(scan) => {
                let mut by_kind = [0u64; 5];
                let mut samples_total = 0u64;
                let mut events_total = 0u64;
                let mut max_event_seq = 0u64;
                for (_, rec) in &scan.records {
                    by_kind[kind_slot(rec)] += 1;
                    match rec {
                        Record::Samples { samples, .. } => {
                            samples_total += samples.len() as u64;
                        }
                        Record::Events { first_seq, events } => {
                            events_total += events.len() as u64;
                            if !events.is_empty() {
                                max_event_seq =
                                    max_event_seq.max(first_seq + events.len() as u64 - 1);
                            }
                        }
                        _ => {}
                    }
                }
                SegmentHealth {
                    file_name,
                    base_index: scan.base_index,
                    bytes_on_disk,
                    valid_bytes: scan.valid_len,
                    header_ok: true,
                    torn: scan.torn,
                    records: scan.records.len() as u64,
                    records_by_kind: by_kind,
                    samples_total,
                    events_total,
                    max_event_seq,
                }
            }
        };
        segments.push(health);
    }
    Ok(JournalInspect {
        dir: dir.to_path_buf(),
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-inspect-{}-{}-{tag}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let dir = tmp_dir("ro");
        let mut j = Journal::open_with(
            &dir,
            JournalConfig {
                segment_bytes: 200,
                sync_on_append: false,
            },
        )
        .unwrap()
        .journal;
        for i in 1..=12u64 {
            if j.would_roll() {
                j.roll().unwrap();
            }
            j.append(&Record::Cursor { acked_events: i }).unwrap();
        }
        drop(j);
        // Tear the last segment's tail.
        let report = inspect_dir(&dir).unwrap();
        let last = report.segments.last().unwrap().file_name.clone();
        let path = dir.join(&last);
        let full = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let before: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name(), e.metadata().unwrap().len())
            })
            .collect();
        let report = inspect_dir(&dir).unwrap();
        assert!(!report.healthy());
        assert!(report.segments.len() >= 2);
        assert!(report.segments.iter().filter(|s| s.torn).count() == 1);
        assert_eq!(report.records(), 11, "one record lost to the tear");
        let after: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name(), e.metadata().unwrap().len())
            })
            .collect();
        assert_eq!(before, after, "inspection must not mutate the journal");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_accounting_is_per_segment() {
        let dir = tmp_dir("kinds");
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&Record::Samples {
            seq: 1,
            samples: vec![1.0; 10],
        })
        .unwrap();
        j.append(&Record::Cursor { acked_events: 0 }).unwrap();
        drop(j);
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.segments.len(), 1);
        let seg = &report.segments[0];
        assert_eq!(seg.records_by_kind, [0, 1, 0, 1, 0]);
        assert_eq!(seg.samples_total, 10);
        fs::remove_dir_all(&dir).unwrap();
    }
}
