//! Read-only journal inspection for `emprof journal-inspect`.
//!
//! Unlike [`crate::journal::Journal::open`], inspection never mutates
//! the directory: torn tails are reported, not truncated, and broken
//! segments are reported, not deleted. Safe to run against a journal a
//! live server has open.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{Record, RecordKind, SegmentFooter};
use crate::segment::{parse_segment_file_name, scan_segment};

/// Health of a segment's statistics footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FooterStatus {
    /// No footer: a footer-less legacy segment or the active segment
    /// (still being appended to). Queries fall back to a full scan.
    Missing,
    /// A footer is present and its statistics match a recount of the
    /// segment's records.
    Ok,
    /// A footer is present but its statistics disagree with the
    /// records it claims to index — range pruning would be unsound.
    Mismatch,
}

/// Per-segment health as found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentHealth {
    /// Segment file name (`seg-<base>.emj`).
    pub file_name: String,
    /// Base journal index from the file name.
    pub base_index: u64,
    /// File size on disk.
    pub bytes_on_disk: u64,
    /// Length of the CRC-valid record prefix (header included).
    pub valid_bytes: u64,
    /// Whether the segment header itself validated.
    pub header_ok: bool,
    /// Whether bytes past `valid_bytes` exist (torn or corrupt tail).
    pub torn: bool,
    /// Number of valid records.
    pub records: u64,
    /// Valid records by kind:
    /// `[Meta, Samples, Events, Cursor, Finished, Footer]`.
    pub records_by_kind: [u64; 6],
    /// Total samples across valid `Samples` records.
    pub samples_total: u64,
    /// Total events across valid `Events` records.
    pub events_total: u64,
    /// Highest event sequence covered by valid `Events` records.
    pub max_event_seq: u64,
    /// Statistics-footer health (see [`FooterStatus`]).
    pub footer: FooterStatus,
}

/// A whole-journal inspection report.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalInspect {
    /// The inspected directory.
    pub dir: PathBuf,
    /// Segments in base-index order (header-less files sort by name).
    pub segments: Vec<SegmentHealth>,
    /// Directory-level corruption that no single segment can report:
    /// duplicate base indexes (`seg-1.emj` beside its zero-padded
    /// twin) and segments whose index ranges overlap. Replaying such a
    /// directory would silently mis-order records.
    pub anomalies: Vec<String>,
}

impl JournalInspect {
    /// Whether every segment is fully intact and the directory has no
    /// structural anomalies.
    pub fn healthy(&self) -> bool {
        self.anomalies.is_empty()
            && self
                .segments
                .iter()
                .all(|s| s.header_ok && !s.torn && s.footer != FooterStatus::Mismatch)
    }

    /// Total valid records across all segments.
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }
}

fn kind_slot(rec: &Record) -> usize {
    match rec.kind() {
        RecordKind::Meta => 0,
        RecordKind::Samples => 1,
        RecordKind::Events => 2,
        RecordKind::Cursor => 3,
        RecordKind::Finished => 4,
        RecordKind::Footer => 5,
    }
}

/// Walks every `seg-*.emj` regular file in `dir` without modifying
/// anything. Non-segment files (flight-recorder dumps, editor
/// droppings) and subdirectories are skipped, not reported as broken
/// segments.
///
/// # Errors
///
/// Propagates I/O failures reading the directory or its files.
pub fn inspect_dir(dir: &Path) -> io::Result<JournalInspect> {
    let mut named: Vec<(u64, String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(base) = parse_segment_file_name(&name) {
            named.push((base, name, entry.path()));
        }
    }
    named.sort();
    let mut segments = Vec::with_capacity(named.len());
    for (base, file_name, path) in named {
        let bytes_on_disk = fs::metadata(&path)?.len();
        let health = match scan_segment(&path)? {
            None => SegmentHealth {
                file_name,
                base_index: base,
                bytes_on_disk,
                valid_bytes: 0,
                header_ok: false,
                torn: true,
                records: 0,
                records_by_kind: [0; 6],
                samples_total: 0,
                events_total: 0,
                max_event_seq: 0,
                footer: FooterStatus::Missing,
            },
            Some(scan) => {
                let mut by_kind = [0u64; 6];
                let mut samples_total = 0u64;
                let mut events_total = 0u64;
                let mut max_event_seq = 0u64;
                let mut expected = SegmentFooter::empty();
                for (_, rec) in &scan.records {
                    by_kind[kind_slot(rec)] += 1;
                    expected.note(rec);
                    match rec {
                        Record::Samples { samples, .. } => {
                            samples_total += samples.len() as u64;
                        }
                        Record::Events { first_seq, events } => {
                            events_total += events.len() as u64;
                            if !events.is_empty() {
                                max_event_seq =
                                    max_event_seq.max(first_seq + events.len() as u64 - 1);
                            }
                        }
                        _ => {}
                    }
                }
                // `note` skips footer records, so `expected` is exactly
                // what the segment's final footer must claim.
                let footer = match scan.records.last() {
                    Some((_, Record::Footer(f))) => {
                        if *f == expected {
                            FooterStatus::Ok
                        } else {
                            FooterStatus::Mismatch
                        }
                    }
                    _ => FooterStatus::Missing,
                };
                SegmentHealth {
                    file_name,
                    base_index: scan.base_index,
                    bytes_on_disk,
                    valid_bytes: scan.valid_len,
                    header_ok: true,
                    torn: scan.torn,
                    records: scan.records.len() as u64,
                    records_by_kind: by_kind,
                    samples_total,
                    events_total,
                    max_event_seq,
                    footer,
                }
            }
        };
        segments.push(health);
    }
    let mut anomalies = Vec::new();
    for w in segments.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.base_index == a.base_index {
            anomalies.push(format!(
                "duplicate base index {}: {} and {} cover the same records",
                a.base_index, a.file_name, b.file_name
            ));
        } else if a.header_ok && b.base_index < a.base_index + a.records {
            anomalies.push(format!(
                "{} overlaps {}: base index {} is below {}'s next free index {}",
                b.file_name,
                a.file_name,
                b.base_index,
                a.file_name,
                a.base_index + a.records
            ));
        }
    }
    Ok(JournalInspect {
        dir: dir.to_path_buf(),
        segments,
        anomalies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-inspect-{}-{}-{tag}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let dir = tmp_dir("ro");
        let mut j = Journal::open_with(
            &dir,
            JournalConfig {
                segment_bytes: 200,
                sync_on_append: false,
                write_footers: false,
            },
        )
        .unwrap()
        .journal;
        for i in 1..=12u64 {
            if j.would_roll() {
                j.roll().unwrap();
            }
            j.append(&Record::Cursor { acked_events: i }).unwrap();
        }
        drop(j);
        // Tear the last segment's tail.
        let report = inspect_dir(&dir).unwrap();
        let last = report.segments.last().unwrap().file_name.clone();
        let path = dir.join(&last);
        let full = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let before: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name(), e.metadata().unwrap().len())
            })
            .collect();
        let report = inspect_dir(&dir).unwrap();
        assert!(!report.healthy());
        assert!(report.segments.len() >= 2);
        assert!(report.segments.iter().filter(|s| s.torn).count() == 1);
        assert_eq!(report.records(), 11, "one record lost to the tear");
        let after: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name(), e.metadata().unwrap().len())
            })
            .collect();
        assert_eq!(before, after, "inspection must not mutate the journal");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_accounting_is_per_segment() {
        let dir = tmp_dir("kinds");
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&Record::Samples {
            seq: 1,
            samples: vec![1.0; 10],
        })
        .unwrap();
        j.append(&Record::Cursor { acked_events: 0 }).unwrap();
        drop(j);
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.segments.len(), 1);
        let seg = &report.segments[0];
        assert_eq!(seg.records_by_kind, [0, 1, 0, 1, 0, 0]);
        assert_eq!(seg.samples_total, 10);
        assert_eq!(seg.footer, FooterStatus::Missing, "active segment");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_health_is_surfaced() {
        let dir = tmp_dir("footerhealth");
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&Record::Cursor { acked_events: 1 }).unwrap();
        j.roll().unwrap();
        j.append(&Record::Cursor { acked_events: 2 }).unwrap();
        drop(j);
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.segments[0].footer, FooterStatus::Ok);
        assert_eq!(report.segments[0].records_by_kind[5], 1);
        assert_eq!(report.segments[1].footer, FooterStatus::Missing);

        // A footer whose claims disagree with the records is Mismatch.
        use crate::segment::{encode_record_frame, segment_file_name};
        use std::io::Write as _;
        let sealed = dir.join(&report.segments[0].file_name);
        let mut lying = SegmentFooter::empty();
        lying.record_count = 99;
        // Re-write the sealed segment: cursor + lying footer.
        let bytes = fs::read(&sealed).unwrap();
        let header = bytes[..crate::segment::SEGMENT_HEADER_LEN].to_vec();
        let mut f = fs::File::create(dir.join(segment_file_name(0))).unwrap();
        f.write_all(&header).unwrap();
        f.write_all(&encode_record_frame(&Record::Cursor { acked_events: 1 }))
            .unwrap();
        f.write_all(&encode_record_frame(&Record::Footer(lying))).unwrap();
        drop(f);
        let report = inspect_dir(&dir).unwrap();
        assert_eq!(report.segments[0].footer, FooterStatus::Mismatch);
        assert!(!report.healthy());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn droppings_are_skipped_and_duplicates_reported() {
        let dir = tmp_dir("anomalies");
        let mut j = Journal::open(&dir).unwrap().journal;
        for i in 1..=3u64 {
            j.append(&Record::Cursor { acked_events: i }).unwrap();
        }
        drop(j);
        fs::write(dir.join("flight-session-3.json"), b"{}").unwrap();
        fs::write(dir.join("seg-0.emj.swp"), b"vim was here").unwrap();
        fs::create_dir_all(dir.join("nested")).unwrap();
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy(), "droppings must not look like segments");
        assert_eq!(report.segments.len(), 1);

        // A duplicate-base twin is a named anomaly, not a mis-ordering.
        use crate::segment::segment_file_name;
        fs::copy(dir.join(segment_file_name(0)), dir.join("seg-0.emj")).unwrap();
        let report = inspect_dir(&dir).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.anomalies.len(), 1);
        assert!(report.anomalies[0].contains("duplicate base index 0"));

        // An overlapping (but not duplicate) base is reported too:
        // seg-0 covers indexes 0..3, a twin claiming base 1 collides.
        fs::remove_file(dir.join("seg-0.emj")).unwrap();
        use crate::segment::{encode_record_frame, encode_segment_header};
        use std::io::Write as _;
        let mut f = fs::File::create(dir.join(segment_file_name(1))).unwrap();
        f.write_all(&encode_segment_header(1)).unwrap();
        f.write_all(&encode_record_frame(&Record::Cursor { acked_events: 9 }))
            .unwrap();
        drop(f);
        let report = inspect_dir(&dir).unwrap();
        assert!(
            report.anomalies.iter().any(|a| a.contains("overlaps")),
            "got {:?}",
            report.anomalies
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
