//! `emprof-store`: a pure-`std`, segmented, append-only, CRC-checked
//! delivered-event journal.
//!
//! This crate closes the at-most-once delivery gap in `emprof-serve`
//! (DESIGN.md §10): finalized stall events are journaled *before* they
//! are offered to a client, per-session delivery cursors are journaled
//! as the client acknowledges them, and recovery replays whatever the
//! cursor says was never acknowledged. Delivery becomes exactly-once
//! across reply loss *and* full server restarts.
//!
//! Layers, bottom-up:
//!
//! - [`crc`] — dependency-free CRC-32 (IEEE) for at-rest integrity.
//! - [`record`] — record kinds ([`Record`]) and their payload codec.
//! - [`segment`] — on-disk framing: segment header + CRC-framed
//!   records, and the torn-tail scanner.
//! - [`journal`] — [`Journal`]: the multi-segment append log with
//!   longest-valid-prefix recovery and whole-segment compaction.
//! - [`session`] — [`SessionJournal`]: the serve-facing layer owning
//!   checkpoints, the delivery cursor, and ack-driven compaction.
//! - [`inspect`] — a strictly read-only health walk for
//!   `emprof journal-inspect`.
//! - [`flight`] — atomic persistence of per-session flight-recorder
//!   dumps next to the journals.
//! - [`cache`] — LRU+TTL cache of decoded sealed segments for the
//!   query path.
//! - [`query`] — the range-statistics engine (`emprof query`), with
//!   footer-driven segment pruning and the query-equals-replay
//!   invariant (DESIGN.md §16).
//!
//! ## Durability model
//!
//! [`Journal::open`] never panics and never refuses a damaged journal:
//! it recovers the longest valid prefix (torn tails truncated, segments
//! past the first anomaly dropped) and resumes appending after it. By
//! default appends are buffered writes without fsync — the guarantee
//! targets process crashes and restarts; set
//! [`JournalConfig::sync_on_append`] (or call sync at your own
//! barriers) for power-loss durability.
//!
//! Telemetry (via `emprof-obs`, all zero-cost when disabled):
//! `store.appends`, `store.bytes_written`, `store.segments_created`,
//! `store.compactions`, `store.recovered_truncations`,
//! `store.cache.hits`, `store.cache.misses`, `store.cache.evictions`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod crc;
pub mod flight;
pub mod inspect;
pub mod journal;
pub mod query;
pub mod record;
pub mod segment;
pub mod session;

pub use cache::{DecodedSegment, SegmentCache, SegmentCacheConfig};
pub use crc::{crc32, Crc32};
pub use flight::{remove_flight_dump, write_flight_dump};
pub use inspect::{inspect_dir, FooterStatus, JournalInspect, SegmentHealth};
pub use journal::{Journal, JournalConfig, JournalStats, Recovered, RecoveryReport};
pub use query::{
    query_journals, QueryAccounting, QueryAccumulator, QueryResult, QuerySessionRow, QuerySpec,
    MAX_TIMELINE_BUCKETS,
};
pub use record::{Record, RecordKind, SegmentFooter, SessionMeta, FOOTER_PAYLOAD_LEN};
pub use segment::read_segment_footer;
pub use session::{read_session, RecoveredSession, SessionJournal};
