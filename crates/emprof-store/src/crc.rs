//! CRC-32 (IEEE 802.3 polynomial, reflected), dependency-free.
//!
//! Every journal record carries a CRC over its kind byte and payload;
//! every segment header carries one over the other header bytes. The
//! FNV checksums used on the wire are too weak for at-rest corruption
//! detection across power loss — CRC-32 detects all burst errors up to
//! 32 bits and has a well-understood miss rate beyond that.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Incremental CRC-32: feed chunks through [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xff) as usize];
        }
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"segmented append-only journal";
        let mut inc = Crc32::new();
        for chunk in data.chunks(5) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_digest() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(crc32(&mutated), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
