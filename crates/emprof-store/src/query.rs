//! The query engine: range statistics over journal directories.
//!
//! Turns a directory of session journals (either a serve root holding
//! `session-<id>/` subdirectories or a flat `emprof record` directory
//! of segments) into Table-IV-style answers — stall-latency
//! percentiles, event-rate timelines, degraded fractions,
//! refresh-collision counts — over a `[t0, t1]` sample-index window
//! and a session set.
//!
//! ## query-equals-replay
//!
//! The headline invariant: every statistic a query returns is
//! bit-identical to recomputing it from a full replay of the same
//! journals. Three design choices enforce it by construction:
//!
//! 1. The fold is the *same* fold replay uses — events land in a
//!    last-wins map keyed by sequence, exactly like
//!    [`crate::session::SessionJournal::open`] — the statistics are
//!    computed by [`QueryAccumulator`], a pure function both the
//!    engine and any replay-side verifier share, and the engine stops
//!    at the first segment anomaly (duplicate base, bad header,
//!    overlapping coverage, torn tail) exactly where recovery would
//!    discard the rest of the journal.
//! 2. Footer pruning only skips a segment when its event interval
//!    `[min_event_start, max_event_end]` cannot intersect `[t0, t1]`,
//!    so a pruned segment can never hold an in-range event. (This
//!    leans on the append path journaling each event sequence exactly
//!    once, which the delivery layer guarantees.)
//! 3. The cache stores fully decoded sealed segments validated by file
//!    stat on every hit, so the hit path folds the same records the
//!    cold path would read.
//!
//! Reads are strictly read-only ([`scan_segment`], never
//! [`crate::journal::Journal::open`], which repairs in place), so
//! querying a live server's journals is safe. Ack-driven compaction
//! can still delete a segment between the directory listing and the
//! read; the engine re-lists and replans (compaction is prefix-only
//! and monotone, so a bounded number of replans always converges).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use emprof_core::StallEvent;
use emprof_obs::metrics::LogHistogram;
use emprof_obs::HistogramSnapshot;

use crate::cache::{DecodedSegment, SegmentCache};
use crate::record::{Record, SessionMeta};
use crate::segment::{parse_segment_file_name, read_segment_footer, scan_segment};

/// Upper bound on event-rate timeline buckets per query.
pub const MAX_TIMELINE_BUCKETS: u64 = 4096;

/// How many times a query replans a session after losing a segment to
/// concurrent compaction before giving up. Compaction only ever
/// deletes a monotone prefix, so each replan strictly shrinks the
/// contested range; this bound is never hit outside of pathological
/// delete loops.
const MAX_REPLANS: usize = 5;

/// What to compute, over which window and sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Window start, inclusive, in sample indexes (an event is in
    /// range when its `start_sample` is within `[t0, t1]`).
    pub t0: u64,
    /// Window end, inclusive. `t1 < t0` is a valid empty window.
    pub t1: u64,
    /// Sessions to include; empty means every session found.
    pub sessions: Vec<u64>,
    /// Event-rate timeline bucket width in samples; `0` disables the
    /// timeline. The window must span at most
    /// [`MAX_TIMELINE_BUCKETS`] buckets.
    pub bucket_samples: u64,
}

impl QuerySpec {
    /// The whole journal: every session, every event, no timeline.
    pub fn all() -> QuerySpec {
        QuerySpec {
            t0: 0,
            t1: u64::MAX,
            sessions: Vec::new(),
            bucket_samples: 0,
        }
    }

    /// Whether `session_id` passes the session filter.
    pub fn matches_session(&self, session_id: u64) -> bool {
        self.sessions.is_empty() || self.sessions.contains(&session_id)
    }

    /// Timeline length implied by the window, or an error when it
    /// would exceed [`MAX_TIMELINE_BUCKETS`].
    pub fn timeline_len(&self) -> io::Result<usize> {
        if self.bucket_samples == 0 || self.t1 < self.t0 {
            return Ok(0);
        }
        let buckets = ((self.t1 - self.t0) / self.bucket_samples).checked_add(1);
        match buckets {
            Some(n) if n <= MAX_TIMELINE_BUCKETS => Ok(n as usize),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "query window spans too many timeline buckets",
            )),
        }
    }
}

/// Per-session statistics row in a [`QueryResult`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuerySessionRow {
    /// The session id.
    pub session_id: u64,
    /// Device label from the session's identity checkpoint.
    pub device: String,
    /// In-range events.
    pub events: u64,
    /// In-range events with degraded confidence.
    pub degraded: u64,
    /// In-range refresh-collision events.
    pub refresh_collisions: u64,
}

/// How much work the engine did (and avoided) answering a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryAccounting {
    /// Segments whose records were folded (from disk or cache).
    pub segments_scanned: u64,
    /// Segments skipped outright because their footer proved they hold
    /// no in-range events.
    pub segments_pruned: u64,
    /// Decoded-segment cache hits.
    pub cache_hits: u64,
    /// Decoded-segment cache misses.
    pub cache_misses: u64,
}

/// The answer to a [`QuerySpec`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryResult {
    /// In-range events across all matched sessions.
    pub events: u64,
    /// Of those, events with degraded confidence.
    pub degraded: u64,
    /// Of those, refresh-collision events.
    pub refresh_collisions: u64,
    /// Stall-latency distribution (duration in cycles, truncated to
    /// integers) over the in-range events; quantiles via
    /// [`HistogramSnapshot::quantile`].
    pub latency: HistogramSnapshot,
    /// Event counts per timeline bucket (empty when the spec disables
    /// the timeline). Bucket `i` covers samples
    /// `[t0 + i*bucket_samples, t0 + (i+1)*bucket_samples)`.
    pub timeline: Vec<u64>,
    /// Per-session rows, ordered by session id.
    pub sessions: Vec<QuerySessionRow>,
    /// Work accounting.
    pub accounting: QueryAccounting,
}

/// The shared statistics fold: both the query engine and replay-side
/// verifiers push `(sequence, event)` streams through this, so
/// query-equals-replay is bit-identity by construction, not by two
/// implementations agreeing.
#[derive(Debug)]
pub struct QueryAccumulator {
    spec: QuerySpec,
    events: u64,
    degraded: u64,
    refresh_collisions: u64,
    hist: LogHistogram,
    timeline: Vec<u64>,
    rows: Vec<QuerySessionRow>,
    /// Work accounting, merged in by the engine; stays zero for pure
    /// replay-side use.
    pub accounting: QueryAccounting,
}

impl QueryAccumulator {
    /// Builds an accumulator for `spec`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the timeline would exceed
    /// [`MAX_TIMELINE_BUCKETS`].
    pub fn new(spec: &QuerySpec) -> io::Result<QueryAccumulator> {
        let timeline = vec![0u64; spec.timeline_len()?];
        Ok(QueryAccumulator {
            spec: spec.clone(),
            events: 0,
            degraded: 0,
            refresh_collisions: 0,
            hist: LogHistogram::new(),
            timeline,
            rows: Vec::new(),
            accounting: QueryAccounting::default(),
        })
    }

    /// Folds one session's deduplicated `(sequence, event)` stream.
    /// The caller must already have applied last-wins sequence dedup
    /// (a `BTreeMap` fold, as replay does); this applies the `[t0,
    /// t1]` range filter and the statistics.
    pub fn add_session<'a, I>(&mut self, session_id: u64, device: &str, events: I)
    where
        I: IntoIterator<Item = &'a (u64, StallEvent)>,
    {
        use emprof_core::{Confidence, StallKind};
        let mut row = QuerySessionRow {
            session_id,
            device: device.to_string(),
            ..QuerySessionRow::default()
        };
        for (_, e) in events {
            let start = e.start_sample as u64;
            if start < self.spec.t0 || start > self.spec.t1 {
                continue;
            }
            row.events += 1;
            if e.confidence == Confidence::Degraded {
                row.degraded += 1;
            }
            if e.kind == StallKind::RefreshCollision {
                row.refresh_collisions += 1;
            }
            // Durations are f64 cycles; the histogram domain is u64.
            // `as` saturates (NaN to 0), identically everywhere.
            self.hist.record(e.duration_cycles as u64);
            if !self.timeline.is_empty() {
                let bucket = ((start - self.spec.t0) / self.spec.bucket_samples) as usize;
                self.timeline[bucket] += 1;
            }
        }
        self.events += row.events;
        self.degraded += row.degraded;
        self.refresh_collisions += row.refresh_collisions;
        self.rows.push(row);
    }

    /// Finishes the fold into a [`QueryResult`]. Rows are ordered by
    /// session id so the result is independent of discovery order.
    pub fn finish(mut self) -> QueryResult {
        self.rows.sort_by_key(|r| r.session_id);
        QueryResult {
            events: self.events,
            degraded: self.degraded,
            refresh_collisions: self.refresh_collisions,
            latency: HistogramSnapshot {
                count: self.hist.count(),
                sum: self.hist.sum(),
                min: self.hist.min(),
                max: self.hist.max(),
                buckets: self.hist.nonzero_buckets(),
            },
            timeline: self.timeline,
            sessions: self.rows,
            accounting: self.accounting,
        }
    }
}

/// Evaluates `spec` over the journals under `root`.
///
/// `root` may be a serve journal root (`session-<id>/` subdirectories)
/// or a flat `emprof record` directory of segments. Sessions without a
/// surviving identity checkpoint contribute nothing (exactly as replay
/// treats them). Pass a [`SegmentCache`] to reuse decoded sealed
/// segments across queries.
///
/// # Errors
///
/// Propagates I/O failures and `InvalidInput` for an over-wide
/// timeline; corrupt segments are not errors (the valid prefix
/// contributes, as in replay).
pub fn query_journals(
    root: &Path,
    spec: &QuerySpec,
    cache: Option<&SegmentCache>,
) -> io::Result<QueryResult> {
    let mut acc = QueryAccumulator::new(spec)?;
    for (id_hint, dir) in discover_sessions(root)? {
        // A directory-named session the filter excludes is skipped
        // without touching any of its segments.
        if let Some(id) = id_hint {
            if !spec.matches_session(id) {
                continue;
            }
        }
        query_session(&dir, id_hint, spec, cache, &mut acc)?;
    }
    Ok(acc.finish())
}

/// Lists the session directories under a journal root. A root that
/// itself holds segment files (the `emprof record` layout) is a single
/// anonymous session whose id comes from its Meta checkpoint.
fn discover_sessions(root: &Path) -> io::Result<Vec<(Option<u64>, PathBuf)>> {
    let mut sessions: Vec<(Option<u64>, PathBuf)> = Vec::new();
    let mut has_segments = false;
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let ft = entry.file_type()?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if ft.is_dir() {
            if let Some(id) = name
                .strip_prefix("session-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                sessions.push((Some(id), entry.path()));
            }
        } else if ft.is_file() && parse_segment_file_name(&name).is_some() {
            has_segments = true;
        }
    }
    if sessions.is_empty() && has_segments {
        sessions.push((None, root.to_path_buf()));
    }
    sessions.sort_by_key(|(id, _)| *id);
    Ok(sessions)
}

/// Queries one session directory, replanning when compaction deletes a
/// listed segment out from under the read.
fn query_session(
    dir: &Path,
    id_hint: Option<u64>,
    spec: &QuerySpec,
    cache: Option<&SegmentCache>,
    acc: &mut QueryAccumulator,
) -> io::Result<()> {
    for _ in 0..MAX_REPLANS {
        match query_session_once(dir, spec, cache) {
            Ok(None) => return Ok(()),
            Ok(Some((meta, events, acct))) => {
                acc.accounting.segments_scanned += acct.segments_scanned;
                acc.accounting.segments_pruned += acct.segments_pruned;
                acc.accounting.cache_hits += acct.cache_hits;
                acc.accounting.cache_misses += acct.cache_misses;
                let session_id = id_hint.unwrap_or(meta.session_id);
                if spec.matches_session(session_id) {
                    acc.add_session(session_id, &meta.device, events.iter());
                }
                return Ok(());
            }
            // A listed segment vanished: ack-driven compaction beat us
            // to it. Re-list and replan; the partial attempt's
            // accounting is discarded so nothing double-counts.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other(
        "query lost a segment to compaction on every replan",
    ))
}

type SessionRead = (SessionMeta, Vec<(u64, StallEvent)>, QueryAccounting);

/// One read attempt over a session directory snapshot. `NotFound` from
/// any segment read means the snapshot went stale (compaction); the
/// caller replans.
fn query_session_once(
    dir: &Path,
    spec: &QuerySpec,
    cache: Option<&SegmentCache>,
) -> io::Result<Option<SessionRead>> {
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(base) = parse_segment_file_name(name) {
            segs.push((base, entry.path()));
        }
    }
    segs.sort_by_key(|s| s.0);
    if segs.is_empty() {
        return Ok(None);
    }
    let mut meta: Option<SessionMeta> = None;
    let mut events: BTreeMap<u64, StallEvent> = BTreeMap::new();
    let mut acct = QueryAccounting::default();
    // Replay's valid-prefix state machine, mirrored record for record:
    // recovery (`Journal::open`) discards everything after the first
    // anomaly — a duplicate base, a bad or mismatched header,
    // overlapping index coverage, or a torn tail — so a bit-identical
    // query must stop folding at exactly the same segment.
    let mut next_index = 0u64;
    let mut last_base: Option<u64> = None;
    for (i, (base, path)) in segs.iter().enumerate() {
        if last_base == Some(*base) {
            // Duplicate base: recovery keeps the first copy and drops
            // the rest of the journal.
            break;
        }
        last_base = Some(*base);
        let md = fs::metadata(path)?;
        let (file_len, modified) = (md.len(), md.modified().ok());
        if let Some(c) = cache {
            if let Some(seg) = c.get(dir, *base, file_len, modified) {
                acct.cache_hits += 1;
                if *base < next_index {
                    // Overlapping coverage: outside the valid prefix.
                    break;
                }
                if let Some(m) = &seg.meta {
                    meta = Some(m.clone());
                }
                // The first retained segment always folds: checkpoint
                // discipline puts the session's Meta at its head, and
                // pruning decisions only ever skip event payloads.
                if i > 0 && !seg.footer.overlaps(spec.t0, spec.t1) {
                    acct.segments_pruned += 1;
                } else {
                    for (seq, ev) in &seg.events {
                        events.insert(*seq, *ev);
                    }
                    acct.segments_scanned += 1;
                }
                // The scan recovery would run counts the footer record
                // itself; the footer's own record_count does not.
                next_index = *base + seg.footer.record_count + 1;
                continue;
            }
            acct.cache_misses += 1;
        }
        if i > 0 {
            // A tail footer proves the segment is sealed (written and
            // synced in full before the roll), so it cannot be torn
            // and its event interval is trustworthy without a scan.
            if let Some(footer) = read_segment_footer(path)? {
                if *base < next_index {
                    break;
                }
                if !footer.overlaps(spec.t0, spec.t1) {
                    acct.segments_pruned += 1;
                    next_index = *base + footer.record_count + 1;
                    continue;
                }
            }
        }
        let Some(scan) = scan_segment(path)? else {
            // Invalid header: recovery drops this file and everything
            // after it.
            break;
        };
        if scan.base_index != *base || scan.base_index < next_index {
            // A header disagreeing with the file name, or claiming an
            // index range an earlier segment already covers: named
            // corruption, end of the valid prefix.
            break;
        }
        acct.segments_scanned += 1;
        let mut seg_meta: Option<SessionMeta> = None;
        let mut seg_events: Vec<(u64, StallEvent)> = Vec::new();
        for (_, rec) in &scan.records {
            match rec {
                Record::Meta(m) => seg_meta = Some(m.clone()),
                Record::Events {
                    first_seq,
                    events: evs,
                } => {
                    for (k, ev) in evs.iter().enumerate() {
                        seg_events.push((first_seq + k as u64, *ev));
                    }
                }
                _ => {}
            }
        }
        if let Some(m) = &seg_meta {
            meta = Some(m.clone());
        }
        for (seq, ev) in &seg_events {
            events.insert(*seq, *ev);
        }
        next_index = scan.base_index + scan.records.len() as u64;
        // Only a sealed segment — clean scan ending in its footer, the
        // same condition `read_segment_footer` validates — is immutable
        // and safe to cache.
        if let Some(c) = cache {
            if !scan.torn {
                if let Some((_, Record::Footer(footer))) = scan.records.last() {
                    c.insert(
                        dir,
                        *base,
                        Arc::new(DecodedSegment {
                            base_index: *base,
                            meta: seg_meta,
                            events: seg_events,
                            footer: *footer,
                            file_len,
                            modified,
                        }),
                    );
                }
            }
        }
        if scan.torn {
            // Recovery truncates a torn segment to its valid prefix
            // (which we just folded) and drops every later segment.
            break;
        }
    }
    let Some(meta) = meta else {
        // No identity checkpoint survived: replay discards such a
        // journal, so queries do too.
        return Ok(None);
    };
    Ok(Some((meta, events.into_iter().collect(), acct)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalConfig;
    use crate::session::SessionJournal;
    use emprof_core::{Confidence, EmprofConfig, StallKind};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-query-{}-{}-{tag}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(id: u64) -> SessionMeta {
        SessionMeta {
            session_id: id,
            resume_token: 9,
            sample_rate_hz: 40e6,
            clock_hz: 1.0e9,
            config: EmprofConfig::for_rates(40e6, 1.0e9),
            device: format!("dev-{id}"),
        }
    }

    fn ev(start: usize, dur: f64, kind: StallKind, conf: Confidence) -> StallEvent {
        StallEvent {
            start_sample: start,
            end_sample: start + 10,
            duration_cycles: dur,
            kind,
            confidence: conf,
        }
    }

    fn small_cfg() -> JournalConfig {
        JournalConfig {
            segment_bytes: 256,
            sync_on_append: false,
            ..Default::default()
        }
    }

    /// Writes one session with events at start = seq * 1000.
    fn write_session(dir: &Path, id: u64, n: u64) {
        let mut sj = SessionJournal::create(dir, meta(id), small_cfg()).unwrap();
        for seq in 1..=n {
            let kind = if seq % 5 == 0 {
                StallKind::RefreshCollision
            } else {
                StallKind::Normal
            };
            let conf = if seq % 3 == 0 {
                Confidence::Degraded
            } else {
                Confidence::High
            };
            sj.append_events(seq, &[ev((seq * 1000) as usize, 100.0 + seq as f64, kind, conf)])
                .unwrap();
        }
        sj.sync().unwrap();
    }

    #[test]
    fn query_matches_replay_fold() {
        let root = tmp_dir("replayeq");
        write_session(&root.join("session-1"), 1, 40);
        let spec = QuerySpec {
            t0: 5_000,
            t1: 20_000,
            sessions: Vec::new(),
            bucket_samples: 1000,
        };
        let got = query_journals(&root, &spec, None).unwrap();

        // Replay side: full recovery fold, same accumulator.
        let rec = crate::session::read_session(&root.join("session-1"), small_cfg())
            .unwrap()
            .unwrap();
        let mut acc = QueryAccumulator::new(&spec).unwrap();
        acc.add_session(1, &rec.meta.device, rec.events.iter());
        let want = acc.finish();
        assert_eq!(got.events, want.events);
        assert_eq!(got.latency, want.latency);
        assert_eq!(got.timeline, want.timeline);
        assert_eq!(got.sessions, want.sessions);
        assert_eq!(got.events, 16, "starts 5000..=20000 inclusive");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn range_query_prunes_segments() {
        let root = tmp_dir("prune");
        let dir = root.join("session-1");
        write_session(&dir, 1, 60);
        let all = query_journals(&root, &QuerySpec::all(), None).unwrap();
        assert!(
            all.accounting.segments_scanned > 4,
            "need a multi-segment journal, got {:?}",
            all.accounting
        );
        assert_eq!(all.accounting.segments_pruned, 0);
        // A narrow window must read strictly fewer segments.
        let narrow = query_journals(
            &root,
            &QuerySpec {
                t0: 55_000,
                t1: 60_000,
                sessions: Vec::new(),
                bucket_samples: 0,
            },
            None,
        )
        .unwrap();
        assert!(narrow.accounting.segments_pruned > 0);
        assert!(narrow.accounting.segments_scanned < all.accounting.segments_scanned);
        assert_eq!(narrow.events, 6, "seqs 55..=60");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cached_and_cold_results_are_identical() {
        let root = tmp_dir("cachecoherent");
        write_session(&root.join("session-3"), 3, 50);
        let spec = QuerySpec {
            t0: 0,
            t1: 30_000,
            sessions: Vec::new(),
            bucket_samples: 0,
        };
        let cold = query_journals(&root, &spec, None).unwrap();
        let cache = SegmentCache::default();
        let first = query_journals(&root, &spec, Some(&cache)).unwrap();
        let second = query_journals(&root, &spec, Some(&cache)).unwrap();
        assert!(second.accounting.cache_hits > 0, "{:?}", second.accounting);
        for r in [&first, &second] {
            assert_eq!(r.events, cold.events);
            assert_eq!(r.latency, cold.latency);
            assert_eq!(r.sessions, cold.sessions);
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn session_filter_and_flat_layout() {
        let root = tmp_dir("filterflat");
        write_session(&root.join("session-1"), 1, 5);
        write_session(&root.join("session-2"), 2, 5);
        let only2 = query_journals(
            &root,
            &QuerySpec {
                sessions: vec![2],
                ..QuerySpec::all()
            },
            None,
        )
        .unwrap();
        assert_eq!(only2.sessions.len(), 1);
        assert_eq!(only2.sessions[0].session_id, 2);
        assert_eq!(only2.sessions[0].device, "dev-2");

        // Flat layout: segments directly in the root.
        let flat = tmp_dir("flat");
        write_session(&flat, 9, 4);
        let r = query_journals(&flat, &QuerySpec::all(), None).unwrap();
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(r.sessions[0].session_id, 9, "id from Meta checkpoint");
        assert_eq!(r.events, 4);
        fs::remove_dir_all(&root).unwrap();
        fs::remove_dir_all(&flat).unwrap();
    }

    #[test]
    fn empty_window_and_empty_root() {
        let root = tmp_dir("empty");
        write_session(&root.join("session-1"), 1, 5);
        let spec = QuerySpec {
            t0: 10,
            t1: 5,
            sessions: Vec::new(),
            bucket_samples: 100,
        };
        let r = query_journals(&root, &spec, None).unwrap();
        assert_eq!(r.events, 0);
        assert_eq!(r.timeline, Vec::<u64>::new());
        assert_eq!(r.latency.count, 0);
        // An empty directory is an empty result, not an error.
        let none = tmp_dir("none");
        fs::create_dir_all(&none).unwrap();
        let r = query_journals(&none, &QuerySpec::all(), None).unwrap();
        assert_eq!(r.sessions.len(), 0);
        fs::remove_dir_all(&root).unwrap();
        fs::remove_dir_all(&none).unwrap();
    }

    #[test]
    fn oversized_timeline_is_rejected() {
        let spec = QuerySpec {
            t0: 0,
            t1: u64::MAX,
            sessions: Vec::new(),
            bucket_samples: 1,
        };
        assert!(spec.timeline_len().is_err());
    }
}
