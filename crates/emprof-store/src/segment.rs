//! On-disk segment format: a fixed header followed by CRC-framed
//! records.
//!
//! ```text
//! segment header (24 bytes)
//!   offset  size  field
//!   0       8     magic            b"EMPROFJ1"
//!   8       4     format version   (currently 1)
//!   12      8     base index       journal index of the first record
//!   20      4     header CRC-32    over bytes 0..20
//!
//! record frame (9-byte header + payload)
//!   offset  size  field
//!   0       4     payload length   bounded by MAX_RECORD
//!   4       1     record kind      (RecordKind)
//!   5       4     CRC-32           over the kind byte + payload
//!   9       len   payload
//! ```
//!
//! Scanning validates the header, then walks records front to back.
//! The first frame that is truncated, oversized, or CRC-corrupt ends
//! the valid prefix: everything before it is intact (CRC-verified),
//! everything from it on is treated as a torn write. Scanning never
//! panics and allocates at most one bounded payload at a time beyond
//! the file read itself.

use std::fs;
use std::io;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::crc::crc32;
use crate::record::{Record, RecordKind, SegmentFooter, FOOTER_PAYLOAD_LEN};

/// First eight bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"EMPROFJ1";

/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed segment-header length in bytes.
pub const SEGMENT_HEADER_LEN: usize = 24;

/// Fixed record-frame header length in bytes.
pub const RECORD_HEADER_LEN: usize = 9;

/// Upper bound on any record payload (16 MiB). A frame announcing more
/// is corruption by definition and ends the valid prefix.
pub const MAX_RECORD: u32 = 1 << 24;

/// Builds the canonical file name for a segment.
pub fn segment_file_name(base_index: u64) -> String {
    format!("seg-{base_index:020}.emj")
}

/// Parses a segment file name back to its base index.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".emj")?
        .parse()
        .ok()
}

/// Serializes a segment header for `base_index`.
pub fn encode_segment_header(base_index: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[0..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&base_index.to_le_bytes());
    let crc = crc32(&h[..20]);
    h[20..24].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a segment header, returning its base index.
pub fn decode_segment_header(h: &[u8]) -> Option<u64> {
    if h.len() < SEGMENT_HEADER_LEN || h[0..8] != SEGMENT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(h[8..12].try_into().unwrap()) != FORMAT_VERSION {
        return None;
    }
    if u32::from_le_bytes(h[20..24].try_into().unwrap()) != crc32(&h[..20]) {
        return None;
    }
    Some(u64::from_le_bytes(h[12..20].try_into().unwrap()))
}

/// Serializes one record frame (header + payload) ready to append.
pub fn encode_record_frame(rec: &Record) -> Vec<u8> {
    let payload = rec.encode();
    debug_assert!(payload.len() <= MAX_RECORD as usize, "record too large");
    let kind = rec.kind() as u8;
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(&payload);
    let crc = crc32(&crc_input);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The outcome of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// The header's base index.
    pub base_index: u64,
    /// Every CRC-valid record, paired with its journal index.
    pub records: Vec<(u64, Record)>,
    /// Byte offset of the end of the last valid record — the length the
    /// file must be truncated to if `torn` is set.
    pub valid_len: u64,
    /// Whether a torn or corrupt tail was found past `valid_len`.
    pub torn: bool,
}

/// Scans a segment file, validating the header and every record frame.
/// Returns `None` when the header itself is invalid (the whole file is
/// unusable — a torn header write or foreign file).
///
/// # Errors
///
/// Propagates I/O failures reading the file; corruption is *not* an
/// error, it shortens the valid prefix instead.
pub fn scan_segment(path: &Path) -> io::Result<Option<SegmentScan>> {
    let bytes = fs::read(path)?;
    let Some(base_index) = decode_segment_header(&bytes) else {
        return Ok(None);
    };
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    let mut index = base_index;
    let mut torn = false;
    loop {
        if pos == bytes.len() {
            break;
        }
        if pos + RECORD_HEADER_LEN > bytes.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let kind = bytes[pos + 4];
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().unwrap());
        if len > MAX_RECORD {
            torn = true;
            break;
        }
        let Some(end) = (pos + RECORD_HEADER_LEN).checked_add(len as usize) else {
            torn = true;
            break;
        };
        if end > bytes.len() {
            torn = true;
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_LEN..end];
        let mut crc_input = Vec::with_capacity(1 + payload.len());
        crc_input.push(kind);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            torn = true;
            break;
        }
        let Ok(rec) = Record::decode(kind, payload) else {
            // CRC-valid but undecodable: a format mismatch, treated the
            // same as corruption for recovery (prefix ends here).
            torn = true;
            break;
        };
        records.push((index, rec));
        index += 1;
        pos = end;
    }
    Ok(Some(SegmentScan {
        base_index,
        records,
        valid_len: pos as u64,
        torn,
    }))
}

/// Fetches a sealed segment's statistics footer in O(1): two fixed-size
/// reads (header, tail) instead of a full scan.
///
/// Returns `Ok(None)` — "no usable footer, fall back to scanning" — in
/// every non-I/O failure mode: a footer-less legacy segment, a segment
/// still being appended to (the footer is only the *last* frame of a
/// sealed segment; anything appended after a stale footer displaces it
/// from the tail), a torn tail, or a corrupt header. Only genuine I/O
/// failures surface as errors.
pub fn read_segment_footer(path: &Path) -> io::Result<Option<SegmentFooter>> {
    let mut f = fs::File::open(path)?;
    let file_len = f.metadata()?.len();
    let tail_len = (RECORD_HEADER_LEN + FOOTER_PAYLOAD_LEN) as u64;
    if file_len < SEGMENT_HEADER_LEN as u64 + tail_len {
        return Ok(None);
    }
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    f.read_exact(&mut header)?;
    if decode_segment_header(&header).is_none() {
        return Ok(None);
    }
    f.seek(SeekFrom::End(-(tail_len as i64)))?;
    let mut tail = [0u8; RECORD_HEADER_LEN + FOOTER_PAYLOAD_LEN];
    f.read_exact(&mut tail)?;
    let len = u32::from_le_bytes(tail[0..4].try_into().unwrap());
    let kind = tail[4];
    let crc = u32::from_le_bytes(tail[5..9].try_into().unwrap());
    if len as usize != FOOTER_PAYLOAD_LEN || kind != RecordKind::Footer as u8 {
        return Ok(None);
    }
    let payload = &tail[RECORD_HEADER_LEN..];
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return Ok(None);
    }
    match Record::decode(kind, payload) {
        Ok(Record::Footer(footer)) => Ok(Some(footer)),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-seg-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(path: &Path, base: u64, records: &[Record]) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&encode_segment_header(base)).unwrap();
        for r in records {
            f.write_all(&encode_record_frame(r)).unwrap();
        }
    }

    fn cursors(n: u64) -> Vec<Record> {
        (1..=n).map(|i| Record::Cursor { acked_events: i }).collect()
    }

    #[test]
    fn file_names_roundtrip() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(parse_segment_file_name(&segment_file_name(base)), Some(base));
        }
        assert_eq!(parse_segment_file_name("seg-x.emj"), None);
        assert_eq!(parse_segment_file_name("other.emj"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let dir = tmp_dir("clean");
        let path = dir.join(segment_file_name(5));
        let recs = cursors(4);
        write_segment(&path, 5, &recs);
        let scan = scan_segment(&path).unwrap().expect("valid header");
        assert_eq!(scan.base_index, 5);
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[0].0, 5);
        assert_eq!(scan.records[3].0, 8);
        assert_eq!(scan.valid_len, fs::metadata(&path).unwrap().len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_ends_prefix() {
        let dir = tmp_dir("trunc");
        let path = dir.join(segment_file_name(0));
        write_segment(&path, 0, &cursors(3));
        let full = fs::metadata(&path).unwrap().len();
        // Chop mid-way through the last record.
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let scan = scan_segment(&path).unwrap().unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 2);
        assert!(scan.valid_len < full - 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_ends_prefix() {
        let dir = tmp_dir("corrupt");
        let path = dir.join(segment_file_name(0));
        write_segment(&path, 0, &cursors(3));
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the second record.
        let second_payload = SEGMENT_HEADER_LEN + (RECORD_HEADER_LEN + 8) + RECORD_HEADER_LEN + 3;
        bytes[second_payload] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap().unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1, "only the first record survives");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_rejects_whole_file() {
        let dir = tmp_dir("badhdr");
        let path = dir.join(segment_file_name(0));
        write_segment(&path, 0, &cursors(2));
        let mut bytes = fs::read(&path).unwrap();
        bytes[13] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(scan_segment(&path).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_tail_read_matches_scan() {
        let dir = tmp_dir("footer");
        let path = dir.join(segment_file_name(3));
        let mut recs = cursors(4);
        let mut footer = SegmentFooter::empty();
        for r in &recs {
            footer.note(r);
        }
        recs.push(Record::Footer(footer));
        write_segment(&path, 3, &recs);
        let got = read_segment_footer(&path).unwrap().expect("footer present");
        assert_eq!(got, footer);
        // The footer is an ordinary record to the scanner.
        let scan = scan_segment(&path).unwrap().unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.last().unwrap().1, Record::Footer(footer));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_absent_cases_fall_back_to_scan() {
        let dir = tmp_dir("nofooter");
        // Legacy segment: no footer at all.
        let legacy = dir.join(segment_file_name(0));
        write_segment(&legacy, 0, &cursors(20));
        assert_eq!(read_segment_footer(&legacy).unwrap(), None);
        // Active segment: records appended after a stale footer displace
        // it from the tail.
        let active = dir.join(segment_file_name(1));
        let mut recs = cursors(2);
        recs.push(Record::Footer(SegmentFooter::empty()));
        recs.push(Record::Cursor { acked_events: 99 });
        write_segment(&active, 1, &recs);
        assert_eq!(read_segment_footer(&active).unwrap(), None);
        // Torn tail: last byte chopped breaks the footer CRC.
        let torn = dir.join(segment_file_name(2));
        let mut recs = cursors(1);
        recs.push(Record::Footer(SegmentFooter::empty()));
        write_segment(&torn, 2, &recs);
        let full = fs::metadata(&torn).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&torn).unwrap();
        f.set_len(full - 1).unwrap();
        drop(f);
        assert_eq!(read_segment_footer(&torn).unwrap(), None);
        // Corrupt header: the file is not trusted at all.
        let badhdr = dir.join(segment_file_name(4));
        let mut recs = cursors(1);
        recs.push(Record::Footer(SegmentFooter::empty()));
        write_segment(&badhdr, 4, &recs);
        let mut bytes = fs::read(&badhdr).unwrap();
        bytes[13] ^= 0x01;
        fs::write(&badhdr, &bytes).unwrap();
        assert_eq!(read_segment_footer(&badhdr).unwrap(), None);
        // Tiny file: shorter than header + footer frame.
        let tiny = dir.join(segment_file_name(5));
        fs::write(&tiny, b"short").unwrap();
        assert_eq!(read_segment_footer(&tiny).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_length_field_is_corruption() {
        let dir = tmp_dir("oversz");
        let path = dir.join(segment_file_name(0));
        write_segment(&path, 0, &cursors(2));
        let mut bytes = fs::read(&path).unwrap();
        bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
            .copy_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap().unwrap();
        assert!(scan.torn);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, SEGMENT_HEADER_LEN as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}
