//! The journal: an append-only sequence of records spread over
//! segments in one directory, with torn-write recovery on open and
//! whole-segment compaction.
//!
//! ## Recovery rules
//!
//! [`Journal::open`] never panics and never refuses a damaged journal;
//! it recovers the **longest valid prefix**:
//!
//! 1. Segment files are ordered by base index. A file whose header is
//!    invalid, or whose header disagrees with its file name, ends the
//!    prefix (it and everything after it is deleted).
//! 2. Within a segment, records are validated front to back; the first
//!    truncated, oversized, or CRC-corrupt frame ends the prefix. The
//!    file is truncated back to the last valid record and every later
//!    segment is deleted.
//! 3. Appending resumes immediately after the recovered prefix.
//!
//! ## Compaction
//!
//! Deletion is whole-segment and prefix-only: [`Journal::compact`]
//! removes sealed segments from the front while every event they hold
//! is at or below the acknowledged cursor (and, unless the caller says
//! sample records are released, while they hold no samples). Callers
//! re-write their checkpoint records at every segment roll, so the
//! retained suffix is always self-describing.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use emprof_obs as obs;

use crate::record::{Record, SegmentFooter};
use crate::segment::{
    encode_record_frame, encode_segment_header, parse_segment_file_name, scan_segment,
    segment_file_name, SEGMENT_HEADER_LEN,
};

/// Journal tuning knobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Target segment size; a segment that grows past this is sealed
    /// and a new one started at the next append.
    pub segment_bytes: u64,
    /// Fsync after every append. Off by default: the exactly-once
    /// guarantee targets process crashes and restarts, not power loss;
    /// callers that need power-loss durability can also call
    /// [`Journal::sync`] at their own barriers.
    pub sync_on_append: bool,
    /// Write a [`SegmentFooter`] statistics record as the last frame of
    /// every segment sealed by [`Journal::roll`]. On by default; off
    /// produces footer-less segments identical to the legacy format
    /// (used by tests that pin exact record sequences, and a knob for
    /// byte-compatible downgrades).
    pub write_footers: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_bytes: 4 << 20,
            sync_on_append: false,
            write_footers: true,
        }
    }
}

/// What [`Journal::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files kept after recovery.
    pub segments: usize,
    /// Records in the recovered prefix.
    pub records: u64,
    /// Torn tails repaired (files truncated back to a valid record).
    pub truncations: u32,
    /// Bytes discarded by truncation.
    pub truncated_bytes: u64,
    /// Whole segment files discarded (invalid header, or past a torn
    /// segment).
    pub dropped_segments: usize,
    /// Of the dropped segments, those discarded because their base
    /// index duplicated or overlapped an earlier segment's index range
    /// (e.g. `seg-1.emj` sitting next to its zero-padded twin) — named
    /// corruption rather than a silently mis-ordered replay.
    pub overlapping_segments: usize,
}

/// In-memory summary of one segment, maintained at append time and
/// rebuilt by the recovery scan — this is what makes compaction
/// decisions O(segments) instead of O(bytes).
#[derive(Debug, Clone)]
struct SegmentInfo {
    path: PathBuf,
    bytes: u64,
    records: u64,
    /// Whether the segment holds any sample records (pins it until the
    /// session is finished).
    has_samples: bool,
    /// Running footer statistics (event range, counts); written to disk
    /// as the segment's [`SegmentFooter`] when it is sealed.
    stats: SegmentFooter,
}

impl SegmentInfo {
    fn note_record(&mut self, rec: &Record, frame_len: u64) {
        self.bytes += frame_len;
        self.records += 1;
        self.stats.note(rec);
        if matches!(rec, Record::Samples { .. }) {
            self.has_samples = true;
        }
    }
}

/// Point-in-time size accounting for telemetry and the inspect verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Segment files on disk (sealed + active).
    pub segments: usize,
    /// Total journal bytes on disk.
    pub bytes: u64,
    /// Index the next appended record will get.
    pub next_index: u64,
}

/// The result of opening (and recovering) a journal directory.
#[derive(Debug)]
pub struct Recovered {
    /// The journal, positioned to append after the recovered prefix.
    pub journal: Journal,
    /// What recovery found and repaired.
    pub report: RecoveryReport,
    /// Every recovered record with its journal index, in order.
    pub records: Vec<(u64, Record)>,
}

/// A segmented append-only record journal in one directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    cfg: JournalConfig,
    sealed: Vec<SegmentInfo>,
    active: SegmentInfo,
    writer: fs::File,
    next_index: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir` with default
    /// knobs, recovering the longest valid prefix. See the module docs
    /// for the recovery rules.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (directory creation, reads, truncation);
    /// corruption is repaired, not reported as an error.
    pub fn open(dir: &Path) -> io::Result<Recovered> {
        Self::open_with(dir, JournalConfig::default())
    }

    /// [`Journal::open`] with explicit [`JournalConfig`] knobs.
    ///
    /// # Errors
    ///
    /// As [`Journal::open`].
    pub fn open_with(dir: &Path, cfg: JournalConfig) -> io::Result<Recovered> {
        fs::create_dir_all(dir)?;
        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            // Only regular files can be segments; journal directories
            // legitimately hold other droppings (flight-recorder dumps,
            // editor temp files, subdirectories) that must not be
            // mistaken for — or deleted as — corrupt segments.
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(base) = parse_segment_file_name(name) {
                names.push((base, entry.path()));
            }
        }
        names.sort_by_key(|&(base, _)| base);

        let mut report = RecoveryReport::default();
        let mut records: Vec<(u64, Record)> = Vec::new();
        let mut segments: Vec<SegmentInfo> = Vec::new();
        let mut next_index = 0u64;
        let mut last_base: Option<u64> = None;
        let mut broken = false;
        for (file_base, path) in names {
            if broken {
                // Everything past the first anomaly is outside the
                // valid prefix.
                fs::remove_file(&path)?;
                report.dropped_segments += 1;
                continue;
            }
            if last_base == Some(file_base) {
                // Two file names parsing to the same base (`seg-1.emj`
                // beside its zero-padded twin): keeping both would
                // replay the same index range twice, so this is named
                // corruption, not a quiet mis-ordering.
                fs::remove_file(&path)?;
                report.dropped_segments += 1;
                report.overlapping_segments += 1;
                broken = true;
                continue;
            }
            last_base = Some(file_base);
            let scan = scan_segment(&path)?;
            let valid = scan.as_ref().is_some_and(|s| s.base_index == file_base);
            let Some(scan) = scan.filter(|_| valid) else {
                fs::remove_file(&path)?;
                report.dropped_segments += 1;
                broken = true;
                continue;
            };
            if scan.base_index < next_index {
                // The header claims an index range an earlier segment
                // already covers — overlapping coverage is the same
                // named corruption as a duplicate base.
                fs::remove_file(&path)?;
                report.dropped_segments += 1;
                report.overlapping_segments += 1;
                broken = true;
                continue;
            }
            if scan.torn {
                let on_disk = fs::metadata(&path)?.len();
                report.truncated_bytes += on_disk.saturating_sub(scan.valid_len);
                let f = fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                f.sync_data()?;
                report.truncations += 1;
                broken = true;
            }
            let mut info = SegmentInfo {
                path: path.clone(),
                bytes: scan.valid_len,
                records: 0,
                has_samples: false,
                stats: SegmentFooter::empty(),
            };
            for (_, rec) in &scan.records {
                // Re-derive the per-record accounting without re-sizing
                // the actual frames: bytes already counted via valid_len.
                info.records += 1;
                info.stats.note(rec);
                if matches!(rec, Record::Samples { .. }) {
                    info.has_samples = true;
                }
            }
            next_index = scan.base_index + scan.records.len() as u64;
            report.records += scan.records.len() as u64;
            records.extend(scan.records);
            segments.push(info);
        }

        let active = match segments.pop() {
            Some(info) => info,
            None => {
                // Fresh (or fully discarded) journal: start a segment.
                let info = new_segment(dir, next_index)?;
                obs::counter_add!("store.segments_created", 1);
                info
            }
        };
        let writer = fs::OpenOptions::new().append(true).open(&active.path)?;
        report.segments = segments.len() + 1;
        if report.truncations > 0 {
            obs::counter_add!(
                "store.recovered_truncations",
                report.truncations as u64
            );
        }
        let journal = Journal {
            dir: dir.to_path_buf(),
            cfg,
            sealed: segments,
            active,
            writer,
            next_index,
        };
        Ok(Recovered {
            journal,
            report,
            records,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index the next appended record will get.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Size accounting across all segments.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            segments: self.sealed.len() + 1,
            bytes: self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.bytes,
            next_index: self.next_index,
        }
    }

    /// Whether the active segment has outgrown the roll target. Callers
    /// that write checkpoint records should check this *before* an
    /// append, [`Journal::roll`], write their checkpoint, then append.
    pub fn would_roll(&self) -> bool {
        self.active.records > 0 && self.active.bytes >= self.cfg.segment_bytes
    }

    /// Seals the active segment and starts a new one.
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn roll(&mut self) -> io::Result<()> {
        if self.cfg.write_footers && self.active.records > 0 {
            // Seal the segment with its statistics footer so range
            // queries can prune it with one O(1) tail read. The footer
            // is an ordinary CRC-framed record: legacy readers scan
            // straight over it, and SegmentFooter::note ignores footer
            // records, so its statistics describe only the data frames.
            let footer = Record::Footer(self.active.stats);
            self.append(&footer)?;
        }
        self.writer.flush()?;
        let info = new_segment(&self.dir, self.next_index)?;
        obs::counter_add!("store.segments_created", 1);
        self.writer = fs::OpenOptions::new().append(true).open(&info.path)?;
        let sealed = std::mem::replace(&mut self.active, info);
        self.sealed.push(sealed);
        Ok(())
    }

    /// Appends one record, returning its journal index.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the record is not counted on failure
    /// (the torn bytes, if any, are repaired by the next open).
    pub fn append(&mut self, rec: &Record) -> io::Result<u64> {
        let frame = encode_record_frame(rec);
        self.writer.write_all(&frame)?;
        if self.cfg.sync_on_append {
            self.writer.sync_data()?;
        }
        let index = self.next_index;
        self.next_index += 1;
        self.active.note_record(rec, frame.len() as u64);
        obs::counter_add!("store.appends", 1);
        obs::counter_add!("store.bytes_written", frame.len() as u64);
        Ok(index)
    }

    /// Flushes and fsyncs the active segment.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync failures.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.sync_data()
    }

    /// Deletes sealed segments from the front while every event they
    /// hold is at or below `acked_event_seq` — and, unless
    /// `samples_released`, while they hold no sample records (samples
    /// pin their segment until the session's detector is finalized,
    /// because recovery rebuilds the detector from them). Returns how
    /// many segments were deleted.
    ///
    /// # Errors
    ///
    /// Propagates file deletion failures.
    pub fn compact(&mut self, acked_event_seq: u64, samples_released: bool) -> io::Result<usize> {
        let mut deletable = 0;
        for info in &self.sealed {
            let events_done = info.stats.max_event_seq <= acked_event_seq;
            let samples_ok = samples_released || !info.has_samples;
            if events_done && samples_ok {
                deletable += 1;
            } else {
                break;
            }
        }
        for info in self.sealed.drain(..deletable) {
            fs::remove_file(&info.path)?;
        }
        if deletable > 0 {
            obs::counter_add!("store.compactions", deletable as u64);
        }
        Ok(deletable)
    }
}

fn new_segment(dir: &Path, base_index: u64) -> io::Result<SegmentInfo> {
    let path = dir.join(segment_file_name(base_index));
    let mut f = fs::File::create(&path)?;
    f.write_all(&encode_segment_header(base_index))?;
    f.sync_data()?;
    Ok(SegmentInfo {
        path,
        bytes: SEGMENT_HEADER_LEN as u64,
        records: 0,
        has_samples: false,
        stats: SegmentFooter::empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emprof-store-journal-{}-{}-{tag}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cursor(n: u64) -> Record {
        Record::Cursor { acked_events: n }
    }

    fn events(first_seq: u64, n: usize) -> Record {
        use emprof_core::{Confidence, StallEvent, StallKind};
        Record::Events {
            first_seq,
            events: (0..n)
                .map(|i| StallEvent {
                    start_sample: i * 100,
                    end_sample: i * 100 + 10,
                    duration_cycles: 250.0,
                    kind: StallKind::Normal,
                    confidence: Confidence::High,
                })
                .collect(),
        }
    }

    #[test]
    fn append_close_reopen_replays_identically() {
        let dir = tmp_dir("reopen");
        let mut j = Journal::open(&dir).unwrap().journal;
        let recs = vec![cursor(1), events(1, 3), cursor(3)];
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(j.append(r).unwrap(), i as u64);
        }
        drop(j);
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.truncations, 0);
        assert_eq!(rec.report.records, 3);
        let got: Vec<Record> = rec.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, recs);
        assert_eq!(rec.journal.next_index(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolls_at_segment_target_and_replays_across_segments() {
        let dir = tmp_dir("roll");
        let cfg = JournalConfig {
            segment_bytes: 256,
            sync_on_append: false,
            // Pinning the exact record sequence: no interleaved footers.
            write_footers: false,
        };
        let mut j = Journal::open_with(&dir, cfg.clone()).unwrap().journal;
        for i in 0..50 {
            if j.would_roll() {
                j.roll().unwrap();
            }
            j.append(&cursor(i)).unwrap();
        }
        assert!(j.stats().segments > 1, "segment target must force rolls");
        drop(j);
        let rec = Journal::open_with(&dir, cfg).unwrap();
        assert_eq!(rec.report.records, 50);
        for (i, (idx, r)) in rec.records.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*r, cursor(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_append_resumes() {
        let dir = tmp_dir("torn");
        let mut j = Journal::open(&dir).unwrap().journal;
        for i in 0..5 {
            j.append(&cursor(i)).unwrap();
        }
        let path = j.active.path.clone();
        drop(j);
        // Tear the last record.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.truncations, 1);
        assert_eq!(rec.report.records, 4);
        assert_eq!(rec.journal.next_index(), 4);
        let mut j = rec.journal;
        j.append(&cursor(99)).unwrap();
        drop(j);
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.records, 5);
        assert_eq!(rec.records.last().unwrap().1, cursor(99));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_after_a_torn_one_are_dropped() {
        let dir = tmp_dir("cascade");
        let cfg = JournalConfig {
            segment_bytes: 128,
            sync_on_append: false,
            write_footers: false,
        };
        let mut j = Journal::open_with(&dir, cfg.clone()).unwrap().journal;
        for i in 0..40 {
            if j.would_roll() {
                j.roll().unwrap();
            }
            j.append(&cursor(i)).unwrap();
        }
        assert!(j.stats().segments >= 3);
        let first_sealed = j.sealed[0].clone();
        drop(j);
        // Corrupt a record in the FIRST segment: every later segment is
        // outside the valid prefix and must go.
        let mut bytes = fs::read(&first_sealed.path).unwrap();
        let off = SEGMENT_HEADER_LEN + 12;
        bytes[off] ^= 0xff;
        fs::write(&first_sealed.path, &bytes).unwrap();
        let rec = Journal::open_with(&dir, cfg).unwrap();
        assert!(rec.report.dropped_segments >= 2);
        assert!(rec.report.records < 40);
        // The recovered prefix is still a clean 0..n run.
        for (i, (idx, r)) in rec.records.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*r, cursor(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_acked_prefix_only() {
        let dir = tmp_dir("compact");
        let cfg = JournalConfig {
            segment_bytes: 200,
            sync_on_append: false,
            ..Default::default()
        };
        let mut j = Journal::open_with(&dir, cfg.clone()).unwrap().journal;
        let mut seq = 1u64;
        for _ in 0..12 {
            if j.would_roll() {
                j.roll().unwrap();
            }
            j.append(&events(seq, 2)).unwrap();
            seq += 2;
        }
        let before = j.stats();
        assert!(before.segments > 2);
        // Nothing acked: nothing to delete.
        assert_eq!(j.compact(0, true).unwrap(), 0);
        // Ack everything: every sealed segment goes, the active stays.
        let deleted = j.compact(seq, true).unwrap();
        assert!(deleted > 0);
        let after = j.stats();
        assert_eq!(after.segments, 1);
        assert!(after.bytes < before.bytes);
        // The journal still appends and reopens cleanly.
        j.append(&events(seq, 1)).unwrap();
        drop(j);
        let rec = Journal::open_with(&dir, cfg).unwrap();
        assert_eq!(rec.report.truncations, 0);
        assert!(!rec.records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roll_writes_footer_and_recovery_replays_through_it() {
        use crate::segment::read_segment_footer;
        let dir = tmp_dir("footer");
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&events(1, 3)).unwrap();
        j.append(&cursor(3)).unwrap();
        let sealed_path = j.active.path.clone();
        j.roll().unwrap();
        let footer = read_segment_footer(&sealed_path)
            .unwrap()
            .expect("sealed segment carries a footer");
        assert_eq!(footer.record_count, 2);
        assert_eq!(footer.event_count, 3);
        assert_eq!((footer.min_event_seq, footer.max_event_seq), (1, 3));
        assert_eq!((footer.min_event_start, footer.max_event_end), (0, 210));
        // The active segment has no footer yet.
        assert_eq!(read_segment_footer(&j.active.path).unwrap(), None);
        j.append(&cursor(4)).unwrap();
        drop(j);
        // Recovery replays through the footer record; the fold layers
        // above skip it, but indexes stay contiguous.
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.truncations, 0);
        assert_eq!(rec.report.records, 4);
        assert!(matches!(rec.records[2].1, Record::Footer(_)));
        assert_eq!(rec.records[3], (3, cursor(4)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_segment_files_are_left_alone() {
        let dir = tmp_dir("droppings");
        let mut j = Journal::open(&dir).unwrap().journal;
        j.append(&cursor(1)).unwrap();
        drop(j);
        // Flight dumps and editor droppings share the directory.
        fs::write(dir.join("flight-session-7.json"), b"{}").unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        fs::create_dir_all(dir.join(segment_file_name(999))).unwrap();
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.dropped_segments, 0);
        assert_eq!(rec.report.records, 1);
        assert!(dir.join("flight-session-7.json").exists());
        assert!(dir.join("notes.txt").exists());
        assert!(dir.join(segment_file_name(999)).is_dir());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_and_overlapping_bases_are_named_corruption() {
        let dir = tmp_dir("dupes");
        let mut j = Journal::open(&dir).unwrap().journal;
        for i in 0..3 {
            j.append(&cursor(i)).unwrap();
        }
        drop(j);
        // A non-zero-padded twin of the first segment parses to the
        // same base index.
        let canonical = dir.join(segment_file_name(0));
        fs::copy(&canonical, dir.join("seg-0.emj")).unwrap();
        let rec = Journal::open(&dir).unwrap();
        assert_eq!(rec.report.overlapping_segments, 1);
        assert_eq!(rec.report.records, 3, "one copy of the range survives");
        drop(rec);

        // A later file whose header overlaps covered indexes.
        let dir2 = tmp_dir("overlap");
        let mut j = Journal::open(&dir2).unwrap().journal;
        for i in 0..3 {
            j.append(&cursor(i)).unwrap();
        }
        drop(j);
        // Segment claiming base 1 while indexes 0..3 are already
        // covered by seg-0.
        let twin = dir2.join(segment_file_name(1));
        let mut f = fs::File::create(&twin).unwrap();
        use std::io::Write as _;
        f.write_all(&encode_segment_header(1)).unwrap();
        f.write_all(&encode_record_frame(&cursor(77))).unwrap();
        drop(f);
        let rec = Journal::open(&dir2).unwrap();
        assert_eq!(rec.report.overlapping_segments, 1);
        assert_eq!(rec.report.records, 3);
        assert!(!twin.exists(), "overlapping segment is quarantined out");
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn samples_pin_their_segment_until_released() {
        let dir = tmp_dir("pin");
        let cfg = JournalConfig {
            segment_bytes: 100,
            sync_on_append: false,
            ..Default::default()
        };
        let mut j = Journal::open_with(&dir, cfg).unwrap().journal;
        j.append(&Record::Samples {
            seq: 1,
            samples: vec![5.0; 16],
        })
        .unwrap();
        j.roll().unwrap();
        j.append(&cursor(1)).unwrap();
        assert_eq!(j.compact(u64::MAX, false).unwrap(), 0, "samples pin");
        assert_eq!(j.compact(u64::MAX, true).unwrap(), 1, "released after finish");
        fs::remove_dir_all(&dir).unwrap();
    }
}
