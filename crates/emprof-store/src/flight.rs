//! Flight-recorder dump persistence.
//!
//! `emprof-serve` dumps a session's flight-recorder ring (a JSON
//! document produced by `emprof_obs::FlightRecorder::dump_json`) when
//! the session faults or its transport is lost. The dump lands next to
//! the session journals so a post-mortem finds everything about a
//! session in one place: `<journal_root>/flight-session-<id>.json`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes one flight-recorder dump under `dir`, creating the directory
/// if needed. The write is atomic (temp file + rename), so a crash
/// mid-dump never leaves a torn JSON document; a newer dump for the
/// same session replaces the older one.
///
/// # Errors
///
/// Propagates filesystem failures (the caller treats them as
/// best-effort: a sick disk must not take down live profiling).
pub fn write_flight_dump(dir: &Path, session_id: u64, json: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("flight-session-{session_id}.json"));
    let tmp = dir.join(format!(".flight-session-{session_id}.json.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Removes a session's persisted flight dump (and any torn temp file),
/// if present. Called when a session retires cleanly: a dump records a
/// fault the session has since recovered from, and a fleet whose
/// sessions all finish cleanly must leave no disk residue behind.
pub fn remove_flight_dump(dir: &Path, session_id: u64) {
    let _ = fs::remove_file(dir.join(format!("flight-session-{session_id}.json")));
    let _ = fs::remove_file(dir.join(format!(".flight-session-{session_id}.json.tmp")));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_written_and_replaced_atomically() {
        let dir = std::env::temp_dir().join(format!(
            "emprof-flight-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);

        let path = write_flight_dump(&dir, 7, "{\"type\":\"flight\",\"v\":1}").unwrap();
        assert_eq!(path.file_name().unwrap(), "flight-session-7.json");
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "{\"type\":\"flight\",\"v\":1}\n"
        );

        // A second dump for the same session replaces the first.
        write_flight_dump(&dir, 7, "{\"type\":\"flight\",\"v\":2}").unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "{\"type\":\"flight\",\"v\":2}\n"
        );
        // No temp litter survives.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["flight-session-7.json"]);

        let _ = fs::remove_dir_all(&dir);
    }
}
