//! Simulated `perf`-style hardware-counter profiling baseline.
//!
//! Section V of the paper motivates EMPROF by showing how unreliable
//! counter-based miss profiling is on these devices: *"when using perf on
//! Olimex A13-OLinuXino-MICRO to count LLC misses for a small application
//! that was designed to generate only 1024 cache misses, the number of
//! misses reported by perf had an average of 32,768 and a standard
//! deviation of 14,543."*
//!
//! This crate models the mechanisms behind that number so the comparison
//! can be regenerated:
//!
//! * the counter counts **all** misses on the core — kernel activity,
//!   daemons, interrupt handlers, and the profiler's own working set —
//!   not just the application's,
//! * the background rate is bursty (page cache churn, timer ticks), so
//!   repeated measurements scatter widely,
//! * sampling attribution (interrupt every `T` events) attributes misses
//!   to code regions with statistical error and itself perturbs the
//!   system ("observer effect"), which EMPROF avoids entirely.
//!
//! # Example
//!
//! ```
//! use emprof_baseline::PerfModel;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = PerfModel::olimex_observed();
//! let mut rng = StdRng::seed_from_u64(1);
//! let m = model.measure(1024, &mut rng);
//! // The reported count dwarfs the 1024 real misses.
//! assert!(m.reported_misses > 4 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Parameters of the simulated counter-based profiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Mean background (non-application) misses folded into one
    /// measurement window.
    pub background_mean: f64,
    /// Standard deviation of the background across runs (bursty system
    /// activity).
    pub background_std: f64,
    /// Sampling period: one profiling interrupt per `sampling_period`
    /// counted events (perf's `-c` / period).
    pub sampling_period: u64,
    /// Extra misses caused *per profiling interrupt* by the profiler
    /// itself (interrupt handler + sample buffer): the observer effect.
    pub observer_misses_per_sample: f64,
}

impl PerfModel {
    /// Calibrated to the paper's reported Olimex measurement: a
    /// 1024-miss application reads back as 32,768 ± 14,543.
    pub fn olimex_observed() -> Self {
        PerfModel {
            background_mean: 31_300.0,
            background_std: 14_500.0,
            sampling_period: 1000,
            observer_misses_per_sample: 4.0,
        }
    }

    /// A (hypothetically) quiet system for contrast in the benches.
    pub fn quiet_system() -> Self {
        PerfModel {
            background_mean: 500.0,
            background_std: 200.0,
            sampling_period: 1000,
            observer_misses_per_sample: 4.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("background_mean", self.background_mean),
            ("background_std", self.background_std),
            ("observer_misses_per_sample", self.observer_misses_per_sample),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.sampling_period == 0 {
            return Err("sampling period must be nonzero".into());
        }
        Ok(())
    }

    /// Simulates one profiled run of an application with `app_misses`
    /// true misses.
    pub fn measure<R: Rng + ?Sized>(&self, app_misses: u64, rng: &mut R) -> PerfMeasurement {
        let background = gaussian(rng, self.background_mean, self.background_std).max(0.0);
        // Counting proceeds while interrupts add their own misses, which
        // are themselves counted: solve n = base + o * n / period.
        let base = app_misses as f64 + background;
        let per_event_overhead = self.observer_misses_per_sample / self.sampling_period as f64;
        let total = if per_event_overhead < 1.0 {
            base / (1.0 - per_event_overhead)
        } else {
            base // degenerate configuration: overhead saturates
        };
        let reported = total.round() as u64;
        PerfMeasurement {
            reported_misses: reported,
            interrupts: reported / self.sampling_period,
            observer_misses: (total - base).round() as u64,
        }
    }

    /// Runs `n` measurements and summarizes them — the paper's
    /// mean ± standard deviation.
    pub fn measure_many<R: Rng + ?Sized>(
        &self,
        app_misses: u64,
        n: usize,
        rng: &mut R,
    ) -> PerfSummary {
        assert!(n > 0, "at least one measurement required");
        let samples: Vec<f64> = (0..n)
            .map(|_| self.measure(app_misses, rng).reported_misses as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        PerfSummary {
            mean,
            std_dev: var.sqrt(),
            runs: n,
        }
    }

    /// Simulates sampling-based *attribution*: given the true per-region
    /// miss counts, returns the per-region counts a period-`T` sampling
    /// profiler would attribute. Each region's samples are binomial in
    /// its share of events; the returned estimate is `samples * T`, which
    /// is exact only in expectation — the error EMPROF's exact per-event
    /// accounting avoids.
    pub fn attribute_by_sampling<R: Rng + ?Sized>(
        &self,
        region_misses: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        region_misses
            .iter()
            .map(|&m| {
                let expected_samples = m as f64 / self.sampling_period as f64;
                // Poisson-approximated binomial sampling.
                let samples = poisson(rng, expected_samples);
                samples * self.sampling_period
            })
            .collect()
    }
}

/// One simulated profiled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfMeasurement {
    /// Total LLC misses the profiler reports.
    pub reported_misses: u64,
    /// Profiling interrupts taken.
    pub interrupts: u64,
    /// Misses caused by the profiling activity itself.
    pub observer_misses: u64,
}

/// Mean ± standard deviation across repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSummary {
    /// Mean reported miss count.
    pub mean: f64,
    /// Standard deviation of reported counts.
    pub std_dev: f64,
    /// Number of runs.
    pub runs: usize,
}

/// Box–Muller Gaussian (local to keep the crate's deps minimal).
fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Knuth Poisson sampler for small means, normal approximation for large.
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        return gaussian(rng, lambda, lambda.sqrt()).max(0.0).round() as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reproduces_paper_statistic_shape() {
        // Paper: 1024 true misses -> reported 32,768 +/- 14,543.
        let model = PerfModel::olimex_observed();
        let mut rng = StdRng::seed_from_u64(2024);
        let summary = model.measure_many(1024, 2000, &mut rng);
        assert!(
            (summary.mean - 32_768.0).abs() < 3_000.0,
            "mean {}",
            summary.mean
        );
        assert!(
            (summary.std_dev - 14_543.0).abs() < 3_000.0,
            "std {}",
            summary.std_dev
        );
    }

    #[test]
    fn overcount_scales_with_background_not_app() {
        let model = PerfModel::olimex_observed();
        let mut rng = StdRng::seed_from_u64(5);
        let small = model.measure_many(1024, 500, &mut rng).mean;
        let large = model.measure_many(102_400, 500, &mut rng).mean;
        // The absolute background is the same; relative error shrinks.
        let small_err = small / 1024.0;
        let large_err = large / 102_400.0;
        assert!(small_err > 10.0);
        assert!(large_err < 2.0);
    }

    #[test]
    fn quiet_system_is_much_closer() {
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = PerfModel::olimex_observed()
            .measure_many(1024, 200, &mut rng)
            .mean;
        let quiet = PerfModel::quiet_system()
            .measure_many(1024, 200, &mut rng)
            .mean;
        assert!(quiet < noisy / 5.0);
    }

    #[test]
    fn observer_effect_counted() {
        let model = PerfModel {
            background_mean: 0.0,
            background_std: 0.0,
            sampling_period: 100,
            observer_misses_per_sample: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let m = model.measure(10_000, &mut rng);
        // 10 observer misses per 100 events = ~11.1% inflation.
        assert!(m.reported_misses > 11_000 && m.reported_misses < 11_300);
        assert!(m.observer_misses > 1000);
        assert_eq!(m.interrupts, m.reported_misses / 100);
    }

    #[test]
    fn sampling_attribution_is_noisy_for_small_regions() {
        let model = PerfModel::olimex_observed(); // period 1000
        let mut rng = StdRng::seed_from_u64(3);
        let truth = vec![300u64, 5_000, 900_000];
        let mut rel_err_small = 0.0;
        let mut rel_err_large = 0.0;
        let n = 300;
        for _ in 0..n {
            let est = model.attribute_by_sampling(&truth, &mut rng);
            rel_err_small += (est[0] as f64 - 300.0).abs() / 300.0;
            rel_err_large += (est[2] as f64 - 900_000.0).abs() / 900_000.0;
        }
        rel_err_small /= n as f64;
        rel_err_large /= n as f64;
        // A region with fewer misses than the sampling period is barely
        // resolvable; a large region is fine.
        assert!(rel_err_small > 0.5, "small-region error {rel_err_small}");
        assert!(rel_err_large < 0.1, "large-region error {rel_err_large}");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = PerfModel::olimex_observed();
        let a = model.measure(1024, &mut StdRng::seed_from_u64(9));
        let b = model.measure(1024, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        assert!(PerfModel::olimex_observed().validate().is_ok());
        let mut m = PerfModel::olimex_observed();
        m.sampling_period = 0;
        assert!(m.validate().is_err());
        let mut m = PerfModel::olimex_observed();
        m.background_mean = -1.0;
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn zero_runs_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        PerfModel::olimex_observed().measure_many(1, 0, &mut rng);
    }
}
