//! Workloads for the EMPROF reproduction.
//!
//! Three families, matching the paper's evaluation:
//!
//! * [`microbench`] — the engineered TM/CM microbenchmark of Fig. 6,
//!   built as a real mini-ISA program (its access pattern is computed by
//!   an in-program pseudo-random generator, exactly as the paper's C code
//!   calls `rand()`), bracketed by the identifier "blank loops".
//! * [`array_walk`] — the small load-loop application of Section III-B
//!   whose array size selects which cache level misses (Figs. 2 and 4).
//! * [`spec`] — ten synthetic workload generators standing in for the
//!   SPEC CPU2000 integer benchmarks (Tables III/IV, Figs. 11/12/14),
//!   plus the [`boot`] sequence of Fig. 13. SPEC itself cannot run on the
//!   mini-ISA, so each generator reproduces the *memory behaviour class*
//!   of its namesake: working-set sizes straddling the devices' LLC
//!   capacities, cold-excursion rates, streaming vs pointer-chasing
//!   access, code footprint, and loop structure (the knobs the paper's
//!   cross-device analysis turns on).
//!
//! All workloads are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array_walk;
pub mod boot;
pub mod iot;
pub mod microbench;
pub mod spec;

/// Marker ID: start of the microbenchmark's miss-generating section.
pub const MARKER_MISS_START: u32 = 10;
/// Marker ID: end of the microbenchmark's miss-generating section.
pub const MARKER_MISS_END: u32 = 11;
/// Marker IDs for workload phases/regions are `MARKER_REGION_BASE + index`.
pub const MARKER_REGION_BASE: u32 = 100;
