//! IoT application kernels, as real mini-ISA programs.
//!
//! The paper motivates EMPROF with embedded, hand-held and IoT devices:
//! real-time code that changes behaviour under profiling overhead and
//! hardware too small to host a profiler. These kernels model the
//! memory-behaviour classes such firmware actually contains, so the
//! examples and benches can exercise EMPROF on IoT-shaped work rather
//! than only on SPEC lookalikes:
//!
//! * [`sensor_filter`] — a fixed-point FIR over a small circular buffer:
//!   cache-resident, nearly stall-free (the healthy baseline),
//! * [`block_transfer`] — buffer-to-buffer copy of fresh data (a radio or
//!   camera DMA consumer): streaming misses a prefetcher can hide,
//! * [`table_crypto`] — a table-driven cipher round over an S-box sized
//!   against the LLC: random lookups that defeat prefetching (the paper's
//!   microbenchmark pattern, occurring in real firmware).

use emprof_sim::isa::{Inst, Program, ProgramError, Reg};

/// Marker bracketing the kernels' measured section.
pub const MARKER_KERNEL_START: u32 = 20;
/// Marker ending the kernels' measured section.
pub const MARKER_KERNEL_END: u32 = 21;

/// A fixed-point FIR filter over a circular sample buffer.
///
/// `taps` filter taps over a `buffer_len`-sample window, `samples`
/// outputs produced. Everything fits the L1, so a profile of this kernel
/// should be nearly stall-free — the control case.
///
/// # Errors
///
/// Propagates [`ProgramError`] from assembly.
pub fn sensor_filter(taps: i64, buffer_len: i64, samples: i64) -> Result<Program, ProgramError> {
    let mut b = Program::builder();
    let buf = Reg(1); // sample buffer base
    let coeff = Reg(2); // coefficient table base
    let acc = Reg(3);
    let i = Reg(4);
    let j = Reg(5);
    let addr = Reg(6);
    let v = Reg(7);
    let c = Reg(8);
    let nsamp = Reg(9);
    let idx = Reg(10);
    let mask = Reg(11);

    b.push(Inst::Li(buf, 0x10_0000));
    b.push(Inst::Li(coeff, 0x11_0000));
    b.push(Inst::Li(mask, buffer_len - 1));
    b.push(Inst::Li(nsamp, samples));
    b.push(Inst::Marker(MARKER_KERNEL_START));
    let outer = b.label();
    b.push(Inst::Li(acc, 0));
    b.push(Inst::Li(j, 0));
    b.push(Inst::Li(i, taps));
    let inner = b.label();
    // v = buf[(nsamp + j) & mask]; c = coeff[j]; acc += v * c
    b.push(Inst::Add(idx, nsamp, j));
    b.push(Inst::And(idx, idx, mask));
    b.push(Inst::Slli(addr, idx, 3));
    b.push(Inst::Add(addr, addr, buf));
    b.push(Inst::Ld(v, addr, 0));
    b.push(Inst::Slli(addr, j, 3));
    b.push(Inst::Add(addr, addr, coeff));
    b.push(Inst::Ld(c, addr, 0));
    b.push(Inst::Mul(v, v, c));
    b.push(Inst::Add(acc, acc, v));
    b.push(Inst::Addi(j, j, 1));
    b.push(Inst::Addi(i, i, -1));
    b.push(Inst::Bne(i, Reg::ZERO, inner));
    // Store the output sample back into the buffer.
    b.push(Inst::And(idx, nsamp, mask));
    b.push(Inst::Slli(addr, idx, 3));
    b.push(Inst::Add(addr, addr, buf));
    b.push(Inst::St(acc, addr, 0));
    b.push(Inst::Addi(nsamp, nsamp, -1));
    b.push(Inst::Bne(nsamp, Reg::ZERO, outer));
    b.push(Inst::Marker(MARKER_KERNEL_END));
    b.push(Inst::Halt);
    b.build()
}

/// A block transfer: copy `blocks` fresh 4 KiB buffers (as a radio/camera
/// pipeline does), reading cold data and writing a reused destination.
///
/// # Errors
///
/// Propagates [`ProgramError`] from assembly.
pub fn block_transfer(blocks: i64) -> Result<Program, ProgramError> {
    let mut b = Program::builder();
    let src = Reg(1);
    let dst = Reg(2);
    let i = Reg(3);
    let blk = Reg(4);
    let v = Reg(5);
    let saddr = Reg(6);
    let daddr = Reg(7);

    b.push(Inst::Li(src, 0x4000_0000)); // cold region: fresh data
    b.push(Inst::Li(dst, 0x20_0000)); // warm destination
    b.push(Inst::Li(blk, blocks));
    b.push(Inst::Add(saddr, src, Reg::ZERO));
    b.push(Inst::Add(daddr, dst, Reg::ZERO));
    b.push(Inst::Addi(src, src, 4096));
    b.push(Inst::Marker(MARKER_KERNEL_START));
    let per_block = b.label();
    b.push(Inst::Li(i, 4096 / 8));
    let word = b.label();
    b.push(Inst::Ld(v, saddr, 0));
    b.push(Inst::St(v, daddr, 0));
    b.push(Inst::Addi(saddr, saddr, 8));
    b.push(Inst::Addi(daddr, daddr, 8));
    b.push(Inst::Addi(i, i, -1));
    b.push(Inst::Bne(i, Reg::ZERO, word));
    // Next block: fresh source page, same destination buffer.
    b.push(Inst::Add(saddr, src, Reg::ZERO));
    b.push(Inst::Add(daddr, dst, Reg::ZERO));
    b.push(Inst::Addi(src, src, 4096));
    b.push(Inst::Addi(blk, blk, -1));
    b.push(Inst::Bne(blk, Reg::ZERO, per_block));
    b.push(Inst::Marker(MARKER_KERNEL_END));
    b.push(Inst::Halt);
    b.build()
}

/// A table-driven cipher round: `lookups` dependent S-box probes into a
/// `table_bytes` table (power of two), with `work_iters` iterations of
/// mixing compute per lookup (the rest of the cipher round). With the
/// table sized beyond the LLC, every probe is a random miss — and each
/// lookup's address depends on the previous lookup's value, the
/// pointer-chase pattern that defeats every prefetcher.
///
/// # Errors
///
/// Propagates [`ProgramError`] from assembly.
///
/// # Panics
///
/// Panics unless `table_bytes` is a power of two and `work_iters > 0`.
pub fn table_crypto(
    lookups: i64,
    table_bytes: u64,
    work_iters: i64,
) -> Result<Program, ProgramError> {
    assert!(
        table_bytes.is_power_of_two(),
        "table size must be a power of two, got {table_bytes}"
    );
    assert!(work_iters > 0, "work_iters must be positive");
    let mut b = Program::builder();
    let table = Reg(1);
    let state = Reg(2);
    let lcg_mul = Reg(3);
    let n = Reg(4);
    let addr = Reg(5);
    let v = Reg(6);
    let mask = Reg(7);

    b.push(Inst::Li(table, 0x30_0000));
    b.push(Inst::Li(state, 0x0BAD_CAFE));
    b.push(Inst::Li(lcg_mul, 6364136223846793005u64 as i64));
    b.push(Inst::Li(mask, (table_bytes - 1) as i64 & !63));
    b.push(Inst::Li(n, lookups));
    b.push(Inst::Marker(MARKER_KERNEL_START));
    let round = b.label();
    // state = state * M + 1; mix in the loaded value so the chain depends
    // on memory (true pointer chasing).
    b.push(Inst::Mul(state, state, lcg_mul));
    b.push(Inst::Addi(state, state, 1));
    b.push(Inst::Srli(addr, state, 17));
    b.push(Inst::And(addr, addr, mask));
    b.push(Inst::Add(addr, addr, table));
    b.push(Inst::Ld(v, addr, 0));
    b.push(Inst::Xor(state, state, v));
    // The rest of the cipher round: dependent mixing compute, which also
    // separates consecutive lookup stalls in the captured signal.
    let w = Reg(8);
    b.push(Inst::Li(w, work_iters));
    let mix = b.label();
    b.push(Inst::Addi(w, w, -1));
    b.push(Inst::Bne(w, Reg::ZERO, mix));
    b.push(Inst::Addi(n, n, -1));
    b.push(Inst::Bne(n, Reg::ZERO, round));
    b.push(Inst::Marker(MARKER_KERNEL_END));
    b.push(Inst::Halt);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_sim::{DeviceModel, Interpreter, Simulator};

    fn run(program: Program) -> emprof_sim::SimResult {
        let mut device = DeviceModel::olimex();
        device.dram.refresh = emprof_dram::RefreshConfig::disabled();
        Simulator::new(device)
            .with_max_cycles(200_000_000)
            .run(Interpreter::new(&program))
    }

    fn kernel_misses(r: &emprof_sim::SimResult) -> usize {
        let w = r
            .ground_truth
            .marker_window(MARKER_KERNEL_START, MARKER_KERNEL_END)
            .expect("kernel markers present");
        r.ground_truth
            .misses_in_window(w)
            .filter(|m| !m.is_instr)
            .count()
    }

    #[test]
    fn sensor_filter_is_cache_resident() {
        let r = run(sensor_filter(16, 64, 2000).unwrap());
        // 16 taps * 2000 samples = 32k loads; only the cold touches miss.
        assert!(
            kernel_misses(&r) < 40,
            "filter kernel missed {} times",
            kernel_misses(&r)
        );
        assert!(r.stats.instructions > 30_000 * 2);
    }

    #[test]
    fn block_transfer_misses_once_per_source_line() {
        let blocks = 32;
        let r = run(block_transfer(blocks).unwrap());
        let lines = blocks as usize * 4096 / 64;
        let misses = kernel_misses(&r);
        // Source lines are fresh (one miss each); the 4 KiB destination
        // stays resident.
        assert!(
            misses >= lines && misses < lines + lines / 4,
            "copy kernel: {misses} misses for {lines} fresh lines"
        );
    }

    #[test]
    fn table_crypto_misses_when_table_exceeds_llc() {
        let r = run(table_crypto(512, 8 << 20, 40).unwrap());
        let misses = kernel_misses(&r);
        assert!(
            misses > 480,
            "big-table crypto should miss on ~every lookup, got {misses}"
        );
    }

    #[test]
    fn table_crypto_hits_when_table_fits_l1() {
        let r = run(table_crypto(4096, 16 << 10, 40).unwrap());
        let misses = kernel_misses(&r);
        // 16 KiB = 256 lines: only the cold pass misses.
        assert!(
            misses <= 256,
            "small-table crypto missed {misses} times"
        );
    }

    #[test]
    fn crypto_chain_depends_on_memory() {
        // The loaded value feeds the next address: with a zero-filled
        // memory the xor is a no-op, but the dependency must still exist
        // structurally — verify by checking the dynamic stream.
        use emprof_sim::{DynOp, InstructionSource};
        let program = table_crypto(4, 1 << 20, 40).unwrap();
        let mut interp = Interpreter::new(&program);
        let mut saw_load = false;
        while let Some(inst) = interp.next_inst() {
            if let DynOp::Load { .. } = inst.op {
                saw_load = true;
            }
        }
        assert!(saw_load);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn crypto_rejects_odd_table() {
        let _ = table_crypto(10, 1000, 40);
    }
}
