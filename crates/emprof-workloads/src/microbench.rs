//! The engineered TM/CM microbenchmark (Fig. 6 of the paper).
//!
//! Generates a known number of LLC misses (`TM`) in groups of `CM`
//! consecutive misses, each group separated by a micro function call; the
//! whole miss section is bracketed by tight blank loops whose stable
//! signal lets the harness isolate the section, and every page is touched
//! once up front "to avoid encountering page faults later".
//!
//! The access pattern "accesses cache-block-aligned array elements (so
//! that each access is to a different cache block), with randomization
//! designed to defeat any stride-based pre-fetching" — implemented with an
//! in-program 64-bit LCG whose outputs pick a random page and a random
//! line within the page.

use emprof_sim::isa::{Inst, Program, ProgramError, Reg};

use crate::{MARKER_MISS_END, MARKER_MISS_START};

/// Parameters of the microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobenchConfig {
    /// Total LLC misses to generate (`TM`).
    pub total_misses: u64,
    /// Consecutive misses per group (`CM`).
    pub consecutive_misses: u64,
    /// Array pages used (each 4 KiB); must be a power of two and large
    /// enough that random accesses almost never hit a cached line.
    pub pages: u64,
    /// Iterations of each identifier blank loop.
    pub blank_iters: i64,
    /// Iterations of the micro function's compute loop between groups.
    pub micro_function_iters: i64,
    /// Iterations of the per-access delay loop modeling the cost of the
    /// paper's two `rand()` calls; keeps consecutive miss dips separated
    /// in the captured signal.
    pub address_compute_iters: i64,
    /// Seed of the in-program address generator.
    pub seed: u64,
}

/// Page size assumed by the address arithmetic.
pub const PAGE_BYTES: u64 = 4096;
/// Cache-line size assumed by the address arithmetic.
pub const LINE_BYTES: u64 = 64;
/// Base address of the microbenchmark's array.
pub const ARRAY_BASE: u64 = 0x1000_0000;

impl MicrobenchConfig {
    /// A Table II/III configuration: `TM` total misses in groups of `CM`,
    /// with a 16 MiB array (4096 pages) that dwarfs every device's LLC.
    pub fn new(total_misses: u64, consecutive_misses: u64) -> Self {
        MicrobenchConfig {
            total_misses,
            consecutive_misses,
            pages: 4096,
            blank_iters: 40_000,
            micro_function_iters: 400,
            address_compute_iters: 40,
            seed: 0x5EED_5EED,
        }
    }

    /// The four TM/CM points of Tables II and III.
    pub fn paper_points() -> Vec<MicrobenchConfig> {
        vec![
            MicrobenchConfig::new(256, 1),
            MicrobenchConfig::new(256, 5),
            MicrobenchConfig::new(1024, 10),
            MicrobenchConfig::new(4096, 50),
        ]
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for a zero TM/CM, a non-power-of-two page count,
    /// or an array too small to defeat the cache.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_misses == 0 {
            return Err("total misses must be nonzero".into());
        }
        if self.consecutive_misses == 0 || self.consecutive_misses > self.total_misses {
            return Err(format!(
                "CM ({}) must be in 1..=TM ({})",
                self.consecutive_misses, self.total_misses
            ));
        }
        if !self.pages.is_power_of_two() {
            return Err(format!("pages ({}) must be a power of two", self.pages));
        }
        if self.pages * PAGE_BYTES < 8 << 20 {
            return Err(format!(
                "array of {} pages is too small to reliably miss a 1 MiB LLC",
                self.pages
            ));
        }
        if self.blank_iters <= 0
            || self.micro_function_iters <= 0
            || self.address_compute_iters <= 0
        {
            return Err("loop iteration counts must be positive".into());
        }
        Ok(())
    }

    /// Builds the microbenchmark program.
    ///
    /// Layout (mirroring the pseudocode of Fig. 6):
    ///
    /// 1. page-touch loop over every page,
    /// 2. blank identifier loop, then [`MARKER_MISS_START`],
    /// 3. `TM/CM` groups of `CM` random cache-block loads, each group
    ///    followed by the micro function's compute loop (a trailing
    ///    partial group covers `TM % CM`),
    /// 4. [`MARKER_MISS_END`], then the closing blank identifier loop.
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`] from program assembly (and validates
    /// the configuration first, reported as `ProgramError`-compatible
    /// panics — configuration errors are caught by
    /// [`MicrobenchConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MicrobenchConfig::validate`].
    pub fn build(&self) -> Result<Program, ProgramError> {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid microbenchmark configuration: {e}"));
        let mut b = Program::builder();

        // Register allocation.
        let base = Reg(1); // array base
        let lcg = Reg(2); // LCG state
        let lcg_mul = Reg(3); // LCG multiplier constant
        let tmp = Reg(4); // scratch: page/line extraction
        let addr = Reg(5); // effective address
        let val = Reg(6); // load destination (value unused, as in the paper)
        let i = Reg(7); // loop counters
        let limit = Reg(8);
        let inner = Reg(9);

        b.push(Inst::Li(base, ARRAY_BASE as i64));
        b.push(Inst::Li(lcg, self.seed as i64));
        b.push(Inst::Li(lcg_mul, 6364136223846793005u64 as i64));

        // --- 1. page touch: load cache_line_0 of every page ---
        b.push(Inst::Li(i, 0));
        b.push(Inst::Li(limit, self.pages as i64));
        let touch_top = b.label();
        b.push(Inst::Slli(addr, i, 12)); // page * 4096
        b.push(Inst::Add(addr, addr, base));
        b.push(Inst::Ld(val, addr, 0));
        b.push(Inst::Addi(i, i, 1));
        b.push(Inst::Blt(i, limit, touch_top));

        // --- 2. first identifier blank loop ---
        b.push(Inst::Li(i, self.blank_iters));
        let blank1 = b.label();
        b.push(Inst::Addi(i, i, -1));
        b.push(Inst::Bne(i, Reg::ZERO, blank1));
        b.push(Inst::Marker(MARKER_MISS_START));

        // --- 3. miss groups ---
        // Two nested loops replace Fig. 6's `num_accesses % CM` check
        // (the mini-ISA has no division): the outer loop runs `TM/CM`
        // groups, the inner loop performs `CM` randomized loads, and the
        // micro function call sits between groups. A trailing partial
        // group covers `TM % CM`. Keeping this a loop (rather than
        // unrolling) matches the paper's tiny code footprint, so the
        // section produces data misses only.
        let full_groups = self.total_misses / self.consecutive_misses;
        let remainder = self.total_misses % self.consecutive_misses;
        let page_mask = (self.pages - 1) as i64;
        let line_mask = (PAGE_BYTES / LINE_BYTES - 1) as i64;
        let outer = Reg(10);

        let emit_group_loop = |b: &mut emprof_sim::isa::ProgramBuilder,
                                   groups: u64,
                                   per_group: u64| {
            if groups == 0 || per_group == 0 {
                return;
            }
            b.push(Inst::Li(outer, groups as i64));
            let outer_top = b.label();
            b.push(Inst::Li(i, per_group as i64));
            let group_top = b.label();
            // LCG step: state = state * MUL + 1 — the stand-in for the
            // paper's rand() calls.
            b.push(Inst::Mul(lcg, lcg, lcg_mul));
            b.push(Inst::Addi(lcg, lcg, 1));
            // page = (state >> 33) & (pages - 1), in bytes: << 12.
            b.push(Inst::Srli(tmp, lcg, 33));
            b.push(Inst::Andi(tmp, tmp, page_mask));
            b.push(Inst::Slli(addr, tmp, 12));
            // line = (state >> 17) & (lines/page - 1), in bytes: << 6.
            b.push(Inst::Srli(tmp, lcg, 17));
            b.push(Inst::Andi(tmp, tmp, line_mask));
            b.push(Inst::Slli(tmp, tmp, 6));
            b.push(Inst::Add(addr, addr, tmp));
            b.push(Inst::Add(addr, addr, base));
            b.push(Inst::Ld(val, addr, 0));
            // Address-computation delay: models the real cost of the two
            // rand() library calls between accesses, which is what keeps
            // consecutive dips separated in the captured signal (Fig. 7b).
            b.push(Inst::Li(inner, self.address_compute_iters));
            let delay_top = b.label();
            b.push(Inst::Addi(inner, inner, -1));
            b.push(Inst::Bne(inner, Reg::ZERO, delay_top));
            b.push(Inst::Addi(i, i, -1));
            b.push(Inst::Bne(i, Reg::ZERO, group_top));
            // Micro function call: a short compute loop separating groups.
            b.push(Inst::Li(inner, self.micro_function_iters));
            let micro_top = b.label();
            b.push(Inst::Addi(inner, inner, -1));
            b.push(Inst::Bne(inner, Reg::ZERO, micro_top));
            b.push(Inst::Addi(outer, outer, -1));
            b.push(Inst::Bne(outer, Reg::ZERO, outer_top));
        };
        emit_group_loop(&mut b, full_groups, self.consecutive_misses);
        emit_group_loop(&mut b, u64::from(remainder > 0), remainder);

        b.push(Inst::Marker(MARKER_MISS_END));

        // --- 4. closing identifier blank loop ---
        b.push(Inst::Li(i, self.blank_iters));
        let blank2 = b.label();
        b.push(Inst::Addi(i, i, -1));
        b.push(Inst::Bne(i, Reg::ZERO, blank2));
        b.push(Inst::Halt);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_sim::{DeviceModel, Interpreter, Simulator};

    fn run_on(config: MicrobenchConfig, mut device: DeviceModel) -> emprof_sim::SimResult {
        // Refresh off for exact counting tests.
        device.dram.refresh = emprof_dram::RefreshConfig::disabled();
        let program = config.build().unwrap();
        Simulator::new(device)
            .with_max_cycles(200_000_000)
            .run(Interpreter::new(&program))
    }

    #[test]
    fn paper_points_are_valid() {
        for p in MicrobenchConfig::paper_points() {
            p.validate().unwrap();
        }
    }

    #[test]
    fn generates_close_to_tm_misses_in_window() {
        let config = MicrobenchConfig::new(256, 1);
        let r = run_on(config, DeviceModel::sesc_like());
        let window = r
            .ground_truth
            .marker_window(MARKER_MISS_START, MARKER_MISS_END)
            .expect("markers present");
        let data_misses = r
            .ground_truth
            .misses_in_window(window)
            .filter(|m| !m.is_instr)
            .count() as i64;
        // Random accesses into a 16 MiB array: collisions with cached
        // lines are rare but possible; the paper's own Table IV reports
        // 254-258 for TM=256.
        assert!(
            (data_misses - 256).abs() <= 8,
            "expected ~256 misses, got {data_misses}"
        );
    }

    #[test]
    fn misses_come_in_cm_groups() {
        let config = MicrobenchConfig::new(100, 10);
        let r = run_on(config, DeviceModel::olimex());
        let window = r
            .ground_truth
            .marker_window(MARKER_MISS_START, MARKER_MISS_END)
            .unwrap();
        let misses: Vec<_> = r
            .ground_truth
            .misses_in_window(window)
            .filter(|m| !m.is_instr)
            .collect();
        assert!((misses.len() as i64 - 100).abs() <= 4);
        // Group boundaries: gaps between consecutive misses within a group
        // are much smaller than gaps across the micro-function call.
        let gaps: Vec<u64> = misses
            .windows(2)
            .map(|w| w[1].detect_cycle - w[0].detect_cycle)
            .collect();
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let big_gaps = gaps.iter().filter(|&&g| g > median * 2).count() as i64;
        // ~9 inter-group gaps for 10 groups.
        assert!(
            (big_gaps - 9).abs() <= 3,
            "expected ~9 inter-group gaps, got {big_gaps}"
        );
    }

    #[test]
    fn page_touch_happens_before_markers() {
        let config = MicrobenchConfig::new(64, 1);
        let r = run_on(config, DeviceModel::sesc_like());
        let (start, _) = r
            .ground_truth
            .marker_window(MARKER_MISS_START, MARKER_MISS_END)
            .unwrap();
        // Page touches are all before the first marker: plenty of misses
        // exist before the window.
        let before = r
            .ground_truth
            .misses()
            .iter()
            .filter(|m| !m.is_instr && m.detect_cycle < start)
            .count();
        assert!(
            before as u64 >= config.pages / 2,
            "page touch should miss ~once per page, saw {before}"
        );
    }

    #[test]
    fn blank_loops_are_stall_free() {
        let config = MicrobenchConfig::new(64, 1);
        let r = run_on(config, DeviceModel::sesc_like());
        let (start, end) = r
            .ground_truth
            .marker_window(MARKER_MISS_START, MARKER_MISS_END)
            .unwrap();
        // The stretch just before `start` is the first blank loop: no LLC
        // stalls should begin in its second half.
        let blank_window = (start.saturating_sub(4000), start);
        let stalls = r.ground_truth.llc_stalls_in_window(blank_window).count();
        assert_eq!(stalls, 0, "blank loop contains LLC stalls");
        assert!(end > start);
    }

    #[test]
    fn remainder_group_is_emitted() {
        // TM=256, CM=5: 51 full groups + remainder of 1.
        let config = MicrobenchConfig::new(256, 5);
        let r = run_on(config, DeviceModel::sesc_like());
        let window = r
            .ground_truth
            .marker_window(MARKER_MISS_START, MARKER_MISS_END)
            .unwrap();
        let n = r
            .ground_truth
            .misses_in_window(window)
            .filter(|m| !m.is_instr)
            .count() as i64;
        assert!((n - 256).abs() <= 8, "got {n}");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(MicrobenchConfig::new(0, 1).validate().is_err());
        assert!(MicrobenchConfig::new(10, 20).validate().is_err());
        let mut c = MicrobenchConfig::new(256, 1);
        c.pages = 1000;
        assert!(c.validate().is_err());
        c.pages = 256; // 1 MiB: too small
        assert!(c.validate().is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let config = MicrobenchConfig::new(64, 4);
        let a = run_on(config, DeviceModel::sesc_like());
        let b = run_on(config, DeviceModel::sesc_like());
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.llc_misses, b.stats.llc_misses);
    }
}
