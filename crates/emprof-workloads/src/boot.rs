//! The boot-sequence workload (Fig. 13).
//!
//! Section VI-C: EMPROF can profile "hard-to-profile runs, such as the
//! boot sequence of the device", before performance counters or any
//! software infrastructure exist. Fig. 13 plots the LLC miss rate over
//! time for two boot-ups of the IoT device.
//!
//! The model is a sequence of phases with the memory character of a real
//! embedded boot: a ROM/loader copy (heavy streaming), kernel
//! decompression (compute with bursts), device-tree/driver initialization
//! (scattered cold probes), filesystem mount and scan (pointer-heavy
//! metadata walks), and service start-up (mixed). Distinct seeds give the
//! run-to-run variation visible between the two runs in the figure.

use crate::spec::{Phase, WorkloadSpec};

/// Builds the boot workload. `seed` distinguishes boot-to-boot variation;
/// `scale` rescales phase lengths (1.0 ≈ 13M instructions).
pub fn boot_sequence(seed: u64, scale: f64) -> WorkloadSpec {
    let mut rom_copy = Phase::base("rom_copy", 1_200_000);
    rom_copy.code_base = 0x20_0000;
    rom_copy.code_footprint = 4 << 10;
    rom_copy.loop_body = 12;
    rom_copy.mem_every = 2;
    rom_copy.warm_per_kinst = 0.0;
    rom_copy.cold_per_kinst = 3.0;
    rom_copy.cold_stream_fraction = 1.0;
    rom_copy.store_fraction = 0.5;
    rom_copy.load_use_distance = 8;

    let mut decompress = Phase::base("decompress", 3_000_000);
    decompress.code_base = 0x20_8000;
    decompress.code_footprint = 12 << 10;
    decompress.loop_body = 20;
    decompress.warm_bytes = 256 << 10;
    decompress.warm_per_kinst = 0.2;
    decompress.cold_per_kinst = 0.4;
    decompress.cold_stream_fraction = 0.85;
    decompress.store_fraction = 0.4;
    decompress.load_use_distance = 4;

    let mut device_init = Phase::base("device_init", 2_500_000);
    device_init.code_base = 0x21_0000;
    device_init.code_footprint = 96 << 10;
    device_init.loop_body = 60;
    device_init.warm_bytes = 256 << 10;
    device_init.warm_per_kinst = 0.15;
    device_init.cold_per_kinst = 0.25;
    device_init.cold_stream_fraction = 0.1;
    device_init.load_use_distance = 2;

    let mut fs_scan = Phase::base("fs_scan", 3_500_000);
    fs_scan.code_base = 0x22_0000;
    fs_scan.code_footprint = 48 << 10;
    fs_scan.loop_body = 34;
    fs_scan.warm_bytes = 512 << 10;
    fs_scan.warm_per_kinst = 0.4;
    fs_scan.cold_per_kinst = 0.9;
    fs_scan.pointer_chase = true;
    fs_scan.load_use_distance = 1;

    let mut services = Phase::base("services", 2_800_000);
    services.code_base = 0x23_0000;
    services.code_footprint = 64 << 10;
    services.loop_body = 44;
    services.warm_bytes = 512 << 10;
    services.warm_per_kinst = 0.1;
    services.cold_per_kinst = 0.06;
    services.cold_stream_fraction = 0.3;
    services.load_use_distance = 3;

    WorkloadSpec {
        name: "boot",
        phases: vec![rom_copy, decompress, device_init, fs_scan, services],
        seed,
    }
    .scaled(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_sim::{DeviceModel, Simulator};

    #[test]
    fn boot_spec_is_valid() {
        boot_sequence(1, 1.0).validate().unwrap();
    }

    #[test]
    fn phases_in_boot_order() {
        let b = boot_sequence(1, 1.0);
        assert_eq!(
            b.phase_names(),
            vec!["rom_copy", "decompress", "device_init", "fs_scan", "services"]
        );
    }

    #[test]
    fn miss_rate_varies_across_boot() {
        // Run a scaled-down boot and verify the miss rate changes by phase
        // (the structure Fig. 13 plots).
        let spec = boot_sequence(7, 0.15);
        let sim = Simulator::new(DeviceModel::olimex()).with_max_cycles(100_000_000);
        let r = sim.run(spec.source());
        // Collect misses per phase using the region markers.
        let mut per_phase = Vec::new();
        for i in 0..5u32 {
            let start = r
                .ground_truth
                .marker_cycles(crate::MARKER_REGION_BASE + i)
                .first()
                .copied()
                .unwrap();
            let end = if i < 4 {
                r.ground_truth
                    .marker_cycles(crate::MARKER_REGION_BASE + i + 1)
                    .first()
                    .copied()
                    .unwrap()
            } else {
                r.stats.cycles
            };
            // Data misses only: at this heavily scaled-down length the
            // one-time cold fetch of each phase's code footprint would
            // swamp the rates (it amortizes away at realistic lengths).
            let misses = r
                .ground_truth
                .misses_in_window((start, end))
                .filter(|m| !m.is_instr)
                .count();
            per_phase.push(misses as f64 / (end - start) as f64 * 1e6);
        }
        let max = per_phase.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_phase.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 2.0 * min.max(0.1),
            "boot phases should differ in miss rate: {per_phase:?}"
        );
    }

    #[test]
    fn two_boots_differ_but_share_structure() {
        let a = boot_sequence(1, 0.02);
        let b = boot_sequence(2, 0.02);
        let run = |spec: WorkloadSpec| {
            let sim =
                Simulator::new(DeviceModel::olimex()).with_max_cycles(50_000_000);
            let r = sim.run(spec.source());
            (r.stats.cycles, r.stats.llc_misses)
        };
        let (ca, ma) = run(a);
        let (cb, mb) = run(b);
        // Different seeds: not identical...
        assert!(ca != cb || ma != mb);
        // ...but the same boot within 20%.
        let rel = (ma as f64 - mb as f64).abs() / ma.max(1) as f64;
        assert!(rel < 0.2, "boot miss counts diverged: {ma} vs {mb}");
    }
}
