//! Synthetic stand-ins for the SPEC CPU2000 integer benchmarks.
//!
//! SPEC sources cannot run on the mini-ISA, so each benchmark is replaced
//! by a trace generator reproducing its *memory behaviour class* — the
//! properties the paper's evaluation actually exercises:
//!
//! * a **hot set** (L1-resident) serviced without misses,
//! * a **warm set** whose size straddles the devices' LLC capacities —
//!   this is what makes the 1 MiB-LLC Alcatel miss far less than the
//!   256 KiB devices (Section VI-A),
//! * **cold excursions** that miss every LLC, either *streaming*
//!   (sequential lines — exactly what the Samsung's stride prefetcher
//!   removes) or random (what it cannot),
//! * optional **pointer chasing** (each cold load's address depends on
//!   the previous load, serializing misses — the *mcf* signature),
//! * a **code footprint** and **loop body length** giving each workload
//!   its instruction-cache behaviour and its spectral identity (Fig. 14).
//!
//! Rates are expressed per thousand instructions so a workload's miss
//! intensity is independent of its length. The per-benchmark parameters
//! are tuned so the Olimex-device stall-time percentages land in the
//! bands of Table IV; see EXPERIMENTS.md for measured values.
//!
//! Workloads emit a [`Marker`](emprof_sim::DynOp::Marker) at each phase
//! boundary (`MARKER_REGION_BASE + phase index`), which gives the
//! attribution experiments (Fig. 14 / Table V) their ground-truth region
//! windows.

use emprof_sim::isa::Reg;
use emprof_sim::{DynInst, DynOp, InstructionSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::MARKER_REGION_BASE;

/// Base address of the cold region (shared by all phases; 512 MiB).
pub const COLD_BASE: u64 = 0x4000_0000;
const COLD_BYTES: u64 = 512 << 20;
const HOT_BYTES: u64 = 8 << 10;
/// Line accesses per streaming burst (a scan/copy loop episode).
const STREAM_BURST_LINES: u32 = 24;
/// Instructions between consecutive line accesses inside a burst (the
/// per-element compute of a real scan loop; keeps consecutive miss dips
/// separated in the signal).
const STREAM_SPACING_INSTS: u64 = 500;

/// One execution phase (a "region" in the attribution experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Region name (e.g. a function name for Table V).
    pub name: &'static str,
    /// Dynamic instructions in this phase.
    pub instructions: u64,
    /// First code address of the phase (distinct per phase so regions have
    /// distinct I$ footprints).
    pub code_base: u64,
    /// Code bytes cycled through (drives I$ behaviour).
    pub code_footprint: u64,
    /// Instructions per loop iteration: a taken branch every `loop_body`
    /// instructions gives the region its spectral signature.
    pub loop_body: u64,
    /// One memory operation every `mem_every` instructions.
    pub mem_every: u64,
    /// Warm working-set size in bytes (LLC-capacity-sensitive misses).
    pub warm_bytes: u64,
    /// Warm-set accesses per thousand instructions.
    pub warm_per_kinst: f64,
    /// Cold-excursion accesses per thousand instructions (miss every LLC).
    pub cold_per_kinst: f64,
    /// Fraction of cold excursions that stream sequentially
    /// (prefetchable) rather than jump randomly.
    pub cold_stream_fraction: f64,
    /// Serialize consecutive cold loads through a register dependency
    /// (pointer chasing).
    pub pointer_chase: bool,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// Instructions between a load and its first use (small = stalls
    /// promptly; large = more latency hidden by ILP).
    pub load_use_distance: u64,
}

impl Phase {
    /// A neutral compute-heavy phase to build presets from.
    pub fn base(name: &'static str, instructions: u64) -> Self {
        Phase {
            name,
            instructions,
            code_base: 0x10_0000,
            code_footprint: 16 << 10,
            loop_body: 32,
            mem_every: 4,
            warm_bytes: 128 << 10,
            warm_per_kinst: 0.1,
            cold_per_kinst: 0.0,
            cold_stream_fraction: 0.0,
            pointer_chase: false,
            store_fraction: 0.25,
            load_use_distance: 3,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.instructions == 0 {
            return Err(format!("phase {}: zero instructions", self.name));
        }
        if self.loop_body < 2 || self.mem_every == 0 {
            return Err(format!(
                "phase {}: loop_body must be >= 2 and mem_every nonzero",
                self.name
            ));
        }
        if self.code_footprint < 64 || !self.code_footprint.is_multiple_of(4) {
            return Err(format!("phase {}: bad code footprint", self.name));
        }
        let warm_lines = self.warm_bytes / 64;
        if warm_lines == 0 || !warm_lines.is_power_of_two() {
            return Err(format!(
                "phase {}: warm set must be a power-of-two number of lines, got {} bytes",
                self.name, self.warm_bytes
            ));
        }
        for (field, v) in [
            ("warm_per_kinst", self.warm_per_kinst),
            ("cold_per_kinst", self.cold_per_kinst),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("phase {}: {field} invalid ({v})", self.name));
            }
        }
        // The per-access probabilities must stay below 1.
        let per_access =
            (self.warm_per_kinst + self.cold_per_kinst) * self.mem_every as f64 / 1000.0;
        if per_access >= 1.0 {
            return Err(format!(
                "phase {}: warm+cold rates imply probability {per_access} >= 1",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.cold_stream_fraction)
            || !(0.0..=1.0).contains(&self.store_fraction)
        {
            return Err(format!("phase {}: fractions out of range", self.name));
        }
        if self.load_use_distance == 0 {
            return Err(format!("phase {}: load_use_distance must be >= 1", self.name));
        }
        Ok(())
    }
}

/// A complete workload: named phases plus a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (as reported in the tables).
    pub name: &'static str,
    /// Phases executed in order.
    pub phases: Vec<Phase>,
    /// Seed for the generator's randomness.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Total dynamic instructions across phases.
    pub fn instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    /// Rescales every phase length by `factor` (for quick tests vs full
    /// benchmark runs).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        for p in &mut self.phases {
            p.instructions = ((p.instructions as f64 * factor) as u64).max(1000);
        }
        self
    }

    /// Replaces the seed (distinct seeds give run-to-run variation, e.g.
    /// the two boot runs of Fig. 13).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates every phase.
    ///
    /// # Errors
    ///
    /// Returns the first phase error.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("workload {} has no phases", self.name));
        }
        for p in &self.phases {
            p.validate()?;
        }
        Ok(())
    }

    /// Creates the instruction source for this workload.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn source(&self) -> TraceGen {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid workload spec: {e}"));
        TraceGen::new(self.clone())
    }

    /// The phase index ranges as `(name, start_instruction)` pairs, for
    /// aligning region ground truth.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name).collect()
    }
}

macro_rules! preset {
    ($fn_name:ident, $name:literal, $doc:literal, |$p:ident| $body:expr) => {
        #[doc = $doc]
        pub fn $fn_name() -> WorkloadSpec {
            let mut $p = Phase::base($name, 40_000_000);
            $body;
            WorkloadSpec {
                name: $name,
                phases: vec![$p],
                seed: 0xC0FFEE,
            }
        }
    };
}

impl WorkloadSpec {
    preset!(
        ammp,
        "ammp",
        "Molecular dynamics: mid-size working set with scattered cold reads.",
        |p| {
            p.code_base = 0x11_0000;
            p.code_footprint = 24 << 10;
            p.loop_body = 40;
            p.warm_bytes = 512 << 10;
            p.warm_per_kinst = 0.45;
            p.cold_per_kinst = 0.045;
            p.cold_stream_fraction = 0.2;
            p.load_use_distance = 2;
        }
    );

    preset!(
        bzip2,
        "bzip2",
        "Block-sorting compression: heavy sequential streaming over large buffers.",
        |p| {
            p.code_base = 0x12_0000;
            p.code_footprint = 20 << 10;
            p.loop_body = 18;
            p.warm_bytes = 512 << 10;
            p.warm_per_kinst = 0.25;
            p.cold_per_kinst = 0.06;
            p.cold_stream_fraction = 0.9;
            p.load_use_distance = 6;
            p.store_fraction = 0.3;
        }
    );

    preset!(
        crafty,
        "crafty",
        "Chess search: large code footprint, small data working set.",
        |p| {
            p.code_base = 0x13_0000;
            p.code_footprint = 80 << 10;
            p.loop_body = 70;
            p.warm_bytes = 256 << 10;
            p.warm_per_kinst = 0.10;
            p.cold_per_kinst = 0.02;
            p.load_use_distance = 3;
        }
    );

    preset!(
        equake,
        "equake",
        "FE earthquake simulation: streaming sweeps over large meshes.",
        |p| {
            p.code_base = 0x14_0000;
            p.code_footprint = 16 << 10;
            p.loop_body = 24;
            p.warm_bytes = 512 << 10;
            p.warm_per_kinst = 0.20;
            p.cold_per_kinst = 0.12;
            p.cold_stream_fraction = 0.95;
            p.load_use_distance = 5;
        }
    );

    preset!(
        gzip,
        "gzip",
        "LZ77 compression: small window, modest streaming.",
        |p| {
            p.code_base = 0x15_0000;
            p.code_footprint = 16 << 10;
            p.loop_body = 14;
            p.warm_bytes = 256 << 10;
            p.warm_per_kinst = 0.07;
            p.cold_per_kinst = 0.021;
            p.cold_stream_fraction = 0.8;
            p.load_use_distance = 6;
            p.store_fraction = 0.3;
        }
    );

    preset!(
        mcf,
        "mcf",
        "Network simplex: pointer chasing through a multi-megabyte graph; \
         the only workload whose working set defeats even the Alcatel's \
         1 MiB LLC.",
        |p| {
            p.code_base = 0x16_0000;
            p.code_footprint = 12 << 10;
            p.loop_body = 30;
            p.warm_bytes = 2 << 20;
            p.warm_per_kinst = 0.09;
            p.cold_per_kinst = 0.004;
            p.pointer_chase = true;
            p.load_use_distance = 1;
        }
    );

    preset!(
        twolf,
        "twolf",
        "Place and route: random probes into mid-size tables.",
        |p| {
            p.code_base = 0x18_0000;
            p.code_footprint = 28 << 10;
            p.loop_body = 48;
            p.warm_bytes = 512 << 10;
            p.warm_per_kinst = 0.15;
            p.cold_per_kinst = 0.0;
            p.load_use_distance = 2;
        }
    );

    preset!(
        vortex,
        "vortex",
        "Object database: large code, store-heavy object churn.",
        |p| {
            p.code_base = 0x19_0000;
            p.code_footprint = 64 << 10;
            p.loop_body = 110;
            p.warm_bytes = 256 << 10;
            p.warm_per_kinst = 0.30;
            p.cold_per_kinst = 0.015;
            p.store_fraction = 0.35;
            p.load_use_distance = 3;
        }
    );

    preset!(
        vpr,
        "vpr",
        "FPGA place/route (test input): nearly cache-resident.",
        |p| {
            p.code_base = 0x1A_0000;
            p.code_footprint = 24 << 10;
            p.loop_body = 56;
            p.warm_bytes = 256 << 10;
            p.warm_per_kinst = 0.05;
            p.cold_per_kinst = 0.006;
            p.load_use_distance = 4;
        }
    );

    /// Natural-language parser: the paper's attribution example (Fig. 14,
    /// Table V) with three phases mirroring `read_dictionary`,
    /// `init_randtable`, and `batch_process`. The phases differ in loop
    /// period and miss intensity, so they separate both spectrally and in
    /// the profile: `batch_process` dominates misses and stall time.
    pub fn parser() -> WorkloadSpec {
        let mut read_dictionary = Phase::base("read_dictionary", 10_000_000);
        read_dictionary.code_base = 0x17_0000;
        read_dictionary.code_footprint = 20 << 10;
        read_dictionary.loop_body = 180;
        read_dictionary.mem_every = 6;
        read_dictionary.warm_bytes = 512 << 10;
        read_dictionary.warm_per_kinst = 0.30;
        read_dictionary.cold_per_kinst = 0.03;
        read_dictionary.cold_stream_fraction = 0.7;
        read_dictionary.load_use_distance = 2;

        let mut init_randtable = Phase::base("init_randtable", 6_000_000);
        init_randtable.code_base = 0x17_8000;
        init_randtable.code_footprint = 4 << 10;
        init_randtable.loop_body = 420;
        init_randtable.warm_bytes = 128 << 10;
        init_randtable.warm_per_kinst = 0.0;
        init_randtable.cold_per_kinst = 0.008;
        init_randtable.store_fraction = 0.6;
        init_randtable.load_use_distance = 5;

        let mut batch_process = Phase::base("batch_process", 24_000_000);
        batch_process.code_base = 0x17_C000;
        batch_process.code_footprint = 32 << 10;
        batch_process.loop_body = 90;
        batch_process.mem_every = 3;
        batch_process.warm_bytes = 512 << 10;
        batch_process.warm_per_kinst = 0.80;
        batch_process.cold_per_kinst = 0.10;
        batch_process.cold_stream_fraction = 0.1;
        batch_process.load_use_distance = 2;

        WorkloadSpec {
            name: "parser",
            phases: vec![read_dictionary, init_randtable, batch_process],
            seed: 0xC0FFEE,
        }
    }

    /// The ten SPEC CPU2000 workloads of Tables III/IV, in the paper's
    /// row order.
    pub fn all_spec2000() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::ammp(),
            WorkloadSpec::bzip2(),
            WorkloadSpec::crafty(),
            WorkloadSpec::equake(),
            WorkloadSpec::gzip(),
            WorkloadSpec::mcf(),
            WorkloadSpec::parser(),
            WorkloadSpec::twolf(),
            WorkloadSpec::vortex(),
            WorkloadSpec::vpr(),
        ]
    }
}

/// Address-class roll for one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrClass {
    Hot,
    Warm,
    Cold,
}

/// The trace generator: turns a [`WorkloadSpec`] into a dynamic
/// instruction stream for the simulator.
#[derive(Debug, Clone)]
pub struct TraceGen {
    spec: WorkloadSpec,
    rng: StdRng,
    phase_idx: usize,
    inst_in_phase: u64,
    marker_pending: bool,
    hot_counter: u64,
    stream_addr: u64,
    /// Full-coverage warm-set cursor (bit-reversal permutation index).
    warm_idx: u64,
    /// Remaining line accesses in the current streaming burst.
    stream_burst_left: u32,
    /// Instructions until the next in-burst stream access.
    stream_cooldown: u64,
    /// Code-locality state: byte offset of the loop currently executing.
    loop_offset: u64,
    /// Loop iterations remaining before moving to another loop.
    dwell_left: u64,
    alu_rot: u8,
    load_rot: u8,
    /// (instruction index due, register) for the next load-use.
    pending_use: Option<(u64, Reg)>,
    last_cold_load: Option<Reg>,
    last_mem_was_cold: bool,
    total_emitted: u64,
}

/// Register carrying a stable base address (never written by the
/// generator, so always ready).
const BASE_REG: Reg = Reg(31);

impl TraceGen {
    fn new(spec: WorkloadSpec) -> Self {
        let seed = spec.seed;
        TraceGen {
            spec,
            rng: StdRng::seed_from_u64(seed),
            phase_idx: 0,
            inst_in_phase: 0,
            marker_pending: true,
            hot_counter: 0,
            stream_addr: COLD_BASE,
            warm_idx: 0,
            stream_burst_left: 0,
            stream_cooldown: 0,
            loop_offset: 0,
            dwell_left: 0,
            alu_rot: 0,
            load_rot: 0,
            pending_use: None,
            last_cold_load: None,
            last_mem_was_cold: false,
            total_emitted: 0,
        }
    }

    /// Total dynamic instructions emitted so far (markers excluded).
    pub fn emitted(&self) -> u64 {
        self.total_emitted
    }

    fn phase(&self) -> &Phase {
        &self.spec.phases[self.phase_idx]
    }

    fn next_alu_dst(&mut self) -> Reg {
        self.alu_rot = (self.alu_rot + 1) % 12;
        Reg(1 + self.alu_rot)
    }

    fn next_load_dst(&mut self) -> Reg {
        self.load_rot = (self.load_rot + 1) % 8;
        Reg(16 + self.load_rot)
    }

    fn pick_class(&mut self) -> AddrClass {
        let p = *self.phase();
        let per_access = p.mem_every as f64 / 1000.0;
        let cold_total = p.cold_per_kinst * per_access;
        // Streaming cold traffic arrives in scan-loop bursts (a stable
        // load site walking sequential lines — what a stride prefetcher
        // can learn); random cold excursions arrive individually.
        let stream_trigger =
            cold_total * p.cold_stream_fraction / STREAM_BURST_LINES as f64;
        let cold_rand = cold_total * (1.0 - p.cold_stream_fraction);
        let warm_p = p.warm_per_kinst * per_access;
        let roll: f64 = self.rng.gen();
        if roll < stream_trigger {
            self.stream_burst_left = STREAM_BURST_LINES;
            self.stream_cooldown = 0;
            AddrClass::Hot
        } else if roll < stream_trigger + cold_rand {
            AddrClass::Cold
        } else if roll < stream_trigger + cold_rand + warm_p {
            AddrClass::Warm
        } else {
            AddrClass::Hot
        }
    }

    fn address_for(&mut self, class: AddrClass) -> u64 {
        let p = *self.phase();
        match class {
            AddrClass::Hot => {
                self.hot_counter = self.hot_counter.wrapping_add(1);
                // Hot set lives just above the phase's warm set.
                let hot_base = 0x2000_0000 + self.phase_idx as u64 * 0x100_0000;
                hot_base + (self.hot_counter * 64) % HOT_BYTES
            }
            AddrClass::Warm => {
                // Full-coverage bit-reversal permutation over the warm
                // set: every line is touched once per cycle of the set
                // (so the set actually fits or thrashes the LLC by
                // capacity, the Table IV device effect), while
                // consecutive addresses jump irregularly (defeating the
                // stride prefetcher, unlike a plain sweep).
                let warm_base = 0x3000_0000 + self.phase_idx as u64 * 0x400_0000;
                let lines = p.warm_bytes / 64;
                let k = lines.trailing_zeros();
                let idx = self.warm_idx & (lines - 1);
                self.warm_idx = self.warm_idx.wrapping_add(1);
                let line = if k == 0 { 0 } else { idx.reverse_bits() >> (64 - k) };
                warm_base + line * 64
            }
            AddrClass::Cold => {
                let lines = COLD_BYTES / 64;
                COLD_BASE + (self.rng.gen::<u64>() % lines) * 64
            }
        }
    }

    fn gen_mem_op(&mut self) -> DynOp {
        let class = self.pick_class();
        let addr = self.address_for(class);
        let p = *self.phase();
        // Stores target the hot set only: a store miss drains through the
        // write buffer without stalling the core (no EM-visible event),
        // so miss-generating traffic is modeled as loads — the access
        // class the paper's stall accounting actually observes.
        let is_store =
            class == AddrClass::Hot && self.rng.gen::<f64>() < p.store_fraction;
        if is_store {
            let data = Reg(1 + (self.alu_rot % 12));
            self.last_mem_was_cold = false;
            DynOp::Store {
                srcs: [Some(data), Some(BASE_REG)],
                addr,
            }
        } else {
            let dst = self.next_load_dst();
            // Pointer chasing: a cold load immediately following another
            // cold load depends on its value.
            let addr_src = if p.pointer_chase
                && class == AddrClass::Cold
                && self.last_mem_was_cold
            {
                self.last_cold_load
            } else {
                Some(BASE_REG)
            };
            if class == AddrClass::Cold {
                self.last_cold_load = Some(dst);
                self.last_mem_was_cold = true;
            } else {
                self.last_mem_was_cold = false;
            }
            self.pending_use = Some((self.inst_in_phase + p.load_use_distance, dst));
            DynOp::Load {
                dst,
                addr_src,
                addr,
            }
        }
    }

    fn gen_alu(&mut self) -> DynOp {
        let dst = self.next_alu_dst();
        // Consume a due load result, creating the load-use dependency.
        let use_src = match self.pending_use {
            Some((due, reg)) if self.inst_in_phase >= due => {
                self.pending_use = None;
                Some(reg)
            }
            _ => None,
        };
        let other = Reg(1 + ((self.alu_rot + 5) % 12));
        DynOp::Alu {
            dst: Some(dst),
            srcs: [use_src.or(Some(other)), None],
        }
    }
}

impl InstructionSource for TraceGen {
    fn next_inst(&mut self) -> Option<DynInst> {
        loop {
            if self.phase_idx >= self.spec.phases.len() {
                return None;
            }
            if self.marker_pending {
                self.marker_pending = false;
                let p = self.phase();
                return Some(DynInst {
                    pc: p.code_base,
                    op: DynOp::Marker(MARKER_REGION_BASE + self.phase_idx as u32),
                });
            }
            if self.inst_in_phase >= self.phase().instructions {
                self.phase_idx += 1;
                self.inst_in_phase = 0;
                self.marker_pending = true;
                self.pending_use = None;
                self.loop_offset = 0;
                self.dwell_left = 0;
                self.warm_idx = 0;
                continue;
            }
            let p = *self.phase();
            let i = self.inst_in_phase;
            // In-burst streaming: emit the next line access of the scan
            // loop once its per-element compute has elapsed. The load
            // site PC is stable so the stride prefetcher can train on it.
            if self.stream_burst_left > 0 {
                if self.stream_cooldown == 0 && i % p.loop_body != p.loop_body - 1 {
                    self.stream_burst_left -= 1;
                    self.stream_cooldown = STREAM_SPACING_INSTS;
                    self.stream_addr += 64;
                    if self.stream_addr >= COLD_BASE + COLD_BYTES {
                        self.stream_addr = COLD_BASE;
                    }
                    let dst = self.next_load_dst();
                    self.pending_use = Some((i + p.load_use_distance, dst));
                    self.inst_in_phase += 1;
                    self.total_emitted += 1;
                    return Some(DynInst {
                        pc: p.code_base + 8,
                        op: DynOp::Load {
                            dst,
                            addr_src: Some(BASE_REG),
                            addr: self.stream_addr,
                        },
                    });
                }
                self.stream_cooldown = self.stream_cooldown.saturating_sub(1);
            }
            // Code locality: execution sits in one loop of the footprint
            // for a while (dwell), then moves to another loop — the way
            // real code covers a large text segment, rather than sweeping
            // it linearly (which would thrash the I$ unrealistically).
            if i.is_multiple_of(p.loop_body) {
                if self.dwell_left == 0 {
                    let n_loops = p.code_footprint / (4 * p.loop_body);
                    if n_loops > 1 {
                        self.loop_offset =
                            (self.rng.gen::<u64>() % n_loops) * 4 * p.loop_body;
                    }
                    self.dwell_left = 16 + self.rng.gen::<u64>() % 49; // 16..=64
                } else {
                    self.dwell_left -= 1;
                }
            }
            let within = (i % p.loop_body) * 4 % p.code_footprint;
            let pc = p.code_base + (self.loop_offset + within) % p.code_footprint;
            let op = if i % p.loop_body == p.loop_body - 1 {
                DynOp::Branch {
                    srcs: [Some(Reg(1 + (self.alu_rot % 12))), None],
                    taken: true,
                }
            } else if i.is_multiple_of(p.mem_every) {
                self.gen_mem_op()
            } else {
                self.gen_alu()
            };
            self.inst_in_phase += 1;
            self.total_emitted += 1;
            return Some(DynInst { pc, op });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(spec: WorkloadSpec) -> Vec<DynInst> {
        let mut src = spec.source();
        let mut v = Vec::new();
        while let Some(i) = src.next_inst() {
            v.push(i);
        }
        v
    }

    #[test]
    fn all_presets_validate() {
        for w in WorkloadSpec::all_spec2000() {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn emits_requested_instruction_count() {
        let spec = WorkloadSpec::gzip().scaled(0.01); // 40k insts
        let insts = drain(spec.clone());
        let non_marker = insts
            .iter()
            .filter(|i| !matches!(i.op, DynOp::Marker(_)))
            .count() as u64;
        assert_eq!(non_marker, spec.instructions());
    }

    #[test]
    fn markers_bracket_phases() {
        let spec = WorkloadSpec::parser().scaled(0.01);
        let insts = drain(spec);
        let markers: Vec<u32> = insts
            .iter()
            .filter_map(|i| match i.op {
                DynOp::Marker(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(
            markers,
            vec![
                MARKER_REGION_BASE,
                MARKER_REGION_BASE + 1,
                MARKER_REGION_BASE + 2
            ]
        );
    }

    #[test]
    fn memory_rate_matches_mem_every() {
        let spec = WorkloadSpec::twolf().scaled(0.02);
        let insts = drain(spec.clone());
        let mem = insts.iter().filter(|i| i.op.is_mem()).count() as f64;
        let total = insts.len() as f64;
        let expected = 1.0 / spec.phases[0].mem_every as f64;
        // Loop-end branches occasionally displace a memory slot.
        assert!(
            (mem / total - expected).abs() < 0.05,
            "mem fraction {} vs expected {expected}",
            mem / total
        );
    }

    #[test]
    fn cold_rate_close_to_configured() {
        let spec = WorkloadSpec::equake().scaled(0.25); // 1M insts
        let cold_per_kinst = spec.phases[0].cold_per_kinst;
        let insts = drain(spec);
        let cold = insts
            .iter()
            .filter(|i| match i.op {
                DynOp::Load { addr, .. } | DynOp::Store { addr, .. } => addr >= COLD_BASE,
                _ => false,
            })
            .count() as f64;
        let kinsts = insts.len() as f64 / 1000.0;
        let rate = cold / kinsts;
        assert!(
            (rate - cold_per_kinst).abs() < cold_per_kinst * 0.35,
            "cold rate {rate} vs configured {cold_per_kinst}"
        );
    }

    #[test]
    fn streaming_cold_addresses_are_sequential() {
        let spec = WorkloadSpec::bzip2().scaled(0.1);
        let insts = drain(spec);
        // Stores advance the stream cursor too, so check all cold accesses.
        let cold_accesses: Vec<u64> = insts
            .iter()
            .filter_map(|i| match i.op {
                DynOp::Load { addr, .. } | DynOp::Store { addr, .. }
                    if addr >= COLD_BASE =>
                {
                    Some(addr)
                }
                _ => None,
            })
            .collect();
        assert!(cold_accesses.len() > 10);
        let sequential = cold_accesses
            .windows(2)
            .filter(|w| w[1] == w[0] + 64)
            .count() as f64;
        // 90% of cold accesses stream; random excursions dilute the pairs.
        assert!(
            sequential / (cold_accesses.len() - 1) as f64 > 0.6,
            "sequential fraction too low"
        );
    }

    #[test]
    fn pointer_chase_creates_load_dependencies() {
        let mut spec = WorkloadSpec::mcf().scaled(0.1);
        // Force frequent cold accesses so chains occur.
        spec.phases[0].cold_per_kinst = 100.0;
        spec.phases[0].store_fraction = 0.0;
        let insts = drain(spec);
        let chained = insts
            .iter()
            .filter(|i| match i.op {
                DynOp::Load { addr_src, .. } => addr_src != Some(BASE_REG),
                _ => false,
            })
            .count();
        assert!(chained > 10, "expected chained cold loads, got {chained}");
    }

    #[test]
    fn pc_stays_within_code_footprint() {
        let spec = WorkloadSpec::crafty().scaled(0.02);
        let p = spec.phases[0];
        let insts = drain(spec);
        for i in &insts {
            assert!(i.pc >= p.code_base);
            assert!(i.pc < p.code_base + p.code_footprint);
        }
    }

    #[test]
    fn branch_every_loop_body() {
        let spec = WorkloadSpec::gzip().scaled(0.01);
        let lb = spec.phases[0].loop_body as usize;
        let insts = drain(spec);
        let non_marker: Vec<&DynInst> = insts
            .iter()
            .filter(|i| !matches!(i.op, DynOp::Marker(_)))
            .collect();
        for (idx, inst) in non_marker.iter().enumerate() {
            if idx % lb == lb - 1 {
                assert!(
                    matches!(inst.op, DynOp::Branch { taken: true, .. }),
                    "expected branch at {idx}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = drain(WorkloadSpec::ammp().scaled(0.01));
        let b = drain(WorkloadSpec::ammp().scaled(0.01));
        assert_eq!(a, b);
        let c = drain(WorkloadSpec::ammp().scaled(0.01).with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_rates_that_exceed_probability_one() {
        let mut spec = WorkloadSpec::ammp();
        spec.phases[0].warm_per_kinst = 300.0;
        spec.phases[0].mem_every = 4;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn scaled_keeps_phase_structure() {
        let spec = WorkloadSpec::parser().scaled(0.5);
        assert_eq!(spec.phases.len(), 3);
        assert_eq!(spec.phases[0].instructions, 5_000_000);
    }
}
