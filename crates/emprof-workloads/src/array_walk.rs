//! The array-walk application of Section III-B (Figs. 2 and 4).
//!
//! "A small application was created that performs loads from different
//! cache lines in an array. The size of the array can be changed in order
//! to produce cache misses in different levels of the cache hierarchy."
//!
//! Each load's value is consumed immediately by an ALU instruction, so the
//! pipeline stalls for the full access latency — making the L1-miss/LLC-hit
//! stall (brief, Fig. 2a) and the LLC-miss stall (long, Fig. 2b) cleanly
//! visible in the power signal.

use emprof_sim::isa::{Inst, Program, ProgramError, Reg};

/// Which cache level the walk is sized to miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissLevel {
    /// Array fits in the L1 D$: no misses after warm-up.
    L1Resident,
    /// Array exceeds L1 but fits the LLC: L1 misses that hit the LLC
    /// (Fig. 2a's brief stalls).
    LlcHit,
    /// Array exceeds the LLC: every pass misses to memory (Fig. 2b's long
    /// stalls).
    LlcMiss,
}

/// Configuration of the array walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayWalkConfig {
    /// Array size in bytes (walked in 64-byte strides).
    pub array_bytes: u64,
    /// Number of passes over the array.
    pub passes: i64,
    /// Base address of the array.
    pub base: u64,
    /// Iterations of a small compute loop between elements, separating
    /// consecutive stalls in the captured signal (the real application's
    /// per-element work).
    pub work_iters: i64,
}

impl ArrayWalkConfig {
    /// Sizes the array to produce misses at the requested level for the
    /// given cache capacities.
    pub fn for_level(level: MissLevel, l1_bytes: u64, llc_bytes: u64) -> Self {
        let array_bytes = match level {
            MissLevel::L1Resident => l1_bytes / 2,
            MissLevel::LlcHit => (l1_bytes * 4).min(llc_bytes / 2),
            MissLevel::LlcMiss => llc_bytes * 4,
        };
        ArrayWalkConfig {
            array_bytes,
            passes: 3,
            base: 0x2000_0000,
            work_iters: 40,
        }
    }

    /// Number of cache lines walked per pass.
    pub fn lines(&self) -> u64 {
        self.array_bytes / 64
    }

    /// Builds the walk program: `passes` passes of dependent loads over
    /// `lines()` distinct cache lines.
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`] from assembly.
    pub fn build(&self) -> Result<Program, ProgramError> {
        let mut b = Program::builder();
        let base = Reg(1);
        let i = Reg(2);
        let limit = Reg(3);
        let addr = Reg(4);
        let val = Reg(5);
        let sink = Reg(6);
        let pass = Reg(7);

        b.push(Inst::Li(base, self.base as i64));
        b.push(Inst::Li(pass, self.passes));
        let pass_top = b.label();
        b.push(Inst::Li(i, 0));
        b.push(Inst::Li(limit, self.lines() as i64));
        let top = b.label();
        b.push(Inst::Slli(addr, i, 6));
        b.push(Inst::Add(addr, addr, base));
        b.push(Inst::Ld(val, addr, 0));
        // Immediate use: the pipeline must wait for the load.
        b.push(Inst::Add(sink, val, val));
        // Per-element work, so consecutive stalls are separated in the
        // signal (otherwise back-to-back misses blur into one long dip).
        // The body carries real ALU activity so the loop's signal level
        // sits clearly above the stall floor.
        let work = Reg(8);
        let (a, c, d) = (Reg(9), Reg(10), Reg(11));
        b.push(Inst::Li(work, self.work_iters));
        let work_top = b.label();
        b.push(Inst::Addi(work, work, -1));
        b.push(Inst::Xor(a, c, d));
        b.push(Inst::Add(c, c, a));
        b.push(Inst::Sub(d, d, a));
        b.push(Inst::Xor(a, c, d));
        b.push(Inst::Add(c, c, a));
        b.push(Inst::Bne(work, Reg::ZERO, work_top));
        b.push(Inst::Addi(i, i, 1));
        b.push(Inst::Blt(i, limit, top));
        b.push(Inst::Addi(pass, pass, -1));
        b.push(Inst::Bne(pass, Reg::ZERO, pass_top));
        b.push(Inst::Halt);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_sim::{DeviceModel, Interpreter, Simulator, StallCause};

    fn run(level: MissLevel) -> emprof_sim::SimResult {
        let mut device = DeviceModel::sesc_like();
        device.dram.refresh = emprof_dram::RefreshConfig::disabled();
        let cfg = ArrayWalkConfig::for_level(
            level,
            device.l1d.size_bytes,
            device.llc.size_bytes,
        );
        let program = cfg.build().unwrap();
        Simulator::new(device)
            .with_max_cycles(400_000_000)
            .run(Interpreter::new(&program))
    }

    #[test]
    fn l1_resident_walk_stops_missing() {
        let r = run(MissLevel::L1Resident);
        // Only the cold pass misses; later passes hit L1.
        let lines = (DeviceModel::sesc_like().l1d.size_bytes / 2) / 64;
        assert!(r.stats.l1d_misses <= lines + 16);
    }

    #[test]
    fn llc_hit_walk_misses_l1_but_not_llc() {
        let r = run(MissLevel::LlcHit);
        let lines = ArrayWalkConfig::for_level(
            MissLevel::LlcHit,
            32 << 10,
            256 << 10,
        )
        .lines();
        // L1 misses on every pass (array 4x L1), LLC misses only cold.
        assert!(r.stats.l1d_misses > 2 * lines, "l1d {}", r.stats.l1d_misses);
        assert!(
            r.stats.llc_misses < lines + 32,
            "llc {} vs lines {lines}",
            r.stats.llc_misses
        );
        // The brief stalls are LlcHit-class (Fig. 2a).
        let hit_stalls = r
            .ground_truth
            .stalls()
            .iter()
            .filter(|s| s.cause == StallCause::LlcHit)
            .count();
        assert!(hit_stalls > 0, "expected brief LLC-hit stalls");
    }

    #[test]
    fn llc_miss_walk_misses_every_pass() {
        let r = run(MissLevel::LlcMiss);
        let lines = ArrayWalkConfig::for_level(
            MissLevel::LlcMiss,
            32 << 10,
            256 << 10,
        )
        .lines();
        // 3 passes over 4x the LLC: essentially every access misses.
        assert!(
            r.stats.llc_misses > 2 * lines,
            "llc misses {} vs {} lines/pass",
            r.stats.llc_misses,
            lines
        );
    }

    #[test]
    fn miss_stalls_are_order_of_magnitude_longer_than_hit_stalls() {
        // The Fig. 2 contrast: LLC-hit stalls are brief, LLC-miss stalls
        // an order of magnitude longer.
        let hit_run = run(MissLevel::LlcHit);
        let miss_run = run(MissLevel::LlcMiss);
        let avg = |r: &emprof_sim::SimResult, want_llc: bool| -> f64 {
            let v: Vec<u64> = r
                .ground_truth
                .stalls()
                .iter()
                .filter(|s| match s.cause {
                    StallCause::LlcMiss { .. } => want_llc,
                    StallCause::LlcHit => !want_llc,
                    StallCause::Other => false,
                })
                .map(|s| s.duration())
                .collect();
            v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
        };
        let hit_stall = avg(&hit_run, false);
        let miss_stall = avg(&miss_run, true);
        assert!(
            miss_stall > 5.0 * hit_stall,
            "miss stalls ({miss_stall}) should dwarf hit stalls ({hit_stall})"
        );
    }
}
