//! The mini load/store ISA executed by the [`crate::Interpreter`].
//!
//! The engineered microbenchmarks of the paper (Fig. 6) compute their own
//! access patterns at run time (an in-program pseudo-random generator picks
//! a page and cache line per access), so they must execute on a *real*
//! instruction set with real register values — a statistical trace
//! generator cannot express them faithfully. This module defines a small
//! RISC-style ISA with just enough coverage for those workloads: integer
//! ALU operations, loads/stores, conditional branches, plus two simulator
//! pseudo-instructions ([`Inst::Marker`] and [`Inst::Halt`]).

use std::fmt;

/// A register name, `Reg(0)` through `Reg(31)`. `Reg(0)` reads as zero and
/// ignores writes, like RISC-V's `x0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Whether this is a valid register name.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch/jump target produced by [`ProgramBuilder::label`] or
/// [`ProgramBuilder::forward_label`].
///
/// Labels are indices into the builder's label table; [`ProgramBuilder::build`]
/// resolves them to instruction positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// One mini-ISA instruction.
///
/// Three-register forms are `op(dst, src1, src2)`; immediate forms are
/// `op(dst, src, imm)`. Memory operands are `(reg, base, offset)` with the
/// effective address `regs[base] + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `dst = src1 + src2`
    Add(Reg, Reg, Reg),
    /// `dst = src1 - src2`
    Sub(Reg, Reg, Reg),
    /// `dst = src1 * src2` (multi-cycle latency in the pipeline)
    Mul(Reg, Reg, Reg),
    /// `dst = src1 & src2`
    And(Reg, Reg, Reg),
    /// `dst = src1 | src2`
    Or(Reg, Reg, Reg),
    /// `dst = src1 ^ src2`
    Xor(Reg, Reg, Reg),
    /// `dst = src1 << (src2 & 63)`
    Sll(Reg, Reg, Reg),
    /// `dst = src1 >> (src2 & 63)` (logical)
    Srl(Reg, Reg, Reg),
    /// `dst = src + imm`
    Addi(Reg, Reg, i64),
    /// `dst = src & imm`
    Andi(Reg, Reg, i64),
    /// `dst = src << imm` (imm masked to 63)
    Slli(Reg, Reg, u8),
    /// `dst = src >> imm` (logical, imm masked to 63)
    Srli(Reg, Reg, u8),
    /// `dst = imm` (pseudo-instruction; executes as one ALU op)
    Li(Reg, i64),
    /// `dst = mem[base + offset]` (64-bit load)
    Ld(Reg, Reg, i64),
    /// `mem[base + offset] = src` (64-bit store)
    St(Reg, Reg, i64),
    /// Branch to `target` if `src1 == src2`
    Beq(Reg, Reg, Label),
    /// Branch to `target` if `src1 != src2`
    Bne(Reg, Reg, Label),
    /// Branch to `target` if `src1 < src2` (signed)
    Blt(Reg, Reg, Label),
    /// Branch to `target` if `src1 >= src2` (signed)
    Bge(Reg, Reg, Label),
    /// Unconditional jump to `target`
    J(Label),
    /// No operation.
    Nop,
    /// Simulator pseudo-instruction: records the current cycle under the
    /// given marker ID in the ground truth, with zero timing cost. The
    /// microbenchmark brackets its miss-generating section with markers so
    /// the harness can isolate that section in the signal, mirroring how
    /// the paper isolates it between two recognizable "blank loops".
    Marker(u32),
    /// Stops execution.
    Halt,
}

impl Inst {
    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        use Inst::*;
        match *self {
            Add(d, ..) | Sub(d, ..) | Mul(d, ..) | And(d, ..) | Or(d, ..) | Xor(d, ..)
            | Sll(d, ..) | Srl(d, ..) | Addi(d, ..) | Andi(d, ..) | Slli(d, ..)
            | Srli(d, ..) | Li(d, ..) | Ld(d, ..) => Some(d),
            _ => None,
        }
    }

    /// The source registers read by this instruction.
    pub fn srcs(&self) -> Vec<Reg> {
        use Inst::*;
        match *self {
            Add(_, a, b) | Sub(_, a, b) | Mul(_, a, b) | And(_, a, b) | Or(_, a, b)
            | Xor(_, a, b) | Sll(_, a, b) | Srl(_, a, b) => vec![a, b],
            Addi(_, a, _) | Andi(_, a, _) | Slli(_, a, _) | Srli(_, a, _) | Ld(_, a, _) => {
                vec![a]
            }
            St(s, a, _) => vec![s, a],
            Beq(a, b, _) | Bne(a, b, _) | Blt(a, b, _) | Bge(a, b, _) => vec![a, b],
            Li(..) | J(..) | Nop | Marker(..) | Halt => vec![],
        }
    }
}

/// Errors detected when building or validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch references a label that was never bound to a position.
    UnboundLabel(usize),
    /// An instruction names a register outside `r0..r31`.
    InvalidRegister {
        /// Instruction index.
        index: usize,
        /// The offending register.
        reg: Reg,
    },
    /// The program has no `Halt`, so execution would run off the end.
    MissingHalt,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
            ProgramError::InvalidRegister { index, reg } => {
                write!(f, "instruction {index} names invalid register {reg}")
            }
            ProgramError::MissingHalt => write!(f, "program has no halt instruction"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An executable mini-ISA program with all labels resolved.
///
/// Construct through [`Program::builder`]. Instruction `i` nominally lives
/// at byte address `base_pc + 4 * i`; the base defaults to `0x1_0000` and
/// can be relocated with [`ProgramBuilder::base_pc`] so that different
/// code regions (e.g. the three *parser* functions of Table V) occupy
/// distinct instruction-cache footprints.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    targets: Vec<usize>, // resolved label table
    base_pc: u64,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// The instruction at position `index`.
    pub fn inst(&self, index: usize) -> Option<Inst> {
        self.insts.get(index).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The byte address of instruction `index`.
    pub fn pc_of(&self, index: usize) -> u64 {
        self.base_pc + 4 * index as u64
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn resolve(&self, label: Label) -> usize {
        self.targets[label.0]
    }
}

/// Incremental [`Program`] constructor with label support.
///
/// # Example
///
/// ```
/// use emprof_sim::isa::{Inst, Program, Reg};
///
/// let mut b = Program::builder();
/// let counter = Reg(1);
/// b.push(Inst::Li(counter, 5));
/// let top = b.label();                       // bind a label here
/// b.push(Inst::Addi(counter, counter, -1));
/// b.push(Inst::Bne(counter, Reg::ZERO, top)); // loop back
/// b.push(Inst::Halt);
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), emprof_sim::isa::ProgramError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    targets: Vec<Option<usize>>,
    base_pc: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default base PC.
    pub fn new() -> Self {
        ProgramBuilder {
            insts: Vec::new(),
            targets: Vec::new(),
            base_pc: 0x1_0000,
        }
    }

    /// Sets the byte address of the first instruction.
    pub fn base_pc(&mut self, pc: u64) -> &mut Self {
        self.base_pc = pc;
        self
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Creates a label bound to the *next* instruction to be pushed.
    pub fn label(&mut self) -> Label {
        self.targets.push(Some(self.insts.len()));
        Label(self.targets.len() - 1)
    }

    /// Creates an unbound label for a forward branch; bind it later with
    /// [`ProgramBuilder::bind`].
    pub fn forward_label(&mut self) -> Label {
        self.targets.push(None);
        Label(self.targets.len() - 1)
    }

    /// Binds a forward label to the next instruction to be pushed.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (rebinding is almost certainly
    /// a builder bug).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.targets[label.0];
        assert!(slot.is_none(), "label {} bound twice", label.0);
        *slot = Some(self.insts.len());
        self
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if a label is unbound or out of range, a
    /// register is invalid, or the program lacks a `Halt`.
    pub fn build(&self) -> Result<Program, ProgramError> {
        let mut targets = Vec::with_capacity(self.targets.len());
        for (i, t) in self.targets.iter().enumerate() {
            match t {
                Some(pos) => targets.push(*pos),
                None => return Err(ProgramError::UnboundLabel(i)),
            }
        }
        for (index, inst) in self.insts.iter().enumerate() {
            for reg in inst.srcs().into_iter().chain(inst.dst()) {
                if !reg.is_valid() {
                    return Err(ProgramError::InvalidRegister { index, reg });
                }
            }
        }
        if !self.insts.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(ProgramError::MissingHalt);
        }
        Ok(Program {
            insts: self.insts.clone(),
            targets,
            base_pc: self.base_pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_loop() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), 3));
        let top = b.label();
        b.push(Inst::Addi(Reg(1), Reg(1), -1));
        b.push(Inst::Bne(Reg(1), Reg::ZERO, top));
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.resolve(top), 1);
    }

    #[test]
    fn forward_label_binds() {
        let mut b = Program::builder();
        let end = b.forward_label();
        b.push(Inst::Beq(Reg::ZERO, Reg::ZERO, end));
        b.push(Inst::Nop);
        b.bind(end);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.resolve(end), 2);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = Program::builder();
        let end = b.forward_label();
        b.push(Inst::J(end));
        b.push(Inst::Halt);
        assert_eq!(b.build().unwrap_err(), ProgramError::UnboundLabel(0));
    }

    #[test]
    fn invalid_register_is_error() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(40), 1));
        b.push(Inst::Halt);
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::InvalidRegister { index: 0, .. }
        ));
    }

    #[test]
    fn missing_halt_is_error() {
        let mut b = Program::builder();
        b.push(Inst::Nop);
        assert_eq!(b.build().unwrap_err(), ProgramError::MissingHalt);
    }

    #[test]
    fn pc_layout() {
        let mut b = Program::builder();
        b.base_pc(0x4000);
        b.push(Inst::Nop);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.pc_of(0), 0x4000);
        assert_eq!(p.pc_of(1), 0x4004);
    }

    #[test]
    fn dst_and_srcs_extraction() {
        let i = Inst::Add(Reg(3), Reg(1), Reg(2));
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.srcs(), vec![Reg(1), Reg(2)]);

        let s = Inst::St(Reg(5), Reg(6), 8);
        assert_eq!(s.dst(), None);
        assert_eq!(s.srcs(), vec![Reg(5), Reg(6)]);

        let m = Inst::Marker(7);
        assert_eq!(m.dst(), None);
        assert!(m.srcs().is_empty());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_label_panics() {
        let mut b = Program::builder();
        let l = b.label();
        b.bind(l);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::InvalidRegister {
            index: 3,
            reg: Reg(99),
        };
        assert!(e.to_string().contains("r99"));
    }
}
