//! Hardware stride prefetcher.
//!
//! Table I / Section VI-A: the Samsung device's processor has a hardware
//! prefetcher, "so it is able to avoid some of the LLC misses that occur in
//! the Olimex device". This module models a classic PC-indexed stride
//! prefetcher: it watches demand misses, learns per-PC strides, and once a
//! stride is confirmed it prefetches ahead. The paper's microbenchmark
//! randomizes its access pattern precisely "to defeat any stride-based
//! pre-fetching", which this model faithfully rewards.

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of PC-indexed tracking entries.
    pub table_entries: usize,
    /// Consecutive same-stride observations required before prefetching.
    pub confidence_threshold: u8,
    /// How many lines ahead to prefetch once confident.
    pub degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            table_entries: 64,
            confidence_threshold: 2,
            degree: 3,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// PC-indexed stride predictor.
///
/// # Example
///
/// ```
/// use emprof_sim::prefetch::{PrefetchConfig, StridePrefetcher};
///
/// let mut pf = StridePrefetcher::new(PrefetchConfig::default());
/// // A streaming load at one PC with a fixed 64-byte stride...
/// assert!(pf.observe(0x100, 0x1000).is_empty());
/// assert!(pf.observe(0x100, 0x1040).is_empty());
/// assert!(pf.observe(0x100, 0x1080).is_empty());
/// // ...eventually triggers prefetches of the lines ahead.
/// let prefetches = pf.observe(0x100, 0x10C0);
/// assert_eq!(prefetches, vec![0x1100, 0x1140, 0x1180]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: PrefetchConfig,
    table: Vec<StrideEntry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with an empty predictor table.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` or `degree` is zero.
    pub fn new(config: PrefetchConfig) -> Self {
        assert!(config.table_entries > 0, "predictor table must be nonzero");
        assert!(config.degree > 0, "prefetch degree must be nonzero");
        StridePrefetcher {
            config,
            table: vec![StrideEntry::default(); config.table_entries],
            issued: 0,
        }
    }

    /// Observes a demand access by `pc` to `addr`, returning the list of
    /// addresses that should be prefetched (possibly empty).
    ///
    /// Prefetch addresses are `addr + k*stride` for `k = 1..=degree` once
    /// the stride has repeated `confidence_threshold` times. A stride of
    /// zero (the same address again) never prefetches.
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let idx = (pc as usize / 4) % self.table.len();
        let entry = &mut self.table[idx];
        if !entry.valid || entry.pc != pc {
            *entry = StrideEntry {
                pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let stride = addr.wrapping_sub(entry.last_addr) as i64;
        if stride != 0 && stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_addr = addr;
        if entry.confidence >= self.config.confidence_threshold && entry.stride != 0 {
            let stride = entry.stride;
            let out: Vec<u64> = (1..=self.config.degree as i64)
                .map(|k| addr.wrapping_add((stride * k) as u64))
                .collect();
            self.issued += out.len() as u64;
            return out;
        }
        Vec::new()
    }

    /// Total prefetch addresses issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The configuration in use.
    pub fn config(&self) -> PrefetchConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(PrefetchConfig::default())
    }

    #[test]
    fn streaming_pattern_triggers_prefetch() {
        let mut p = pf();
        let mut fired = Vec::new();
        for i in 0..10u64 {
            fired.extend(p.observe(0x500, 0x1_0000 + i * 64));
        }
        assert!(!fired.is_empty());
        // Prefetches continue the stride.
        assert!(fired.iter().all(|a| a % 64 == 0));
        assert!(p.issued() > 0);
    }

    #[test]
    fn random_pattern_never_triggers() {
        let mut p = pf();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 16) % (1 << 30) / 64 * 64;
            assert!(
                p.observe(0x500, addr).is_empty(),
                "random access pattern must defeat the stride prefetcher"
            );
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn negative_stride_is_learned() {
        let mut p = pf();
        let mut fired = Vec::new();
        for i in (0..10u64).rev() {
            fired.extend(p.observe(0x700, 0x2_0000 + i * 64));
        }
        assert!(!fired.is_empty());
        // Prefetch addresses walk downward.
        assert!(fired[0] < 0x2_0000 + 9 * 64);
    }

    #[test]
    fn distinct_pcs_tracked_independently() {
        let mut p = pf();
        for i in 0..6u64 {
            // Two interleaved streams at different (non-aliasing) PCs and
            // strides.
            p.observe(0x100, 0x10_000 + i * 64);
            p.observe(0x204, 0x20_000 + i * 128);
        }
        let a = p.observe(0x100, 0x10_000 + 6 * 64);
        let b = p.observe(0x204, 0x20_000 + 6 * 128);
        assert_eq!(a[0] - (0x10_000 + 6 * 64), 64);
        assert_eq!(b[0] - (0x20_000 + 6 * 128), 128);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        for i in 0..5u64 {
            p.observe(0x100, 0x1000 + i * 64);
        }
        // Break the stride.
        assert!(p.observe(0x100, 0x9_0000).is_empty());
        // One observation at the new stride is not enough to re-fire.
        assert!(p.observe(0x100, 0x9_0040).is_empty());
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = pf();
        for _ in 0..20 {
            assert!(p.observe(0x300, 0x4000).is_empty());
        }
    }

    #[test]
    fn degree_controls_prefetch_count() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            degree: 4,
            ..PrefetchConfig::default()
        });
        let mut last = Vec::new();
        for i in 0..8u64 {
            last = p.observe(0x100, 0x1000 + i * 64);
        }
        assert_eq!(last.len(), 4);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_panics() {
        StridePrefetcher::new(PrefetchConfig {
            degree: 0,
            ..PrefetchConfig::default()
        });
    }
}
