//! The dynamic-instruction interface between programs and the pipeline.
//!
//! The simulator is *functional-first*: instruction semantics (register
//! values, computed addresses, branch outcomes) are resolved by an
//! [`InstructionSource`] before timing simulation, and the pipeline then
//! charges cycles to the resulting dynamic instruction stream. This is the
//! standard decoupled-simulator structure (SESC works the same way) and it
//! lets the SPEC-like workload generators feed the pipeline synthetic
//! streams through the very same interface the real interpreter uses.

use crate::isa::Reg;

/// Execution class of a dynamic instruction, with its operands resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynOp {
    /// Single-cycle integer operation.
    Alu {
        /// Destination register, if any.
        dst: Option<Reg>,
        /// Source registers (unused slots are `None`).
        srcs: [Option<Reg>; 2],
    },
    /// Multi-cycle integer multiply.
    Mul {
        /// Destination register.
        dst: Reg,
        /// Source registers.
        srcs: [Option<Reg>; 2],
    },
    /// A load from the resolved effective address.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address register the load depends on (drives pointer-chasing
        /// serialization).
        addr_src: Option<Reg>,
        /// Resolved effective address.
        addr: u64,
    },
    /// A store to the resolved effective address.
    Store {
        /// Data and address source registers.
        srcs: [Option<Reg>; 2],
        /// Resolved effective address.
        addr: u64,
    },
    /// A resolved conditional or unconditional branch.
    Branch {
        /// Source registers compared by the branch.
        srcs: [Option<Reg>; 2],
        /// Whether the branch was taken (taken branches cost a fetch
        /// bubble in the in-order pipeline).
        taken: bool,
    },
    /// Zero-cost simulator marker (see [`crate::isa::Inst::Marker`]).
    Marker(u32),
    /// No operation (occupies an issue slot).
    Nop,
}

impl DynOp {
    /// Destination register written by this operation.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            DynOp::Alu { dst, .. } => dst,
            DynOp::Mul { dst, .. } => Some(dst),
            DynOp::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Source registers this operation must wait for.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            DynOp::Alu { srcs, .. } | DynOp::Mul { srcs, .. } => srcs,
            DynOp::Load { addr_src, .. } => [addr_src, None],
            DynOp::Store { srcs, .. } => srcs,
            DynOp::Branch { srcs, .. } => srcs,
            DynOp::Marker(_) | DynOp::Nop => [None, None],
        }
    }

    /// Whether this operation accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, DynOp::Load { .. } | DynOp::Store { .. })
    }
}

/// One dynamic (executed) instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// The byte address the instruction was fetched from; drives the
    /// instruction-cache model.
    pub pc: u64,
    /// The resolved operation.
    pub op: DynOp,
}

/// A stream of dynamic instructions for the pipeline to time.
///
/// Implementations: [`crate::Interpreter`] (real mini-ISA execution) and
/// the trace generators in the workloads crate.
pub trait InstructionSource {
    /// Produces the next dynamic instruction, or `None` when the program
    /// has halted.
    fn next_inst(&mut self) -> Option<DynInst>;
}

/// Adapts any iterator of [`DynInst`] into an [`InstructionSource`];
/// convenient for tests and synthetic traces.
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = DynInst>> IterSource<I> {
    /// Wraps an iterator.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = DynInst>> InstructionSource for IterSource<I> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.iter.next()
    }
}

impl<I: Iterator<Item = DynInst>> From<I> for IterSource<I> {
    fn from(iter: I) -> Self {
        IterSource::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynop_dst_and_srcs() {
        let load = DynOp::Load {
            dst: Reg(5),
            addr_src: Some(Reg(3)),
            addr: 0x100,
        };
        assert_eq!(load.dst(), Some(Reg(5)));
        assert_eq!(load.srcs(), [Some(Reg(3)), None]);
        assert!(load.is_mem());

        let alu = DynOp::Alu {
            dst: Some(Reg(1)),
            srcs: [Some(Reg(2)), Some(Reg(3))],
        };
        assert!(!alu.is_mem());
        assert_eq!(alu.dst(), Some(Reg(1)));

        let branch = DynOp::Branch {
            srcs: [Some(Reg(1)), None],
            taken: true,
        };
        assert_eq!(branch.dst(), None);
    }

    #[test]
    fn iter_source_drains() {
        let insts = vec![
            DynInst {
                pc: 0,
                op: DynOp::Nop,
            },
            DynInst {
                pc: 4,
                op: DynOp::Nop,
            },
        ];
        let mut src = IterSource::new(insts.into_iter());
        assert!(src.next_inst().is_some());
        assert!(src.next_inst().is_some());
        assert!(src.next_inst().is_none());
    }
}
