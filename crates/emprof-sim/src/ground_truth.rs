//! Ground-truth event traces.
//!
//! Section V-C: the simulator is "enhanced to produce a power consumption
//! trace ... and also to produce a trace of when (in which cycle) each LLC
//! miss is detected and when the resulting stall (if there is a stall)
//! begins and ends". EMPROF's detected stalls are scored against exactly
//! this information.

use std::collections::HashMap;

/// One LLC miss, from detection to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// Line-aligned address that missed.
    pub line_addr: u64,
    /// PC of the instruction that caused the miss (the fetch PC for
    /// instruction misses).
    pub pc: u64,
    /// Whether this was an instruction-fetch miss (I$ path) rather than a
    /// data miss.
    pub is_instr: bool,
    /// Cycle in which the miss was detected at the LLC.
    pub detect_cycle: u64,
    /// Cycle in which the line became available to the core.
    pub complete_cycle: u64,
    /// Whether the memory access collided with DRAM refresh (Fig. 5);
    /// these stall for microseconds and the paper accounts for them
    /// separately.
    pub refresh_collision: bool,
}

impl MissRecord {
    /// Memory latency of this miss in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.complete_cycle.saturating_sub(self.detect_cycle)
    }
}

/// Why the pipeline was fully stalled during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// At least one LLC miss was outstanding: the stalls EMPROF counts.
    LlcMiss {
        /// Whether any of the outstanding misses hit a DRAM refresh.
        refresh: bool,
    },
    /// An L1 miss that hit in the LLC was outstanding (the brief stalls of
    /// Fig. 2a) but no LLC miss was.
    LlcHit,
    /// No cache miss outstanding — dependency or structural stalls.
    Other,
}

/// A maximal run of consecutive fully-stalled cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInterval {
    /// First stalled cycle.
    pub start_cycle: u64,
    /// One past the last stalled cycle.
    pub end_cycle: u64,
    /// Attribution of the stall.
    pub cause: StallCause,
}

impl StallInterval {
    /// Duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// The complete ground-truth record of one simulation.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    misses: Vec<MissRecord>,
    stalls: Vec<StallInterval>,
    markers: HashMap<u32, Vec<u64>>,
}

impl GroundTruth {
    /// Creates an empty record.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Records one LLC miss.
    pub fn push_miss(&mut self, miss: MissRecord) {
        self.misses.push(miss);
    }

    /// Records one completed stall interval.
    pub fn push_stall(&mut self, stall: StallInterval) {
        self.stalls.push(stall);
    }

    /// Records a marker hit at a cycle.
    pub fn push_marker(&mut self, id: u32, cycle: u64) {
        self.markers.entry(id).or_default().push(cycle);
    }

    /// All LLC misses in detection order.
    pub fn misses(&self) -> &[MissRecord] {
        &self.misses
    }

    /// All stall intervals in time order.
    pub fn stalls(&self) -> &[StallInterval] {
        &self.stalls
    }

    /// Number of LLC misses.
    pub fn llc_miss_count(&self) -> usize {
        self.misses.len()
    }

    /// Stall intervals caused by LLC misses, optionally restricted to a
    /// cycle window.
    pub fn llc_stalls(&self) -> impl Iterator<Item = &StallInterval> {
        self.stalls
            .iter()
            .filter(|s| matches!(s.cause, StallCause::LlcMiss { .. }))
    }

    /// Total cycles spent fully stalled with an LLC miss outstanding.
    pub fn llc_stall_cycles(&self) -> u64 {
        self.llc_stalls().map(StallInterval::duration).sum()
    }

    /// Number of distinct LLC-miss-caused stall intervals. Because of MLP
    /// this is typically *smaller* than [`GroundTruth::llc_miss_count`]
    /// (Fig. 3): overlapped misses share one stall and some misses never
    /// stall the core at all.
    pub fn llc_stall_count(&self) -> usize {
        self.llc_stalls().count()
    }

    /// Cycles at which a marker was executed, in order.
    pub fn marker_cycles(&self, id: u32) -> &[u64] {
        self.markers.get(&id).map_or(&[], Vec::as_slice)
    }

    /// The cycle window `[first hit of start_id, first hit of end_id)`, if
    /// both markers fired. The microbenchmark harness uses this to isolate
    /// its miss-generating section.
    pub fn marker_window(&self, start_id: u32, end_id: u32) -> Option<(u64, u64)> {
        let start = *self.marker_cycles(start_id).first()?;
        let end = *self.marker_cycles(end_id).first()?;
        (end > start).then_some((start, end))
    }

    /// Misses detected inside a cycle window.
    pub fn misses_in_window(&self, window: (u64, u64)) -> impl Iterator<Item = &MissRecord> {
        self.misses
            .iter()
            .filter(move |m| m.detect_cycle >= window.0 && m.detect_cycle < window.1)
    }

    /// LLC-miss stall intervals that start inside a cycle window.
    pub fn llc_stalls_in_window(
        &self,
        window: (u64, u64),
    ) -> impl Iterator<Item = &StallInterval> {
        self.llc_stalls()
            .filter(move |s| s.start_cycle >= window.0 && s.start_cycle < window.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(detect: u64, complete: u64) -> MissRecord {
        MissRecord {
            line_addr: 0x1000,
            pc: 0x40,
            is_instr: false,
            detect_cycle: detect,
            complete_cycle: complete,
            refresh_collision: false,
        }
    }

    fn stall(start: u64, end: u64, cause: StallCause) -> StallInterval {
        StallInterval {
            start_cycle: start,
            end_cycle: end,
            cause,
        }
    }

    #[test]
    fn counts_and_durations() {
        let mut gt = GroundTruth::new();
        gt.push_miss(miss(100, 400));
        gt.push_miss(miss(150, 450));
        gt.push_stall(stall(200, 450, StallCause::LlcMiss { refresh: false }));
        gt.push_stall(stall(500, 520, StallCause::LlcHit));
        gt.push_stall(stall(600, 610, StallCause::Other));
        assert_eq!(gt.llc_miss_count(), 2);
        assert_eq!(gt.llc_stall_count(), 1);
        assert_eq!(gt.llc_stall_cycles(), 250);
        assert_eq!(gt.misses()[0].latency_cycles(), 300);
    }

    #[test]
    fn marker_windows() {
        let mut gt = GroundTruth::new();
        gt.push_marker(1, 1000);
        gt.push_marker(2, 5000);
        gt.push_marker(1, 9000); // a second hit is ignored by marker_window
        assert_eq!(gt.marker_window(1, 2), Some((1000, 5000)));
        assert_eq!(gt.marker_window(2, 1), None); // end before start
        assert_eq!(gt.marker_window(1, 3), None); // missing marker
    }

    #[test]
    fn window_filters() {
        let mut gt = GroundTruth::new();
        gt.push_miss(miss(100, 400));
        gt.push_miss(miss(5000, 5300));
        gt.push_stall(stall(120, 400, StallCause::LlcMiss { refresh: false }));
        gt.push_stall(stall(5100, 5300, StallCause::LlcMiss { refresh: true }));
        let w = (0, 1000);
        assert_eq!(gt.misses_in_window(w).count(), 1);
        assert_eq!(gt.llc_stalls_in_window(w).count(), 1);
        assert_eq!(gt.llc_stalls_in_window((0, 10_000)).count(), 2);
    }

    #[test]
    fn empty_marker_is_empty_slice() {
        let gt = GroundTruth::new();
        assert!(gt.marker_cycles(9).is_empty());
    }
}
