//! Unit-level activity power model.
//!
//! Section III-B: the paper collects "the average power consumption for
//! each 20-cycle interval" from the simulator and treats it as the
//! side-channel signal. This module charges per-event energies as the
//! pipeline reports activity and produces a per-cycle power trace; the
//! paper's 20-cycle averaging is [`PowerTrace::averaged`].
//!
//! The absolute numbers are arbitrary units — EMPROF normalizes the signal
//! before detection — but the *ratios* matter: a fully-stalled cycle burns
//! only clock-tree and leakage power, a busy 4-wide cycle several times
//! more, which is precisely the contrast EMPROF detects (Fig. 1).

/// Per-event energy weights (arbitrary units per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Baseline burned every cycle regardless of activity (clock tree +
    /// leakage). This is the "stall floor" of the signal.
    pub base: f64,
    /// Per instruction fetched from the I$.
    pub fetch: f64,
    /// Per simple ALU/branch instruction issued.
    pub alu: f64,
    /// Per multiply issued.
    pub mul: f64,
    /// Per load/store issued (address generation + L1 access).
    pub mem: f64,
    /// Per LLC access (on L1 misses).
    pub llc: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Busy 4-wide cycle: base + ~4*(fetch+alu) ~ 5x the stall floor,
        // matching the qualitative contrast of Figs. 1-2.
        PowerModel {
            base: 1.0,
            fetch: 0.25,
            alu: 0.55,
            mul: 0.85,
            mem: 0.70,
            llc: 0.50,
        }
    }
}

/// Events observed in one cycle; the pipeline fills one of these per cycle
/// and hands it to [`PowerTraceBuilder::record`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Instructions fetched this cycle.
    pub fetched: u32,
    /// Simple ALU/branch instructions issued.
    pub alu_issued: u32,
    /// Multiplies issued.
    pub mul_issued: u32,
    /// Memory operations issued.
    pub mem_issued: u32,
    /// LLC accesses started.
    pub llc_accesses: u32,
}

impl CycleActivity {
    /// Total instructions issued this cycle.
    pub fn issued(&self) -> u32 {
        self.alu_issued + self.mul_issued + self.mem_issued
    }
}

/// Accumulates per-cycle power samples.
#[derive(Debug, Clone)]
pub struct PowerTraceBuilder {
    model: PowerModel,
    samples: Vec<f32>,
}

impl PowerTraceBuilder {
    /// Creates a builder with the given weights.
    pub fn new(model: PowerModel) -> Self {
        PowerTraceBuilder {
            model,
            samples: Vec::new(),
        }
    }

    /// Converts one cycle's activity into a power sample and appends it.
    pub fn record(&mut self, activity: &CycleActivity) {
        let m = &self.model;
        let p = m.base
            + m.fetch * activity.fetched as f64
            + m.alu * activity.alu_issued as f64
            + m.mul * activity.mul_issued as f64
            + m.mem * activity.mem_issued as f64
            + m.llc * activity.llc_accesses as f64;
        self.samples.push(p as f32);
    }

    /// Finalizes the trace.
    pub fn finish(self, clock_hz: f64) -> PowerTrace {
        PowerTrace {
            samples: self.samples,
            clock_hz,
        }
    }

    /// Cycles recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A per-cycle power trace tagged with the clock it was sampled at.
///
/// This is the simulator-side stand-in for the captured EM signal: the
/// EM-synthesis crate consumes it as the emission envelope, and EMPROF can
/// also analyze it directly (the paper's Section V-C validation path).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    samples: Vec<f32>,
    clock_hz: f64,
}

impl PowerTrace {
    /// Wraps raw per-cycle samples.
    pub fn from_samples(samples: Vec<f32>, clock_hz: f64) -> Self {
        PowerTrace { samples, clock_hz }
    }

    /// Per-cycle samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// The simulated core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Trace length in cycles.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Averages the trace over `cycles_per_sample`-cycle intervals — the
    /// paper's "average power consumption for each 20-cycle interval",
    /// giving a 50 MHz-equivalent signal for a 1 GHz core. The trailing
    /// partial interval, if any, is averaged over its actual length.
    ///
    /// Returns the averaged samples as `f64` together with the effective
    /// sample rate in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_sample == 0`.
    pub fn averaged(&self, cycles_per_sample: usize) -> (Vec<f64>, f64) {
        assert!(cycles_per_sample > 0, "cycles_per_sample must be nonzero");
        let out: Vec<f64> = self
            .samples
            .chunks(cycles_per_sample)
            .map(|c| c.iter().map(|&v| v as f64).sum::<f64>() / c.len() as f64)
            .collect();
        (out, self.clock_hz / cycles_per_sample as f64)
    }

    /// The samples widened to `f64` (the receiver chain works in `f64`).
    pub fn to_f64(&self) -> Vec<f64> {
        self.samples.iter().map(|&v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cycles_sit_at_base() {
        let mut b = PowerTraceBuilder::new(PowerModel::default());
        b.record(&CycleActivity::default());
        let trace = b.finish(1e9);
        assert!((trace.samples()[0] as f64 - PowerModel::default().base).abs() < 1e-6);
    }

    #[test]
    fn busy_cycles_burn_more() {
        let mut b = PowerTraceBuilder::new(PowerModel::default());
        b.record(&CycleActivity::default());
        b.record(&CycleActivity {
            fetched: 4,
            alu_issued: 3,
            mem_issued: 1,
            ..Default::default()
        });
        let trace = b.finish(1e9);
        let stall = trace.samples()[0];
        let busy = trace.samples()[1];
        assert!(
            busy > 3.0 * stall,
            "busy ({busy}) should dwarf stall ({stall})"
        );
    }

    #[test]
    fn averaged_matches_paper_convention() {
        // 1 GHz trace averaged over 20 cycles -> 50 MHz samples.
        let samples = vec![2.0f32; 200];
        let trace = PowerTrace::from_samples(samples, 1e9);
        let (avg, rate) = trace.averaged(20);
        assert_eq!(avg.len(), 10);
        assert!((rate - 50e6).abs() < 1.0);
        assert!(avg.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn averaged_partial_tail() {
        let trace = PowerTrace::from_samples(vec![1.0, 1.0, 1.0, 5.0, 5.0], 1e9);
        let (avg, _) = trace.averaged(3);
        assert_eq!(avg.len(), 2);
        assert!((avg[0] - 1.0).abs() < 1e-9);
        assert!((avg[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn issued_sums_classes() {
        let act = CycleActivity {
            fetched: 4,
            alu_issued: 2,
            mul_issued: 1,
            mem_issued: 1,
            llc_accesses: 0,
        };
        assert_eq!(act.issued(), 4);
    }

    #[test]
    #[should_panic(expected = "cycles_per_sample")]
    fn zero_average_window_panics() {
        PowerTrace::from_samples(vec![1.0], 1e9).averaged(0);
    }
}
