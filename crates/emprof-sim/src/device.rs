//! Device models: the three evaluation targets of Table I plus the paper's
//! SESC-like simulator configuration.
//!
//! | Device  | Processor                  | Frequency | LLC     | Prefetcher |
//! |---------|----------------------------|-----------|---------|------------|
//! | Alcatel | Snapdragon MSM8909 (A7)    | 1.1 GHz   | 1 MiB   | no         |
//! | Samsung | Snapdragon MSM7625A (A5)   | 800 MHz   | 256 KiB | yes        |
//! | Olimex  | Allwinner A13 (A8)         | 1.008 GHz | 256 KiB | no         |
//!
//! The paper's cross-device findings (Section VI-A) are driven by exactly
//! these parameters: the Alcatel's 4x-larger LLC keeps its miss counts an
//! order of magnitude lower; the Samsung's prefetcher removes some misses
//! the Olimex suffers; and the Olimex's higher clock against a similar
//! memory latency (in ns) makes each miss cost more cycles and hides fewer
//! of them. The phones are multi-core parts, but the workloads are
//! single-threaded and the paper profiles a single core; we model one core.

use emprof_dram::DramConfig;

use crate::bpred::BpredConfig;
use crate::cache::{CacheConfig, Replacement};
use crate::power::PowerModel;
use crate::prefetch::PrefetchConfig;

/// Full configuration of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Human-readable device name (used in reports).
    pub name: &'static str,
    /// Core clock frequency in Hz.
    pub clock_hz: f64,
    /// Superscalar width (instructions fetched/issued per cycle).
    pub width: usize,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified last-level cache geometry.
    pub llc: CacheConfig,
    /// Load-to-use latency on an L1 hit (cycles).
    pub l1_hit_latency: u64,
    /// Additional latency of an LLC hit (cycles).
    pub llc_hit_latency: u64,
    /// Fixed SoC interconnect + memory-controller overhead added to every
    /// DRAM access (ns). Brings total miss latency to the ~300 ns the
    /// paper observes on the Olimex board.
    pub mem_overhead_ns: f64,
    /// Miss-status holding registers: maximum outstanding data-miss lines
    /// (the MLP of Fig. 3a).
    pub mshrs: usize,
    /// In-order completion window: maximum instructions in flight past an
    /// incomplete older instruction. `Some(n)` models the simple cores of
    /// the evaluation devices, which stall within ~n/width cycles of a
    /// load miss regardless of whether the value is used (in-order
    /// writeback); `None` models a scoreboarded core that stalls only on
    /// dependencies and structural hazards (the SESC configuration, which
    /// is what lets some misses produce no stall at all — Fig. 3a).
    pub inflight_window: Option<usize>,
    /// Store buffer entries.
    pub store_buffer: usize,
    /// Fetch-queue capacity in instructions; deeper queues let the core
    /// keep issuing longer into a miss.
    pub fetch_queue: usize,
    /// Extra cycles of fetch bubble after a taken branch (with a
    /// predictor configured, this is the *misprediction* refill instead;
    /// correctly predicted taken branches redirect in one cycle).
    pub branch_penalty: u64,
    /// Optional bimodal branch predictor (an extension beyond the paper's
    /// simple-core model; all presets leave it off — see `ablate_branch_predictor`).
    pub branch_predictor: Option<BpredConfig>,
    /// Hardware prefetcher, if the device has one.
    pub prefetcher: Option<PrefetchConfig>,
    /// DRAM device + controller configuration.
    pub dram: DramConfig,
    /// Power-model weights.
    pub power: PowerModel,
}

impl DeviceModel {
    /// The configuration the paper uses for validation: a 4-wide in-order
    /// processor with two cache levels using random replacement, mimicking
    /// the Olimex A13 board (Section III-B, V-C). The 32-entry in-order
    /// completion window lets the core run a few cycles past a miss
    /// (Section II-B's "averted for ... fewer cycles" on in-order cores)
    /// while still producing a distinct stall for essentially every miss,
    /// and the blocking data cache (one MSHR, like the A8 it mimics)
    /// gives each miss its own stall.
    pub fn sesc_like() -> Self {
        DeviceModel {
            name: "sesc-sim",
            clock_hz: 1.0e9,
            width: 4,
            l1i: cache(32 << 10, 4),
            l1d: cache(32 << 10, 4),
            llc: cache(256 << 10, 8),
            l1_hit_latency: 2,
            llc_hit_latency: 20,
            mem_overhead_ns: 230.0,
            mshrs: 1,
            inflight_window: Some(32),
            store_buffer: 4,
            fetch_queue: 24,
            branch_penalty: 2,
            branch_predictor: None,
            prefetcher: None,
            dram: DramConfig::h5tq2g63bfr(),
            power: PowerModel::default(),
        }
    }

    /// A variant of [`DeviceModel::sesc_like`] with four MSHRs and a
    /// scoreboard-only pipeline (no in-order completion window), used to
    /// reproduce the MLP phenomena of Fig. 3: with several misses in
    /// flight and stalls driven purely by dependencies, overlapped misses
    /// share one stall and some misses produce no individually
    /// attributable stall at all.
    pub fn mlp_capable() -> Self {
        DeviceModel {
            name: "sesc-mlp",
            mshrs: 4,
            inflight_window: None,
            ..DeviceModel::sesc_like()
        }
    }

    /// Olimex A13-OLinuXino-MICRO: Cortex-A8 at 1.008 GHz, 256 KiB LLC,
    /// no prefetcher. The A8's data cache blocks on a miss (hit-under-miss
    /// only), hence a single MSHR — which is why each microbenchmark miss
    /// produces its own distinct dip in Fig. 7.
    pub fn olimex() -> Self {
        DeviceModel {
            name: "olimex",
            clock_hz: 1.008e9,
            width: 2,
            mshrs: 1,
            inflight_window: Some(12),
            fetch_queue: 16,
            ..DeviceModel::sesc_like()
        }
    }

    /// Alcatel Ideal: Cortex-A7 at 1.1 GHz with a 1 MiB LLC and a newer,
    /// faster LPDDR memory system. The large LLC keeps its miss counts an
    /// order of magnitude below the other devices in Table IV, and the
    /// shorter memory latency keeps its stall-time percentages the lowest
    /// of the three.
    pub fn alcatel() -> Self {
        DeviceModel {
            name: "alcatel",
            clock_hz: 1.1e9,
            width: 2,
            llc: cache(1 << 20, 16),
            llc_hit_latency: 25,
            mem_overhead_ns: 75.0,
            mshrs: 1,
            inflight_window: Some(16),
            fetch_queue: 20,
            prefetcher: Some(PrefetchConfig::default()),
            ..DeviceModel::sesc_like()
        }
    }

    /// Samsung Galaxy Centura: Cortex-A5 at 800 MHz, 256 KiB LLC, with a
    /// hardware stride prefetcher (Section VI-A).
    pub fn samsung() -> Self {
        DeviceModel {
            name: "samsung",
            clock_hz: 0.8e9,
            width: 1,
            llc: cache(256 << 10, 8),
            l1i: cache(16 << 10, 4),
            l1d: cache(16 << 10, 4),
            llc_hit_latency: 18,
            mem_overhead_ns: 220.0,
            mshrs: 1,
            inflight_window: Some(8),
            fetch_queue: 12,
            prefetcher: Some(PrefetchConfig::default()),
            ..DeviceModel::sesc_like()
        }
    }

    /// The three physical evaluation devices of Table I.
    pub fn evaluation_devices() -> Vec<DeviceModel> {
        vec![
            DeviceModel::alcatel(),
            DeviceModel::samsung(),
            DeviceModel::olimex(),
        ]
    }

    /// Converts a cycle count on this device to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz * 1e9
    }

    /// Converts nanoseconds to (fractional) cycles on this device.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.clock_hz / 1e9
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first problem found in any sub-configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("pipeline width must be nonzero".into());
        }
        if self.mshrs == 0 {
            return Err("at least one MSHR is required".into());
        }
        if self.inflight_window == Some(0) {
            return Err("in-flight window must be nonzero when present".into());
        }
        if self.store_buffer == 0 {
            return Err("store buffer must have at least one entry".into());
        }
        if self.fetch_queue < self.width {
            return Err(format!(
                "fetch queue ({}) must hold at least one fetch group ({})",
                self.fetch_queue, self.width
            ));
        }
        if !(self.clock_hz > 0.0 && self.clock_hz.is_finite()) {
            return Err(format!("clock must be positive, got {}", self.clock_hz));
        }
        if !(self.mem_overhead_ns >= 0.0 && self.mem_overhead_ns.is_finite()) {
            return Err("memory overhead must be non-negative".into());
        }
        if let Some(bp) = &self.branch_predictor {
            bp.validate().map_err(|e| format!("branch predictor: {e}"))?;
        }
        self.l1i.validate().map_err(|e| format!("l1i: {e}"))?;
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        self.llc.validate().map_err(|e| format!("llc: {e}"))?;
        self.dram.validate().map_err(|e| format!("dram: {e}"))?;
        Ok(())
    }

    /// Approximate total LLC-miss latency in cycles on this device
    /// (LLC lookup + interconnect overhead + worst-case DRAM access).
    pub fn nominal_miss_latency_cycles(&self) -> u64 {
        let dram_ns = self.dram.worst_case_access_ns() + self.mem_overhead_ns;
        self.llc_hit_latency + self.ns_to_cycles(dram_ns).ceil() as u64
    }
}

fn cache(size: u64, ways: usize) -> CacheConfig {
    CacheConfig {
        size_bytes: size,
        ways,
        line_bytes: 64,
        replacement: Replacement::Random,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for d in [
            DeviceModel::sesc_like(),
            DeviceModel::olimex(),
            DeviceModel::alcatel(),
            DeviceModel::samsung(),
        ] {
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn table1_parameters() {
        assert_eq!(DeviceModel::alcatel().llc.size_bytes, 1 << 20);
        assert_eq!(DeviceModel::samsung().llc.size_bytes, 256 << 10);
        assert_eq!(DeviceModel::olimex().llc.size_bytes, 256 << 10);
        assert!((DeviceModel::olimex().clock_hz - 1.008e9).abs() < 1.0);
        assert!((DeviceModel::samsung().clock_hz - 0.8e9).abs() < 1.0);
        assert!((DeviceModel::alcatel().clock_hz - 1.1e9).abs() < 1.0);
        assert!(DeviceModel::samsung().prefetcher.is_some());
        assert!(DeviceModel::olimex().prefetcher.is_none());
        // The A7 in the Alcatel has a stride prefetcher too; the paper
        // only calls out the Samsung/Olimex contrast (same LLC size).
        assert!(DeviceModel::alcatel().prefetcher.is_some());
    }

    #[test]
    fn olimex_miss_latency_near_300ns() {
        // Section III-C: "The stalls produced by most LLC misses lasts
        // around 300 ns" on the Olimex board.
        let d = DeviceModel::olimex();
        let ns = d.cycles_to_ns(d.nominal_miss_latency_cycles());
        assert!(
            (250.0..400.0).contains(&ns),
            "nominal miss latency {ns} ns outside the paper's band"
        );
    }

    #[test]
    fn cycle_time_conversions_round_trip() {
        let d = DeviceModel::olimex();
        let cycles = 1234u64;
        let back = d.ns_to_cycles(d.cycles_to_ns(cycles));
        assert!((back - cycles as f64).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut d = DeviceModel::sesc_like();
        d.width = 0;
        assert!(d.validate().is_err());

        let mut d = DeviceModel::sesc_like();
        d.mshrs = 0;
        assert!(d.validate().is_err());

        let mut d = DeviceModel::sesc_like();
        d.fetch_queue = 1;
        assert!(d.validate().is_err());
    }

    #[test]
    fn evaluation_devices_order_matches_table1() {
        let names: Vec<_> = DeviceModel::evaluation_devices()
            .iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["alcatel", "samsung", "olimex"]);
    }
}
