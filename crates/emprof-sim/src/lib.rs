//! Cycle-accurate in-order CPU and cache-hierarchy simulator.
//!
//! This crate plays the role of the paper's enhanced SESC simulator
//! (Section V-C): a 4-wide in-order superscalar processor with two cache
//! levels (the last level with a random replacement policy), extended to
//! produce
//!
//! * a **per-cycle power-consumption trace** that serves as a side-channel
//!   signal for EMPROF, and
//! * a **ground-truth trace** of when each LLC miss is detected, and when
//!   the resulting full-pipeline stall (if any) begins and ends.
//!
//! The processor model captures the behaviours the paper's analysis relies
//! on: ILP lets the core keep issuing independent instructions during a
//! miss, MLP lets several misses overlap through MSHRs (Fig. 3a), I$ and
//! D$ misses can overlap (Fig. 3b), and once the core runs out of
//! independent work it fully stalls and its switching activity — hence
//! power, hence EM emanation — collapses.
//!
//! Programs come from any [`InstructionSource`]: either the bundled
//! [`Interpreter`] executing mini-ISA [`Program`]s (used for the engineered
//! microbenchmarks, where computed addresses must be real), or synthetic
//! trace generators (used for the SPEC-CPU2000-like workloads).
//!
//! # Example
//!
//! ```
//! use emprof_sim::{DeviceModel, Program, Interpreter, Simulator};
//! use emprof_sim::isa::{Inst, Reg};
//!
//! // A ten-iteration empty loop.
//! let mut p = Program::builder();
//! let r1 = Reg(1);
//! p.push(Inst::Li(r1, 10));
//! let top = p.label();
//! p.push(Inst::Addi(r1, r1, -1));
//! p.push(Inst::Bne(r1, Reg(0), top));
//! p.push(Inst::Halt);
//! let program = p.build()?;
//!
//! let device = DeviceModel::sesc_like();
//! let result = Simulator::new(device).run(Interpreter::new(&program));
//! assert!(result.stats.cycles > 10);
//! # Ok::<(), emprof_sim::isa::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod device;
pub mod ground_truth;
pub mod interp;
pub mod isa;
pub mod memory;
pub mod pipeline;
pub mod power;
pub mod prefetch;
pub mod source;

pub use device::DeviceModel;
pub use ground_truth::{GroundTruth, MissRecord, StallCause, StallInterval};
pub use interp::Interpreter;
pub use isa::Program;
pub use pipeline::{SimResult, SimStats, Simulator};
pub use power::PowerTrace;
pub use source::{DynInst, DynOp, InstructionSource};
