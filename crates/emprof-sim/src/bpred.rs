//! Branch prediction.
//!
//! The baseline pipeline models the paper's simple in-order cores with a
//! fixed taken-branch redirect penalty ("perfect prediction, visible
//! redirect"), which is what gives loops their periodic signal texture.
//! This module adds a classic bimodal predictor as an *opt-in* extension
//! ([`crate::DeviceModel::branch_predictor`]): correctly predicted
//! branches fetch through with a short redirect, mispredictions pay a
//! pipeline refill. The `ablate_branch_predictor` bench quantifies how
//! prediction quality changes both performance and the signal EMPROF
//! sees — mispredict bubbles are a second (shorter) class of dips.

/// Configuration of the bimodal predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Number of two-bit counters (power of two).
    pub entries: usize,
    /// Extra fetch-bubble cycles on a misprediction (on top of the
    /// device's base taken-branch redirect).
    pub mispredict_penalty: u64,
}

impl Default for BpredConfig {
    fn default() -> Self {
        BpredConfig {
            entries: 1024,
            mispredict_penalty: 6,
        }
    }
}

impl BpredConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if `entries` is not a nonzero power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries == 0 || !self.entries.is_power_of_two() {
            return Err(format!(
                "predictor entries must be a nonzero power of two, got {}",
                self.entries
            ));
        }
        Ok(())
    }
}

/// A bimodal (two-bit saturating counter) branch predictor.
///
/// # Example
///
/// ```
/// use emprof_sim::bpred::{BimodalPredictor, BpredConfig};
///
/// let mut p = BimodalPredictor::new(BpredConfig::default());
/// // A loop branch: after two taken outcomes the predictor follows.
/// p.update(0x100, true);
/// p.update(0x100, true);
/// assert!(p.predict(0x100));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    /// Two-bit counters: 0,1 predict not-taken; 2,3 predict taken.
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BpredConfig::validate`].
    pub fn new(config: BpredConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid predictor configuration: {e}"));
        BimodalPredictor {
            counters: vec![1; config.entries],
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts whether the branch at `pc` is taken.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Records the actual outcome and returns whether the prediction made
    /// beforehand was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= 2;
        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        predicted == taken
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 if nothing predicted yet).
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_loop() {
        let mut p = BimodalPredictor::new(BpredConfig::default());
        // 100 taken outcomes: after warm-up every prediction is correct.
        let mut correct = 0;
        for _ in 0..100 {
            if p.update(0x40, true) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "correct {correct}");
        assert!(p.predict(0x40));
    }

    #[test]
    fn loop_exit_mispredicts_once() {
        let mut p = BimodalPredictor::new(BpredConfig::default());
        for _ in 0..50 {
            p.update(0x40, true);
        }
        // The single not-taken exit is a misprediction...
        assert!(!p.update(0x40, false));
        // ...but one outcome does not flip a saturated counter.
        assert!(p.predict(0x40));
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        let mut p = BimodalPredictor::new(BpredConfig::default());
        for i in 0..1000 {
            p.update(0x80, i % 2 == 0);
        }
        // Bimodal cannot learn strict alternation: ~50% mispredictions.
        assert!(p.mispredict_rate() > 0.4, "rate {}", p.mispredict_rate());
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = BimodalPredictor::new(BpredConfig::default());
        for _ in 0..10 {
            p.update(0x100, true);
            p.update(0x104, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x104));
    }

    #[test]
    fn aliasing_is_bounded_by_table_size() {
        let mut p = BimodalPredictor::new(BpredConfig {
            entries: 4,
            mispredict_penalty: 6,
        });
        // pc 0x0 and pc 0x10 alias in a 4-entry table.
        p.update(0x0, true);
        p.update(0x0, true);
        assert!(p.predict(0x10));
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BimodalPredictor::new(BpredConfig::default());
        p.update(0x40, true);
        p.update(0x40, true);
        p.update(0x40, false);
        assert_eq!(p.predictions(), 3);
        assert!(p.mispredictions() >= 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_panics() {
        BimodalPredictor::new(BpredConfig {
            entries: 3,
            mispredict_penalty: 1,
        });
    }
}
