//! Set-associative cache models.
//!
//! The paper's simulator models "two levels of caches with random
//! replacement policies" (Section III-B). Here both random and LRU
//! replacement are implemented — random is the default for the LLC to
//! match the paper, and the difference is one of the ablation benches
//! called out in DESIGN.md.

/// Replacement policy for a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict a uniformly random way (the paper's configuration).
    #[default]
    Random,
    /// Evict the least-recently-used way.
    Lru,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A convenience constructor with 64-byte lines and random replacement.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes: 64,
            replacement: Replacement::Random,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when any dimension is zero, not a power of two
    /// where required, or inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("cache must have at least one way".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size must be a nonzero power of two, got {}",
                self.line_bytes
            ));
        }
        let denom = self.ways as u64 * self.line_bytes;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(format!(
                "size {} is not a multiple of ways*line ({denom})",
                self.size_bytes
            ));
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch, for LRU.
    last_used: u64,
}

/// A set-associative cache with tag state only (the simulator is
/// functional-first, so no data is stored).
///
/// # Example
///
/// ```
/// use emprof_sim::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2), 1);
/// assert!(!c.access(0x40, false)); // cold miss
/// assert!(c.access(0x40, false));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineState>>,
    clock: u64,
    rng_state: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// `seed` drives the random replacement policy; simulations are fully
    /// deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache configuration: {e}"));
        let sets = vec![vec![LineState::default(); config.ways]; config.sets() as usize];
        Cache {
            config,
            sets,
            clock: 0,
            rng_state: seed | 1,
            hits: 0,
            misses: 0,
        }
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set, tag)
    }

    /// Looks up `addr`, allocating the line on a miss (write-allocate).
    /// Returns `true` on hit.
    ///
    /// On a miss the victim way is chosen by the configured replacement
    /// policy; the evicted line's dirtiness is tracked internally but
    /// write-back traffic is folded into the miss latency by the memory
    /// system rather than modeled per-eviction.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = clock;
            line.dirty |= is_write;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = self.choose_victim(set_idx);
        let set = &mut self.sets[set_idx];
        set[victim] = LineState {
            tag,
            valid: true,
            dirty: is_write,
            last_used: clock,
        };
        false
    }

    /// Probes without modifying any state (no allocation, no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts a line unconditionally (used for prefetch fills). Returns
    /// `true` if the line was newly inserted, `false` if already present.
    pub fn insert(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index_tag(addr);
        if self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag) {
            return false;
        }
        let victim = self.choose_victim(set_idx);
        let clock = self.clock;
        self.sets[set_idx][victim] = LineState {
            tag,
            valid: true,
            dirty: false,
            last_used: clock,
        };
        true
    }

    fn choose_victim(&mut self, set_idx: usize) -> usize {
        let ways = self.sets[set_idx].len();
        if let Some(invalid) = self.sets[set_idx].iter().position(|l| !l.valid) {
            return invalid;
        }
        match self.config.replacement {
            Replacement::Random => (self.next_rand() % ways as u64) as usize,
            Replacement::Lru => self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("sets are never empty"),
        }
    }

    /// xorshift64* — deterministic, fast, good enough for victim choice.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Invalidates every line (used between workload phases in tests).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.dirty = false;
            }
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line-aligned base address of the line containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes * self.config.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: usize, replacement: Replacement) -> Cache {
        Cache::new(
            CacheConfig {
                size_bytes: 64 * ways as u64 * 4, // 4 sets
                ways,
                line_bytes: 64,
                replacement,
            },
            7,
        )
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, Replacement::Lru);
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x13F, false)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small(2, Replacement::Lru);
        // Three distinct tags in set 0 of a 2-way cache (set stride = 4*64).
        let stride = 4 * 64;
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // touch 0, making `stride` the LRU line
        c.access(2 * stride, false); // evicts `stride`
        assert!(c.probe(0));
        assert!(!c.probe(stride));
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn random_replacement_eventually_evicts() {
        let mut c = small(4, Replacement::Random);
        let stride = 4 * 64;
        for i in 0..4 {
            c.access(i * stride, false);
        }
        // Overfill the set: some line must go.
        c.access(100 * stride, false);
        let resident = (0..4).filter(|&i| c.probe(i * stride)).count();
        assert_eq!(resident, 3);
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(CacheConfig::new(4096, 4), 3);
        // Two passes over 4x the capacity: second pass still mostly misses.
        for pass in 0..2 {
            for addr in (0..16384u64).step_by(64) {
                c.access(addr, false);
            }
            if pass == 0 {
                assert_eq!(c.misses(), 256);
            }
        }
        assert!(c.hits() < 100, "unexpected hits: {}", c.hits());
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = Cache::new(CacheConfig::new(8192, 4), 3);
        for _ in 0..10 {
            for addr in (0..4096u64).step_by(64) {
                c.access(addr, false);
            }
        }
        // First pass misses (64 lines), everything after hits.
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 9 * 64);
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = small(2, Replacement::Lru);
        assert!(!c.probe(0x500));
        assert!(!c.access(0x500, false)); // still a miss afterwards
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = small(2, Replacement::Lru);
        assert!(c.insert(0x40));
        assert!(!c.insert(0x40));
        assert!(c.probe(0x40));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small(2, Replacement::Lru);
        c.access(0x40, true);
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed: u64| {
            let mut c = Cache::new(CacheConfig::new(1024, 2), seed);
            let mut misses = 0;
            for i in 0..1000u64 {
                if !c.access((i * 8191) % 65536 / 64 * 64, false) {
                    misses += 1;
                }
            }
            misses
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(0, 4).validate().is_err());
        assert!(CacheConfig::new(4096, 0).validate().is_err());
        let mut bad_line = CacheConfig::new(4096, 4);
        bad_line.line_bytes = 48;
        assert!(bad_line.validate().is_err());
        // 3 sets: not a power of two.
        let bad_sets = CacheConfig {
            size_bytes: 3 * 2 * 64,
            ways: 2,
            line_bytes: 64,
            replacement: Replacement::Random,
        };
        assert!(bad_sets.validate().is_err());
        assert!(CacheConfig::new(262_144, 8).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn invalid_geometry_panics_on_construction() {
        Cache::new(CacheConfig::new(1000, 3), 1);
    }
}
