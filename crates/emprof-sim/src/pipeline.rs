//! The in-order superscalar timing pipeline and the top-level simulator.
//!
//! Models the processor class the paper targets (Section II-B): a simple
//! in-order superscalar core, as found in IoT and hand-held devices, that
//! can dispatch multiple instructions per cycle and keep multiple memory
//! requests in flight, but fully stalls once the instruction at the head
//! of the window depends on an outstanding miss or resources run out.
//!
//! Each simulated cycle produces one power sample (see
//! [`crate::power::PowerModel`]) and fully-stalled cycles are aggregated
//! into ground-truth [`StallInterval`]s — the two traces the paper's
//! enhanced SESC emits for EMPROF validation.

use std::collections::VecDeque;

use emprof_dram::CasTrace;
use emprof_obs as obs;

use crate::bpred::BimodalPredictor;
use crate::device::DeviceModel;
use crate::ground_truth::{GroundTruth, MissRecord, StallCause, StallInterval};
use crate::memory::{MemorySystem, MshrFull};
use crate::power::{CycleActivity, PowerTrace, PowerTraceBuilder};
use crate::source::{DynInst, DynOp, InstructionSource};

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions retired (markers excluded).
    pub instructions: u64,
    /// Fully-stalled cycles (no instruction issued).
    pub stall_cycles: u64,
    /// Fully-stalled cycles attributable to LLC misses.
    pub llc_stall_cycles: u64,
    /// Demand LLC misses.
    pub llc_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// LLC misses that collided with DRAM refresh.
    pub refresh_collisions: u64,
    /// Lines prefetched into the LLC.
    pub prefetches: u64,
    /// Branch mispredictions (always 0 without a configured predictor).
    pub branch_mispredicts: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of execution time spent fully stalled on LLC misses —
    /// the "Miss Latency (%Total Time)" column of Table IV.
    pub fn llc_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.llc_stall_cycles as f64 / self.cycles as f64
        }
    }
}

/// Flushes end-of-run simulator statistics into the telemetry registry:
/// per-level cache hit/miss counters, DRAM refresh collisions, and the
/// cycle/instruction totals.
fn flush_sim_metrics(stats: &SimStats, mem: &crate::memory::MemStats) {
    if !obs::is_enabled() {
        return;
    }
    obs::counter_add!("sim.cycles", stats.cycles);
    obs::counter_add!("sim.instructions", stats.instructions);
    obs::counter_add!("sim.stall_cycles", stats.stall_cycles);
    obs::counter_add!("sim.cache.l1d.hit", mem.data_accesses.saturating_sub(mem.l1d_misses));
    obs::counter_add!("sim.cache.l1d.miss", mem.l1d_misses);
    obs::counter_add!("sim.cache.l1i.hit", mem.instr_accesses.saturating_sub(mem.l1i_misses));
    obs::counter_add!("sim.cache.l1i.miss", mem.l1i_misses);
    obs::counter_add!("sim.cache.llc.hit", mem.llc_accesses.saturating_sub(mem.llc_misses));
    obs::counter_add!("sim.cache.llc.miss", mem.llc_misses);
    obs::counter_add!("sim.dram.refresh_collision", mem.refresh_collisions);
    obs::counter_add!("sim.llc.prefetch", mem.prefetches);
}

/// Everything one simulation produces.
#[derive(Debug)]
pub struct SimResult {
    /// Per-cycle power trace (the side-channel signal source).
    pub power: PowerTrace,
    /// Ground-truth miss and stall events.
    pub ground_truth: GroundTruth,
    /// Memory-side CAS/refresh activity (for the Fig. 10 dual-probe
    /// experiment).
    pub cas_trace: CasTrace,
    /// Aggregate counters.
    pub stats: SimStats,
}

/// Default simulation-cycle guard; hitting it almost always means a
/// livelocked workload rather than a legitimately long run.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Cycle-accurate simulator for one [`DeviceModel`].
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Simulator {
    device: DeviceModel,
    max_cycles: u64,
    seed: u64,
}

impl Simulator {
    /// Creates a simulator for a device.
    ///
    /// # Panics
    ///
    /// Panics if the device fails [`DeviceModel::validate`].
    pub fn new(device: DeviceModel) -> Self {
        device
            .validate()
            .unwrap_or_else(|e| panic!("invalid device model: {e}"));
        Simulator {
            device,
            max_cycles: DEFAULT_MAX_CYCLES,
            seed: 0xE0_E0_E0,
        }
    }

    /// Overrides the runaway-cycle guard.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Overrides the seed used by random replacement.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Runs a dynamic instruction stream to completion.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the cycle guard (see
    /// [`Simulator::with_max_cycles`]).
    pub fn run<S: InstructionSource>(&self, source: S) -> SimResult {
        Pipeline::new(&self.device, self.seed).run(source, self.max_cycles)
    }
}

/// What kind of miss, if any, is responsible for a blockage (internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum MissKind {
    /// An LLC miss (to memory); `refresh` marks a refresh collision.
    Llc {
        /// Whether the memory access collided with DRAM refresh.
        refresh: bool,
    },
    /// An L1 miss that hit in the LLC.
    L1,
    /// Not a miss (compute dependency, branch bubble, ...).
    #[default]
    None,
}

impl MissKind {
    fn from_access(info: &crate::memory::AccessInfo) -> MissKind {
        if info.llc_miss {
            MissKind::Llc {
                refresh: info.refresh_collision,
            }
        } else if info.llc_hit {
            MissKind::L1
        } else {
            MissKind::None
        }
    }

    /// Combines two causes, preferring the more severe (LLC > L1 > none).
    fn worst(self, other: MissKind) -> MissKind {
        match (self, other) {
            (MissKind::Llc { refresh: a }, MissKind::Llc { refresh: b }) => {
                MissKind::Llc { refresh: a || b }
            }
            (k @ MissKind::Llc { .. }, _) | (_, k @ MissKind::Llc { .. }) => k,
            (MissKind::L1, _) | (_, MissKind::L1) => MissKind::L1,
            _ => MissKind::None,
        }
    }
}

/// Why the head of the fetch queue could not issue this cycle (internal).
enum IssueBlock {
    /// Source operand not ready yet.
    Dependency,
    /// A structural resource (MSHR, store buffer, window, memory port) is
    /// busy.
    Structural,
}

/// One in-flight (issued, not yet completed) instruction.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    complete_cycle: u64,
    kind: MissKind,
}

struct Pipeline<'d> {
    device: &'d DeviceModel,
    mem: MemorySystem,
    fetch_queue: VecDeque<DynInst>,
    reg_ready: [u64; crate::isa::NUM_REGS],
    /// What produced each register's pending value (attributes dependency
    /// stalls to the right miss kind).
    reg_source: [MissKind; crate::isa::NUM_REGS],
    /// In-order completion window (only maintained when the device has
    /// one).
    inflight: VecDeque<InFlight>,
    fetch_blocked_until: u64,
    /// Why fetch is blocked (for attributing queue-empty stalls).
    fetch_block_kind: MissKind,
    current_fetch_line: Option<u64>,
    /// An instruction peeked from the source but not yet admitted because
    /// its I$ line is still being fetched.
    pending_fetch: Option<DynInst>,
    store_buffer: Vec<u64>,
    bpred: Option<BimodalPredictor>,
    power: PowerTraceBuilder,
    gt: GroundTruth,
    stats: SimStats,
    /// The blockage cause observed during this cycle's issue attempt.
    cycle_block: MissKind,
    /// Open stall run: (start_cycle, saw_llc, saw_refresh, saw_l1).
    open_stall: Option<(u64, bool, bool, bool)>,
}

impl<'d> Pipeline<'d> {
    fn new(device: &'d DeviceModel, seed: u64) -> Self {
        Pipeline {
            device,
            mem: MemorySystem::new(device, seed),
            fetch_queue: VecDeque::with_capacity(device.fetch_queue),
            reg_ready: [0; crate::isa::NUM_REGS],
            reg_source: [MissKind::None; crate::isa::NUM_REGS],
            inflight: VecDeque::new(),
            fetch_blocked_until: 0,
            fetch_block_kind: MissKind::None,
            current_fetch_line: None,
            pending_fetch: None,
            store_buffer: Vec::with_capacity(device.store_buffer),
            bpred: device.branch_predictor.map(BimodalPredictor::new),
            power: PowerTraceBuilder::new(device.power),
            gt: GroundTruth::new(),
            stats: SimStats::default(),
            cycle_block: MissKind::None,
            open_stall: None,
        }
    }

    fn run<S: InstructionSource>(mut self, mut source: S, max_cycles: u64) -> SimResult {
        let _run_span = obs::span!("sim.run");
        let mut source_done = false;
        let mut now: u64 = 0;
        loop {
            assert!(
                now < max_cycles,
                "simulation exceeded {max_cycles} cycles — livelocked workload?"
            );
            self.mem.retire_completed(now);
            self.retire(now);
            self.store_buffer.retain(|&ready| ready > now);

            let mut activity = CycleActivity::default();
            let issued = self.issue(now, &mut activity);
            if !source_done {
                source_done = self.fetch(&mut source, now, &mut activity);
            }
            self.track_stall(now, issued);
            self.power.record(&activity);
            now += 1;

            if source_done
                && self.fetch_queue.is_empty()
                && self.pending_fetch.is_none()
                && self.store_buffer.is_empty()
                && self.inflight.is_empty()
                && self.mem.next_completion().is_none()
            {
                break;
            }
        }
        // Close a trailing stall run, if any.
        if let Some((start, llc, refresh, l1)) = self.open_stall.take() {
            self.push_stall(start, now, llc, refresh, l1);
        }
        let mem_stats = self.mem.stats();
        self.stats.cycles = now;
        self.stats.llc_misses = mem_stats.llc_misses;
        self.stats.l1d_misses = mem_stats.l1d_misses;
        self.stats.l1i_misses = mem_stats.l1i_misses;
        self.stats.refresh_collisions = mem_stats.refresh_collisions;
        self.stats.prefetches = mem_stats.prefetches;
        self.stats.llc_stall_cycles = self.gt.llc_stall_cycles();
        flush_sim_metrics(&self.stats, &mem_stats);
        SimResult {
            power: self.power.finish(self.device.clock_hz),
            ground_truth: self.gt,
            cas_trace: self.mem.into_cas_trace(),
            stats: self.stats,
        }
    }

    /// Retires completed instructions from the in-order window.
    fn retire(&mut self, now: u64) {
        while let Some(head) = self.inflight.front() {
            if head.complete_cycle <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Issues up to `width` instructions in order; returns how many issued.
    fn issue(&mut self, now: u64, activity: &mut CycleActivity) -> u32 {
        self.cycle_block = MissKind::None;
        let mut issued = 0u32;
        let mut mem_ops = 0u32;
        while issued < self.device.width as u32 {
            let Some(inst) = self.fetch_queue.front().copied() else {
                // Queue empty: if we are draining behind incomplete work,
                // the stall belongs to the window head; otherwise to
                // whatever blocked fetch (e.g. an I$ miss).
                let blocked_on = self
                    .inflight
                    .front()
                    .map(|f| f.kind)
                    .unwrap_or(self.fetch_block_kind);
                self.cycle_block = self.cycle_block.worst(blocked_on);
                break;
            };
            // Markers are free and invisible to timing.
            if let DynOp::Marker(id) = inst.op {
                self.gt.push_marker(id, now);
                self.fetch_queue.pop_front();
                continue;
            }
            // In-order completion: no issue past a full window; the stall
            // belongs to whatever the window head is waiting on.
            if let Some(window) = self.device.inflight_window {
                if self.inflight.len() >= window {
                    let head = self.inflight.front().expect("window full implies nonempty");
                    self.cycle_block = self.cycle_block.worst(head.kind);
                    break;
                }
            }
            match self.try_issue(&inst, now, mem_ops, activity) {
                Ok(used_mem_port) => {
                    self.fetch_queue.pop_front();
                    self.stats.instructions += 1;
                    issued += 1;
                    if used_mem_port {
                        mem_ops += 1;
                    }
                }
                Err(IssueBlock::Dependency) | Err(IssueBlock::Structural) => break,
            }
        }
        issued
    }

    /// Attempts to issue one instruction; `Ok(true)` means a memory port
    /// was consumed.
    fn try_issue(
        &mut self,
        inst: &DynInst,
        now: u64,
        mem_ops: u32,
        activity: &mut CycleActivity,
    ) -> Result<bool, IssueBlock> {
        for src in inst.op.srcs().into_iter().flatten() {
            if self.reg_ready[src.0 as usize] > now {
                // Attribute the dependency stall to whatever produced the
                // pending value (a missing load, or plain compute).
                let kind = self.reg_source[src.0 as usize];
                self.cycle_block = self.cycle_block.worst(kind);
                return Err(IssueBlock::Dependency);
            }
        }
        match inst.op {
            DynOp::Alu { dst, .. } => {
                if let Some(d) = dst {
                    self.set_ready(d, now + 1, MissKind::None);
                }
                self.push_inflight(now + 1, MissKind::None);
                activity.alu_issued += 1;
                Ok(false)
            }
            DynOp::Mul { dst, .. } => {
                self.set_ready(dst, now + 3, MissKind::None);
                self.push_inflight(now + 3, MissKind::None);
                activity.mul_issued += 1;
                Ok(false)
            }
            DynOp::Branch { .. } => {
                // Branch resolution itself is a single-cycle ALU-class op;
                // the taken-branch fetch bubble is charged at fetch time.
                self.push_inflight(now + 1, MissKind::None);
                activity.alu_issued += 1;
                Ok(false)
            }
            DynOp::Nop => {
                self.push_inflight(now + 1, MissKind::None);
                activity.alu_issued += 1;
                Ok(false)
            }
            DynOp::Load { dst, addr, .. } => {
                if mem_ops >= 1 {
                    return Err(IssueBlock::Structural);
                }
                let info = match self.mem.access_data(inst.pc, addr, false, now) {
                    Ok(info) => info,
                    Err(MshrFull) => {
                        // The structural stall is caused by the misses
                        // holding the MSHRs.
                        let s = self.mem.outstanding_summary(now);
                        let kind = if s.llc_miss {
                            MissKind::Llc { refresh: s.refresh }
                        } else if s.l1_miss {
                            MissKind::L1
                        } else {
                            MissKind::None
                        };
                        self.cycle_block = self.cycle_block.worst(kind);
                        return Err(IssueBlock::Structural);
                    }
                };
                self.record_mem_access(inst.pc, addr, false, now, &info, activity);
                let kind = MissKind::from_access(&info);
                let ready = info.ready_cycle.max(now + 1);
                self.set_ready(dst, ready, kind);
                self.push_inflight(ready, kind);
                activity.mem_issued += 1;
                Ok(true)
            }
            DynOp::Store { addr, .. } => {
                if mem_ops >= 1 {
                    return Err(IssueBlock::Structural);
                }
                if self.store_buffer.len() >= self.device.store_buffer {
                    let s = self.mem.outstanding_summary(now);
                    let kind = if s.llc_miss {
                        MissKind::Llc { refresh: s.refresh }
                    } else if s.l1_miss {
                        MissKind::L1
                    } else {
                        MissKind::None
                    };
                    self.cycle_block = self.cycle_block.worst(kind);
                    return Err(IssueBlock::Structural);
                }
                let info = match self.mem.access_data(inst.pc, addr, true, now) {
                    Ok(info) => info,
                    Err(MshrFull) => {
                        let s = self.mem.outstanding_summary(now);
                        let kind = if s.llc_miss {
                            MissKind::Llc { refresh: s.refresh }
                        } else if s.l1_miss {
                            MissKind::L1
                        } else {
                            MissKind::None
                        };
                        self.cycle_block = self.cycle_block.worst(kind);
                        return Err(IssueBlock::Structural);
                    }
                };
                self.record_mem_access(inst.pc, addr, true, now, &info, activity);
                // The store retires into the buffer (it completes
                // immediately from the window's point of view); the buffer
                // entry drains when the line arrives.
                self.store_buffer.push(info.ready_cycle.max(now + 1));
                self.push_inflight(now + 1, MissKind::None);
                activity.mem_issued += 1;
                Ok(true)
            }
            DynOp::Marker(_) => unreachable!("markers handled by the issue loop"),
        }
    }

    fn push_inflight(&mut self, complete_cycle: u64, kind: MissKind) {
        if self.device.inflight_window.is_some() {
            self.inflight.push_back(InFlight {
                complete_cycle,
                kind,
            });
        }
    }

    fn record_mem_access(
        &mut self,
        pc: u64,
        addr: u64,
        _is_write: bool,
        now: u64,
        info: &crate::memory::AccessInfo,
        activity: &mut CycleActivity,
    ) {
        if info.llc_accessed {
            activity.llc_accesses += 1;
        }
        if info.llc_miss && !info.merged {
            self.gt.push_miss(MissRecord {
                line_addr: addr / self.device.llc.line_bytes * self.device.llc.line_bytes,
                pc,
                is_instr: false,
                detect_cycle: now,
                complete_cycle: info.ready_cycle,
                refresh_collision: info.refresh_collision,
            });
        }
    }

    fn set_ready(&mut self, reg: crate::isa::Reg, cycle: u64, kind: MissKind) {
        if reg != crate::isa::Reg::ZERO {
            self.reg_ready[reg.0 as usize] = self.reg_ready[reg.0 as usize].max(cycle);
            self.reg_source[reg.0 as usize] = kind;
        }
    }

    /// Fetches up to `width` instructions; returns `true` when the source
    /// is exhausted.
    fn fetch<S: InstructionSource>(
        &mut self,
        source: &mut S,
        now: u64,
        activity: &mut CycleActivity,
    ) -> bool {
        if now < self.fetch_blocked_until {
            return false;
        }
        let line_bytes = self.device.l1i.line_bytes;
        for _ in 0..self.device.width {
            if self.fetch_queue.len() >= self.device.fetch_queue {
                break;
            }
            let inst = match self.pending_fetch.take().or_else(|| source.next_inst()) {
                Some(i) => i,
                None => return true,
            };
            let line = inst.pc / line_bytes * line_bytes;
            if self.current_fetch_line != Some(line) {
                let info = self.mem.access_instr(inst.pc, now);
                if info.llc_accessed {
                    activity.llc_accesses += 1;
                }
                if info.llc_miss && !info.merged {
                    self.gt.push_miss(MissRecord {
                        line_addr: line,
                        pc: inst.pc,
                        is_instr: true,
                        detect_cycle: now,
                        complete_cycle: info.ready_cycle,
                        refresh_collision: info.refresh_collision,
                    });
                }
                if info.ready_cycle > now {
                    // I$ miss (or slow path): fetch resumes when the line
                    // arrives; remember the instruction we peeked.
                    self.fetch_blocked_until = info.ready_cycle;
                    self.fetch_block_kind = MissKind::from_access(&info);
                    self.pending_fetch = Some(inst);
                    break;
                }
                self.current_fetch_line = Some(line);
            }
            let branch_taken = match inst.op {
                DynOp::Branch { taken, .. } => Some(taken),
                _ => None,
            };
            activity.fetched += 1;
            self.fetch_queue.push_back(inst);
            if let Some(taken) = branch_taken {
                let bubble = match self.bpred.as_mut() {
                    Some(bp) => {
                        // Predicted path: a correct taken prediction still
                        // redirects for one cycle (BTB turnaround); a
                        // misprediction pays the full refill.
                        let correct = bp.update(inst.pc, taken);
                        if !correct {
                            self.stats.branch_mispredicts += 1;
                            Some(1 + self.device.branch_penalty
                                + self.device
                                    .branch_predictor
                                    .expect("predictor configured")
                                    .mispredict_penalty)
                        } else if taken {
                            Some(1)
                        } else {
                            None
                        }
                    }
                    // No predictor: every taken branch pays the redirect.
                    None => taken.then_some(1 + self.device.branch_penalty),
                };
                if let Some(cycles) = bubble {
                    // A branch bubble is not a miss-caused blockage.
                    self.fetch_blocked_until = now + cycles;
                    self.fetch_block_kind = MissKind::None;
                    self.current_fetch_line = None;
                    break;
                }
            }
        }
        false
    }

    fn track_stall(&mut self, now: u64, issued: u32) {
        if issued == 0 {
            self.stats.stall_cycles += 1;
            // Attribution comes from what actually blocked issue this
            // cycle, so branch bubbles during an unrelated outstanding
            // miss stay classified as `Other` rather than polluting the
            // LLC stall accounting.
            let (is_llc, is_refresh, is_l1) = match self.cycle_block {
                MissKind::Llc { refresh } => (true, refresh, false),
                MissKind::L1 => (false, false, true),
                MissKind::None => (false, false, false),
            };
            match &mut self.open_stall {
                Some((_, llc, refresh, l1)) => {
                    *llc |= is_llc;
                    *refresh |= is_refresh;
                    *l1 |= is_l1;
                }
                None => {
                    self.open_stall = Some((now, is_llc, is_refresh, is_l1));
                }
            }
        } else if let Some((start, llc, refresh, l1)) = self.open_stall.take() {
            self.push_stall(start, now, llc, refresh, l1);
        }
    }

    fn push_stall(&mut self, start: u64, end: u64, llc: bool, refresh: bool, l1: bool) {
        let cause = if llc {
            StallCause::LlcMiss { refresh }
        } else if l1 {
            StallCause::LlcHit
        } else {
            StallCause::Other
        };
        self.gt.push_stall(StallInterval {
            start_cycle: start,
            end_cycle: end,
            cause,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Inst, Program, Reg};
    use crate::Interpreter;

    /// A blank loop (no memory accesses) of `n` iterations.
    fn blank_loop(n: i64) -> Program {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), n));
        let top = b.label();
        b.push(Inst::Addi(Reg(1), Reg(1), -1));
        b.push(Inst::Bne(Reg(1), Reg::ZERO, top));
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    /// Loads walking `lines` distinct cache lines, `reps` passes.
    fn array_walk(lines: i64, reps: i64) -> Program {
        let mut b = Program::builder();
        let base = Reg(1);
        let i = Reg(2);
        let limit = Reg(3);
        let addr = Reg(4);
        let val = Reg(5);
        let rep = Reg(6);
        b.push(Inst::Li(base, 0x100_0000));
        b.push(Inst::Li(rep, reps));
        let rep_top = b.label();
        b.push(Inst::Li(i, 0));
        b.push(Inst::Li(limit, lines));
        let top = b.label();
        b.push(Inst::Slli(addr, i, 6)); // i * 64
        b.push(Inst::Add(addr, addr, base));
        b.push(Inst::Ld(val, addr, 0));
        b.push(Inst::Addi(i, i, 1));
        b.push(Inst::Blt(i, limit, top));
        b.push(Inst::Addi(rep, rep, -1));
        b.push(Inst::Bne(rep, Reg::ZERO, rep_top));
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    fn sim() -> Simulator {
        Simulator::new(DeviceModel::sesc_like()).with_max_cycles(100_000_000)
    }

    fn no_refresh_sim() -> Simulator {
        let mut d = DeviceModel::sesc_like();
        d.dram.refresh = emprof_dram::RefreshConfig::disabled();
        Simulator::new(d).with_max_cycles(100_000_000)
    }

    /// Demand data-side LLC misses (the cold fetch of the tiny code
    /// footprint adds a couple of instruction-side misses that the tables
    /// in the paper also exclude by isolating the measured section).
    fn data_misses(r: &SimResult) -> usize {
        r.ground_truth
            .misses()
            .iter()
            .filter(|m| !m.is_instr)
            .count()
    }

    #[test]
    fn blank_loop_has_high_ipc_and_no_llc_misses() {
        let r = sim().run(Interpreter::new(&blank_loop(10_000)));
        assert_eq!(data_misses(&r), 0);
        assert!(
            r.stats.ipc() > 0.5,
            "blank loop should keep the core busy, ipc={}",
            r.stats.ipc()
        );
        // At most the cold code-fetch stall; nothing from the loop body.
        assert!(r.ground_truth.llc_stall_count() <= 1);
    }

    #[test]
    fn power_trace_length_equals_cycles() {
        let r = sim().run(Interpreter::new(&blank_loop(1000)));
        assert_eq!(r.power.len() as u64, r.stats.cycles);
    }

    #[test]
    fn cold_array_walk_misses_once_per_line() {
        let lines = 512;
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(lines, 1)));
        // Every line is cold: one LLC miss per line (32 KiB walk fits LLC).
        assert_eq!(data_misses(&r) as i64, lines);
    }

    #[test]
    fn second_pass_hits_when_working_set_fits() {
        let lines = 256; // 16 KiB, fits both L1D (32 KiB) and LLC
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(lines, 3)));
        assert_eq!(data_misses(&r) as i64, lines);
    }

    #[test]
    fn llc_misses_produce_long_stalls() {
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(512, 1)));
        let stalls: Vec<_> = r.ground_truth.llc_stalls().collect();
        assert!(!stalls.is_empty());
        let avg: f64 = stalls.iter().map(|s| s.duration() as f64).sum::<f64>()
            / stalls.len() as f64;
        // LLC miss latency is ~300 cycles; sequential dependent-ish walk
        // stalls for a large fraction of it.
        assert!(avg > 50.0, "average LLC stall {avg} cycles is too short");
    }

    #[test]
    fn stall_cycles_show_up_as_low_power() {
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(512, 1)));
        let samples = r.power.samples();
        let base = DeviceModel::sesc_like().power.base as f32;
        // Inside a known stall interval the power sits at the base level.
        let stall = r
            .ground_truth
            .llc_stalls()
            .find(|s| s.duration() > 20)
            .expect("a long stall exists");
        let mid = ((stall.start_cycle + stall.end_cycle) / 2) as usize;
        assert!((samples[mid] - base).abs() < 1e-6);
        // And a busy cycle is well above it.
        let max = samples.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 2.0 * base);
    }

    #[test]
    fn stall_count_at_most_miss_count() {
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(1024, 1)));
        assert!(
            r.ground_truth.llc_stall_count() <= r.ground_truth.llc_miss_count(),
            "MLP can only merge stalls, never split them"
        );
    }

    #[test]
    fn markers_record_cycles() {
        let mut b = Program::builder();
        b.push(Inst::Marker(1));
        b.push(Inst::Li(Reg(1), 100));
        let top = b.label();
        b.push(Inst::Addi(Reg(1), Reg(1), -1));
        b.push(Inst::Bne(Reg(1), Reg::ZERO, top));
        b.push(Inst::Marker(2));
        b.push(Inst::Halt);
        let r = sim().run(Interpreter::new(&b.build().unwrap()));
        let w = r.ground_truth.marker_window(1, 2).expect("both markers hit");
        assert!(w.1 > w.0);
        assert!(w.1 - w.0 >= 100, "window spans the loop");
    }

    #[test]
    fn stats_are_consistent() {
        let r = no_refresh_sim().run(Interpreter::new(&array_walk(256, 2)));
        assert!(r.stats.stall_cycles <= r.stats.cycles);
        assert!(r.stats.llc_stall_cycles <= r.stats.stall_cycles);
        assert_eq!(
            r.stats.llc_stall_cycles,
            r.ground_truth.llc_stall_cycles()
        );
        assert!(r.stats.instructions > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let r = no_refresh_sim().run(Interpreter::new(&array_walk(128, 2)));
            (r.stats.cycles, r.stats.llc_misses, r.power.samples().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn cycle_guard_trips() {
        let sim = Simulator::new(DeviceModel::sesc_like()).with_max_cycles(50);
        sim.run(Interpreter::new(&blank_loop(100_000)));
    }
}
