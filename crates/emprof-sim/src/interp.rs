//! Functional interpreter for mini-ISA [`Program`]s.
//!
//! Executes instruction semantics (register file, sparse data memory,
//! branch resolution) and exposes the resulting dynamic stream through
//! [`InstructionSource`] for the timing pipeline to consume.

use std::collections::HashMap;

use crate::isa::{Inst, Program, Reg, NUM_REGS};
use crate::source::{DynInst, DynOp, InstructionSource};

/// Byte-addressable sparse memory backed by 4 KiB pages.
///
/// Pages materialize on first write; reads of untouched memory return
/// zero. The engineered workloads touch up to tens of megabytes, far less
/// than would justify a flat allocation.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

const PAGE_SIZE: usize = 4096;

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Reads a little-endian 64-bit word; unaligned access is allowed.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    fn read_u8(&self, addr: u64) -> u8 {
        let page = addr / PAGE_SIZE as u64;
        let off = (addr % PAGE_SIZE as u64) as usize;
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr / PAGE_SIZE as u64;
        let off = (addr % PAGE_SIZE as u64) as usize;
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))[off] = value;
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Functional executor of one [`Program`].
///
/// Yields each executed instruction (with addresses and branch outcomes
/// resolved) until `Halt`; also enforces an instruction budget so a buggy
/// workload cannot hang the simulator.
///
/// # Example
///
/// ```
/// use emprof_sim::isa::{Inst, Program, Reg};
/// use emprof_sim::{Interpreter, InstructionSource};
///
/// let mut b = Program::builder();
/// b.push(Inst::Li(Reg(1), 7));
/// b.push(Inst::St(Reg(1), Reg::ZERO, 0x100));
/// b.push(Inst::Ld(Reg(2), Reg::ZERO, 0x100));
/// b.push(Inst::Halt);
/// let p = b.build()?;
/// let mut interp = Interpreter::new(&p);
/// while interp.next_inst().is_some() {}
/// assert_eq!(interp.reg(Reg(2)), 7);
/// # Ok::<(), emprof_sim::isa::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: [u64; NUM_REGS],
    memory: SparseMemory,
    pos: usize,
    halted: bool,
    executed: u64,
    budget: u64,
}

/// Default dynamic-instruction budget: generous for every bundled workload
/// while still catching runaway loops.
pub const DEFAULT_INST_BUDGET: u64 = 2_000_000_000;

impl Interpreter {
    /// Creates an interpreter positioned at the program's first
    /// instruction.
    pub fn new(program: &Program) -> Self {
        Interpreter {
            program: program.clone(),
            regs: [0; NUM_REGS],
            memory: SparseMemory::new(),
            pos: 0,
            halted: false,
            executed: 0,
            budget: DEFAULT_INST_BUDGET,
        }
    }

    /// Replaces the instruction budget (see [`DEFAULT_INST_BUDGET`]).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Current value of a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.0 as usize]
    }

    /// The data memory (for post-run inspection).
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn set_reg(&mut self, reg: Reg, value: u64) {
        if reg != Reg::ZERO {
            self.regs[reg.0 as usize] = value;
        }
    }

    fn step(&mut self) -> Option<DynInst> {
        if self.halted {
            return None;
        }
        let inst = match self.program.inst(self.pos) {
            Some(i) => i,
            None => {
                // Validated programs always end in Halt, but a trace cut
                // short is treated as termination, not a panic.
                self.halted = true;
                return None;
            }
        };
        if matches!(inst, Inst::Halt) {
            self.halted = true;
            return None;
        }
        assert!(
            self.executed < self.budget,
            "instruction budget ({}) exhausted at position {} — runaway loop?",
            self.budget,
            self.pos
        );
        self.executed += 1;
        let pc = self.program.pc_of(self.pos);
        let mut next = self.pos + 1;
        let r = |reg: Reg, regs: &[u64; NUM_REGS]| regs[reg.0 as usize];

        let two = |a: Reg, b: Reg| [Some(a), Some(b)];
        let op = match inst {
            Inst::Add(d, a, b) => {
                self.set_reg(d, r(a, &self.regs).wrapping_add(r(b, &self.regs)));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Sub(d, a, b) => {
                self.set_reg(d, r(a, &self.regs).wrapping_sub(r(b, &self.regs)));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Mul(d, a, b) => {
                self.set_reg(d, r(a, &self.regs).wrapping_mul(r(b, &self.regs)));
                DynOp::Mul {
                    dst: d,
                    srcs: two(a, b),
                }
            }
            Inst::And(d, a, b) => {
                self.set_reg(d, r(a, &self.regs) & r(b, &self.regs));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Or(d, a, b) => {
                self.set_reg(d, r(a, &self.regs) | r(b, &self.regs));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Xor(d, a, b) => {
                self.set_reg(d, r(a, &self.regs) ^ r(b, &self.regs));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Sll(d, a, b) => {
                self.set_reg(d, r(a, &self.regs) << (r(b, &self.regs) & 63));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Srl(d, a, b) => {
                self.set_reg(d, r(a, &self.regs) >> (r(b, &self.regs) & 63));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: two(a, b),
                }
            }
            Inst::Addi(d, a, imm) => {
                self.set_reg(d, r(a, &self.regs).wrapping_add(imm as u64));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: [Some(a), None],
                }
            }
            Inst::Andi(d, a, imm) => {
                self.set_reg(d, r(a, &self.regs) & imm as u64);
                DynOp::Alu {
                    dst: Some(d),
                    srcs: [Some(a), None],
                }
            }
            Inst::Slli(d, a, imm) => {
                self.set_reg(d, r(a, &self.regs) << (imm & 63));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: [Some(a), None],
                }
            }
            Inst::Srli(d, a, imm) => {
                self.set_reg(d, r(a, &self.regs) >> (imm & 63));
                DynOp::Alu {
                    dst: Some(d),
                    srcs: [Some(a), None],
                }
            }
            Inst::Li(d, imm) => {
                self.set_reg(d, imm as u64);
                DynOp::Alu {
                    dst: Some(d),
                    srcs: [None, None],
                }
            }
            Inst::Ld(d, base, off) => {
                let addr = r(base, &self.regs).wrapping_add(off as u64);
                let value = self.memory.read_u64(addr);
                self.set_reg(d, value);
                DynOp::Load {
                    dst: d,
                    addr_src: Some(base),
                    addr,
                }
            }
            Inst::St(s, base, off) => {
                let addr = r(base, &self.regs).wrapping_add(off as u64);
                self.memory.write_u64(addr, r(s, &self.regs));
                DynOp::Store {
                    srcs: two(s, base),
                    addr,
                }
            }
            Inst::Beq(a, b, l) => {
                let taken = r(a, &self.regs) == r(b, &self.regs);
                if taken {
                    next = self.program.resolve(l);
                }
                DynOp::Branch {
                    srcs: two(a, b),
                    taken,
                }
            }
            Inst::Bne(a, b, l) => {
                let taken = r(a, &self.regs) != r(b, &self.regs);
                if taken {
                    next = self.program.resolve(l);
                }
                DynOp::Branch {
                    srcs: two(a, b),
                    taken,
                }
            }
            Inst::Blt(a, b, l) => {
                let taken = (r(a, &self.regs) as i64) < (r(b, &self.regs) as i64);
                if taken {
                    next = self.program.resolve(l);
                }
                DynOp::Branch {
                    srcs: two(a, b),
                    taken,
                }
            }
            Inst::Bge(a, b, l) => {
                let taken = (r(a, &self.regs) as i64) >= (r(b, &self.regs) as i64);
                if taken {
                    next = self.program.resolve(l);
                }
                DynOp::Branch {
                    srcs: two(a, b),
                    taken,
                }
            }
            Inst::J(l) => {
                next = self.program.resolve(l);
                DynOp::Branch {
                    srcs: [None, None],
                    taken: true,
                }
            }
            Inst::Nop => DynOp::Nop,
            Inst::Marker(id) => DynOp::Marker(id),
            Inst::Halt => unreachable!("halt handled before decode"),
        };
        self.pos = next;
        Some(DynInst { pc, op })
    }
}

impl InstructionSource for Interpreter {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Inst;

    fn run(program: &Program) -> Interpreter {
        let mut interp = Interpreter::new(program);
        while interp.next_inst().is_some() {}
        interp
    }

    #[test]
    fn arithmetic_semantics() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), 6));
        b.push(Inst::Li(Reg(2), 7));
        b.push(Inst::Mul(Reg(3), Reg(1), Reg(2)));
        b.push(Inst::Add(Reg(4), Reg(3), Reg(1)));
        b.push(Inst::Sub(Reg(5), Reg(3), Reg(2)));
        b.push(Inst::Xor(Reg(6), Reg(1), Reg(2)));
        b.push(Inst::Slli(Reg(7), Reg(1), 4));
        b.push(Inst::Halt);
        let i = run(&b.build().unwrap());
        assert_eq!(i.reg(Reg(3)), 42);
        assert_eq!(i.reg(Reg(4)), 48);
        assert_eq!(i.reg(Reg(5)), 35);
        assert_eq!(i.reg(Reg(6)), 1);
        assert_eq!(i.reg(Reg(7)), 96);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg::ZERO, 99));
        b.push(Inst::Add(Reg(1), Reg::ZERO, Reg::ZERO));
        b.push(Inst::Halt);
        let i = run(&b.build().unwrap());
        assert_eq!(i.reg(Reg::ZERO), 0);
        assert_eq!(i.reg(Reg(1)), 0);
    }

    #[test]
    fn memory_round_trip() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), 0xDEAD));
        b.push(Inst::Li(Reg(2), 0x2000));
        b.push(Inst::St(Reg(1), Reg(2), 16));
        b.push(Inst::Ld(Reg(3), Reg(2), 16));
        b.push(Inst::Halt);
        let i = run(&b.build().unwrap());
        assert_eq!(i.reg(Reg(3)), 0xDEAD);
    }

    #[test]
    fn loads_report_effective_address() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), 0x8000));
        b.push(Inst::Ld(Reg(2), Reg(1), 0x40));
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p);
        interp.next_inst(); // li
        let load = interp.next_inst().unwrap();
        match load.op {
            DynOp::Load { addr, .. } => assert_eq!(addr, 0x8040),
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn loop_executes_expected_count() {
        let n = 100;
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), n));
        let top = b.label();
        b.push(Inst::Addi(Reg(1), Reg(1), -1));
        b.push(Inst::Bne(Reg(1), Reg::ZERO, top));
        b.push(Inst::Halt);
        let i = run(&b.build().unwrap());
        // 1 li + n * (addi + bne)
        assert_eq!(i.executed(), 1 + 2 * n as u64);
    }

    #[test]
    fn branch_outcomes_are_resolved() {
        let mut b = Program::builder();
        b.push(Inst::Li(Reg(1), 1));
        let skip = b.forward_label();
        b.push(Inst::Beq(Reg(1), Reg::ZERO, skip)); // not taken
        b.push(Inst::Li(Reg(2), 5));
        b.bind(skip);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p);
        interp.next_inst();
        let br = interp.next_inst().unwrap();
        assert!(matches!(br.op, DynOp::Branch { taken: false, .. }));
        while interp.next_inst().is_some() {}
        assert_eq!(interp.reg(Reg(2)), 5);
    }

    #[test]
    fn reading_unwritten_memory_is_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0xABCD_EF01), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn unaligned_word_access() {
        let mut mem = SparseMemory::new();
        mem.write_u64(PAGE_SIZE as u64 - 3, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(PAGE_SIZE as u64 - 3), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2); // straddles a page boundary
    }

    #[test]
    fn markers_pass_through() {
        let mut b = Program::builder();
        b.push(Inst::Marker(42));
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p);
        assert!(matches!(
            interp.next_inst().unwrap().op,
            DynOp::Marker(42)
        ));
    }

    #[test]
    #[should_panic(expected = "instruction budget")]
    fn runaway_loop_trips_budget() {
        let mut b = Program::builder();
        let top = b.label();
        b.push(Inst::J(top));
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p).with_budget(1000);
        while interp.next_inst().is_some() {}
    }

    #[test]
    fn pc_advances_by_four() {
        let mut b = Program::builder();
        b.push(Inst::Nop);
        b.push(Inst::Nop);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p);
        let a = interp.next_inst().unwrap().pc;
        let b2 = interp.next_inst().unwrap().pc;
        assert_eq!(b2, a + 4);
    }
}
