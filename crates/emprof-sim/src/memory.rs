//! The memory hierarchy: L1 I$/D$, unified LLC, MSHRs, prefetcher, DRAM.
//!
//! Ties the cache models, the stride prefetcher, and the DRAM controller
//! into the two access paths the pipeline uses (instruction fetch and
//! data), tracking outstanding misses so that concurrent misses overlap
//! (MLP, Fig. 3a) and repeated accesses to an in-flight line merge instead
//! of double-counting.

use emprof_dram::{CasTrace, MemoryController};

use crate::cache::Cache;
use crate::device::DeviceModel;
use crate::prefetch::StridePrefetcher;

/// Where an access was satisfied and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Cycle at which the requested data is available.
    pub ready_cycle: u64,
    /// Satisfied directly by the L1.
    pub l1_hit: bool,
    /// L1 miss that hit the LLC.
    pub llc_hit: bool,
    /// L1 miss that also missed the LLC (went to DRAM). When set and the
    /// line was not already in flight, the caller records a ground-truth
    /// miss.
    pub llc_miss: bool,
    /// The DRAM access collided with refresh (only meaningful with
    /// `llc_miss`).
    pub refresh_collision: bool,
    /// The LLC was looked up (for the power model).
    pub llc_accessed: bool,
    /// The access merged into an already-outstanding miss for the same
    /// line (no new miss event).
    pub merged: bool,
}

/// Error returned when a data miss cannot allocate an MSHR; the pipeline
/// must stall issue and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFull;

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    line: u64,
    ready_cycle: u64,
    llc_miss: bool,
    refresh: bool,
    is_instr: bool,
}

/// Summary of in-flight misses at some cycle, for stall attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutstandingSummary {
    /// Any LLC miss (instruction or data) in flight.
    pub llc_miss: bool,
    /// Any in-flight LLC miss that collided with refresh.
    pub refresh: bool,
    /// Any L1 miss (LLC hit) in flight.
    pub l1_miss: bool,
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data accesses issued to the hierarchy.
    pub data_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// Instruction-line fetches issued to the hierarchy.
    pub instr_accesses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// LLC lookups.
    pub llc_accesses: u64,
    /// Demand LLC misses (merged accesses not double-counted).
    pub llc_misses: u64,
    /// LLC misses that collided with DRAM refresh.
    pub refresh_collisions: u64,
    /// Prefetch lines inserted into the LLC.
    pub prefetches: u64,
}

/// The full memory system of one simulated device.
pub struct MemorySystem {
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    dram: MemoryController,
    prefetcher: Option<StridePrefetcher>,
    outstanding: Vec<Outstanding>,
    mshrs: usize,
    l1_hit_latency: u64,
    llc_hit_latency: u64,
    mem_overhead_ns: f64,
    clock_hz: f64,
    stats: MemStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("outstanding", &self.outstanding.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds the hierarchy for a device. `seed` drives the random
    /// replacement policies.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in the device is invalid (already
    /// guarded by [`DeviceModel::validate`] in the simulator).
    pub fn new(device: &DeviceModel, seed: u64) -> Self {
        MemorySystem {
            l1i: Cache::new(device.l1i, seed ^ 0x1111),
            l1d: Cache::new(device.l1d, seed ^ 0x2222),
            llc: Cache::new(device.llc, seed ^ 0x3333),
            dram: MemoryController::new(device.dram.clone()),
            prefetcher: device.prefetcher.map(StridePrefetcher::new),
            outstanding: Vec::new(),
            mshrs: device.mshrs,
            l1_hit_latency: device.l1_hit_latency,
            llc_hit_latency: device.llc_hit_latency,
            mem_overhead_ns: device.mem_overhead_ns,
            clock_hz: device.clock_hz,
            stats: MemStats::default(),
        }
    }

    fn cycles_to_ns(&self, cycle: u64) -> f64 {
        cycle as f64 / self.clock_hz * 1e9
    }

    fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.clock_hz / 1e9).ceil() as u64
    }

    /// Drops completed misses, freeing their MSHRs. Call once per cycle
    /// before issuing.
    pub fn retire_completed(&mut self, now: u64) {
        self.outstanding.retain(|o| o.ready_cycle > now);
    }

    /// Summarizes in-flight misses for stall attribution.
    pub fn outstanding_summary(&self, now: u64) -> OutstandingSummary {
        let mut s = OutstandingSummary::default();
        for o in &self.outstanding {
            if o.ready_cycle > now {
                if o.llc_miss {
                    s.llc_miss = true;
                    s.refresh |= o.refresh;
                } else {
                    s.l1_miss = true;
                }
            }
        }
        s
    }

    /// Number of data MSHRs currently allocated.
    fn data_mshrs_in_use(&self) -> usize {
        self.outstanding.iter().filter(|o| !o.is_instr).count()
    }

    /// Issues a data access (load or store) at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses the L1, does not merge
    /// with an in-flight line, and all MSHRs are busy — the pipeline must
    /// stall and retry.
    pub fn access_data(
        &mut self,
        pc: u64,
        addr: u64,
        is_write: bool,
        now: u64,
    ) -> Result<AccessInfo, MshrFull> {
        let line = self.l1d.line_of(addr);
        // Merge with an in-flight miss first: the line may already be on
        // its way, and its tag is already installed in the caches.
        if let Some(o) = self.outstanding.iter().find(|o| o.line == line) {
            self.stats.data_accesses += 1;
            return Ok(AccessInfo {
                ready_cycle: o.ready_cycle.max(now + self.l1_hit_latency),
                l1_hit: false,
                llc_hit: !o.llc_miss,
                llc_miss: o.llc_miss,
                refresh_collision: o.refresh,
                llc_accessed: false,
                merged: true,
            });
        }
        // MSHR admission check before touching any cache state, so a
        // rejected access leaves no trace and can retry cleanly.
        let will_miss_l1 = !self.l1d.probe(addr);
        if will_miss_l1 && self.data_mshrs_in_use() >= self.mshrs {
            return Err(MshrFull);
        }
        self.stats.data_accesses += 1;
        if self.l1d.access(addr, is_write) {
            return Ok(AccessInfo {
                ready_cycle: now + self.l1_hit_latency,
                l1_hit: true,
                llc_hit: false,
                llc_miss: false,
                refresh_collision: false,
                llc_accessed: false,
                merged: false,
            });
        }
        self.stats.l1d_misses += 1;
        let info = self.fill_from_llc(pc, line, is_write, now, false);
        Ok(info)
    }

    /// Issues an instruction-line fetch at cycle `now`. Instruction misses
    /// block fetch, so at most one is outstanding and no MSHR check is
    /// needed.
    pub fn access_instr(&mut self, pc: u64, now: u64) -> AccessInfo {
        self.stats.instr_accesses += 1;
        let line = self.l1i.line_of(pc);
        if let Some(o) = self.outstanding.iter().find(|o| o.line == line) {
            return AccessInfo {
                ready_cycle: o.ready_cycle.max(now + 1),
                l1_hit: false,
                llc_hit: !o.llc_miss,
                llc_miss: o.llc_miss,
                refresh_collision: o.refresh,
                llc_accessed: false,
                merged: true,
            };
        }
        if self.l1i.access(pc, false) {
            return AccessInfo {
                ready_cycle: now,
                l1_hit: true,
                llc_hit: false,
                llc_miss: false,
                refresh_collision: false,
                llc_accessed: false,
                merged: false,
            };
        }
        self.stats.l1i_misses += 1;
        let info = self.fill_from_llc(pc, line, false, now, true);
        // Sequential next-line instruction prefetch (as on the Cortex-A8):
        // code runs forward, so the line after a demand I$ miss is pulled
        // into the L1I alongside it. This keeps a jump into a cold code
        // region from costing one fetch stall per line — without it,
        // bursts of ~20-cycle LLC-hit fetch stalls blur into dips long
        // enough for EMPROF to misread as LLC misses.
        let next = line + self.l1i.config().line_bytes;
        if !self.l1i.probe(next) {
            self.l1i.insert(next);
            self.llc.insert(next);
        }
        info
    }

    /// Common L1-miss path: look up the (unified) LLC and, on a miss, the
    /// DRAM; installs tags, allocates the outstanding entry, and drives
    /// the prefetcher.
    fn fill_from_llc(
        &mut self,
        pc: u64,
        line: u64,
        is_write: bool,
        now: u64,
        is_instr: bool,
    ) -> AccessInfo {
        self.stats.llc_accesses += 1;
        let llc_hit = self.llc.access(line, is_write);
        let (ready_cycle, llc_miss, refresh) = if llc_hit {
            (now + self.llc_hit_latency, false, false)
        } else {
            self.stats.llc_misses += 1;
            // The demand request reaches DRAM after the LLC lookup and the
            // SoC interconnect; the response crosses the interconnect back.
            let req_ns = self.cycles_to_ns(now + self.llc_hit_latency)
                + self.mem_overhead_ns / 2.0;
            let result = self.dram.access(line, req_ns, is_write);
            if result.refresh_collision {
                self.stats.refresh_collisions += 1;
            }
            let done_ns = result.complete_ns + self.mem_overhead_ns / 2.0;
            (
                self.ns_to_cycles(done_ns).max(now + 1),
                true,
                result.refresh_collision,
            )
        };
        // The prefetcher watches the L1-miss stream (the classic L2
        // prefetcher placement), so a stream that starts hitting prefetched
        // LLC lines keeps training instead of losing its stride.
        if !is_instr {
            self.run_prefetcher(pc, line, now);
        }
        self.outstanding.push(Outstanding {
            line,
            ready_cycle,
            llc_miss,
            refresh,
            is_instr,
        });
        AccessInfo {
            ready_cycle,
            l1_hit: false,
            llc_hit,
            llc_miss,
            refresh_collision: refresh,
            llc_accessed: true,
            merged: false,
        }
    }

    /// Feeds a demand miss to the stride prefetcher and installs the
    /// predicted lines.
    ///
    /// Simplification (documented in DESIGN.md): prefetched lines are
    /// installed into the LLC immediately rather than after a modeled
    /// memory round-trip. The demand-visible effect — future accesses to
    /// those lines hit the LLC instead of missing — is preserved, and each
    /// prefetch still generates a DRAM access so the memory-side signal
    /// (Fig. 10) shows the traffic.
    fn run_prefetcher(&mut self, pc: u64, line: u64, now: u64) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        let predicted = pf.observe(pc, line);
        for addr in predicted {
            let pf_line = self.llc.line_of(addr);
            if !self.llc.probe(pf_line)
                && !self.outstanding.iter().any(|o| o.line == pf_line)
            {
                self.llc.insert(pf_line);
                self.stats.prefetches += 1;
                let req_ns = self.cycles_to_ns(now) + self.mem_overhead_ns / 2.0;
                self.dram.access(pf_line, req_ns, false);
            }
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Earliest completion among in-flight misses, if any (used by the
    /// pipeline to fast-forward through fully-stalled stretches).
    pub fn next_completion(&self) -> Option<u64> {
        self.outstanding.iter().map(|o| o.ready_cycle).min()
    }

    /// The CAS/refresh activity trace recorded by the DRAM controller.
    pub fn cas_trace(&self) -> &CasTrace {
        self.dram.trace()
    }

    /// Consumes the memory system, returning the DRAM trace.
    pub fn into_cas_trace(self) -> CasTrace {
        self.dram.into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emprof_dram::{DramConfig, RefreshConfig};

    fn device_no_refresh() -> DeviceModel {
        let mut d = DeviceModel::mlp_capable(); // 4 MSHRs for merge tests
        d.dram = DramConfig {
            refresh: RefreshConfig::disabled(),
            ..DramConfig::h5tq2g63bfr()
        };
        d
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(&device_no_refresh(), 42)
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = mem();
        // Prime the line.
        m.access_data(0, 0x1000, false, 0).unwrap();
        m.retire_completed(10_000);
        let info = m.access_data(0, 0x1008, false, 10_000).unwrap();
        assert!(info.l1_hit);
        assert_eq!(info.ready_cycle, 10_000 + 2);
    }

    #[test]
    fn cold_access_misses_to_dram() {
        let mut m = mem();
        let info = m.access_data(0, 0x9_0000, false, 100).unwrap();
        assert!(info.llc_miss);
        assert!(!info.l1_hit);
        assert!(info.llc_accessed);
        // Roughly the Olimex ~300-cycle latency band at 1 GHz.
        let lat = info.ready_cycle - 100;
        assert!((200..500).contains(&lat), "latency {lat}");
        assert_eq!(m.stats().llc_misses, 1);
    }

    #[test]
    fn concurrent_misses_to_same_line_merge() {
        let mut m = mem();
        let a = m.access_data(0, 0x5000, false, 0).unwrap();
        let b = m.access_data(4, 0x5010, false, 1).unwrap();
        assert!(!a.merged);
        assert!(b.merged);
        assert_eq!(b.ready_cycle, a.ready_cycle.max(1 + 2));
        // Only one miss counted.
        assert_eq!(m.stats().llc_misses, 1);
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut m = mem(); // 4 MSHRs in sesc_like
        for i in 0..4u64 {
            m.access_data(0, 0x10_0000 + i * 4096, false, 0).unwrap();
        }
        assert_eq!(
            m.access_data(0, 0x20_0000, false, 0),
            Err(MshrFull),
            "fifth concurrent miss must be rejected"
        );
        // After completion, MSHRs free up.
        m.retire_completed(1_000_000);
        assert!(m.access_data(0, 0x20_0000, false, 1_000_000).is_ok());
    }

    #[test]
    fn rejected_access_leaves_no_state() {
        let mut m = mem();
        for i in 0..4u64 {
            m.access_data(0, 0x10_0000 + i * 4096, false, 0).unwrap();
        }
        let before = m.stats();
        let _ = m.access_data(0, 0x20_0000, false, 0);
        assert_eq!(m.stats(), before);
    }

    #[test]
    fn llc_hit_after_eviction_from_l1() {
        let mut m = mem();
        // Fill the line, then evict it from L1 by walking 2x L1 capacity
        // within the same LLC set range... simpler: walk 64 KiB (2x L1D).
        m.access_data(0, 0x0, false, 0).unwrap();
        m.retire_completed(1000);
        let mut now = 1000;
        for addr in (0x10_0000u64..0x12_0000).step_by(64) {
            loop {
                m.retire_completed(now);
                match m.access_data(0, addr, false, now) {
                    Ok(info) => {
                        now = info.ready_cycle + 1;
                        break;
                    }
                    Err(MshrFull) => now += 1,
                }
            }
        }
        m.retire_completed(now);
        // 0x0 is gone from L1 (if not evicted this test is vacuous) but
        // may survive in the 256 KiB LLC.
        let info = m.access_data(0, 0x0, false, now).unwrap();
        if !info.l1_hit {
            assert!(info.llc_hit || info.llc_miss);
        }
    }

    #[test]
    fn instruction_misses_tracked_separately() {
        let mut m = mem();
        let info = m.access_instr(0x100_0000, 0);
        assert!(info.llc_miss);
        assert_eq!(m.stats().l1i_misses, 1);
        assert_eq!(m.stats().llc_misses, 1);
        // An instruction miss does not consume data MSHRs.
        for i in 0..4u64 {
            m.access_data(0, 0x10_0000 + i * 4096, false, 0).unwrap();
        }
    }

    #[test]
    fn summary_reflects_outstanding_misses() {
        let mut m = mem();
        assert_eq!(m.outstanding_summary(0), OutstandingSummary::default());
        let info = m.access_data(0, 0x30_0000, false, 0).unwrap();
        let s = m.outstanding_summary(1);
        assert!(s.llc_miss);
        let s_done = m.outstanding_summary(info.ready_cycle);
        assert!(!s_done.llc_miss);
    }

    #[test]
    fn prefetcher_reduces_misses_on_streaming() {
        let run = |prefetch: bool| -> u64 {
            let mut d = device_no_refresh();
            if prefetch {
                d.prefetcher = Some(crate::prefetch::PrefetchConfig::default());
            }
            let mut m = MemorySystem::new(&d, 7);
            let mut now = 0u64;
            for addr in (0u64..2 << 20).step_by(64) {
                loop {
                    m.retire_completed(now);
                    match m.access_data(0x500, addr, false, now) {
                        Ok(info) => {
                            now = info.ready_cycle.max(now + 1);
                            break;
                        }
                        Err(MshrFull) => now += 1,
                    }
                }
            }
            m.stats().llc_misses
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with * 2 < without,
            "prefetcher should at least halve streaming misses: {with} vs {without}"
        );
    }

    #[test]
    fn refresh_collision_reported() {
        let mut d = DeviceModel::sesc_like(); // refresh enabled
        d.mem_overhead_ns = 0.0;
        let mut m = MemorySystem::new(&d, 3);
        // Access timed to land inside the second maintenance burst
        // (70us at 1 GHz = cycle 70_000), accounting for the LLC lookup.
        let info = m.access_data(0, 0x40_0000, false, 70_000).unwrap();
        assert!(info.llc_miss);
        assert!(info.refresh_collision);
        // Latency is in the microseconds: the Fig. 5 stall.
        assert!(info.ready_cycle - 70_000 > 1_500);
        assert_eq!(m.stats().refresh_collisions, 1);
    }

    #[test]
    fn next_completion_tracks_earliest() {
        let mut m = mem();
        assert_eq!(m.next_completion(), None);
        let a = m.access_data(0, 0x50_0000, false, 0).unwrap();
        let b = m.access_data(0, 0x60_0000, false, 5).unwrap();
        assert_eq!(m.next_completion(), Some(a.ready_cycle.min(b.ready_cycle)));
    }
}
