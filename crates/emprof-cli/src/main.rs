//! The `emprof` command-line tool; see [`emprof_cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match emprof_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("emprof: {e}");
            eprintln!("run `emprof help` for usage");
            std::process::exit(2);
        }
    }
}
