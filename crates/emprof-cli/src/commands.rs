//! Command execution.

use std::fmt::Write as _;

use emprof_core::report::{self, ProfileSummary};
use emprof_core::{
    CalibConfig, Emprof, EmprofConfig, FusedDetector, FusionConfig, Profile, StreamingEmprof,
};
use emprof_emsim::{MemoryProbe, Receiver, ReceiverConfig};
use emprof_fault::{FaultInjector, FaultPlan, FaultReport};
use emprof_obs as obs;
use emprof_obs::TelemetrySink;
use emprof_par::Parallelism;
use emprof_sim::{DeviceModel, Interpreter, Simulator};
use emprof_workloads::microbench::MicrobenchConfig;
use emprof_workloads::spec::WorkloadSpec;
use emprof_workloads::{boot, iot};

use emprof_router::{BackendSpec, Router, RouterConfig};
use emprof_serve::{
    query_result_to_wire, ClientConfig, MetricsClient, MetricsReply, ProfileClient,
    QueryResultWire, QuerySpecWire, ServeConfig, Server, WatchClient,
};
use emprof_store::{
    inspect_dir, query_journals, FooterStatus, JournalConfig, QuerySpec, SessionJournal,
    SessionMeta,
};

use crate::opts::{
    parse, CliError, Command, DumpFlightOpts, InspectOpts, ObsOpts, ProfileOpts, PushOpts,
    QueryOpts, RecordOpts, ReplayOpts, RouterOpts, ServeOpts, SimulateOpts, TopOpts, WatchOpts,
    USAGE,
};

/// How many span occurrences `--trace` retains before counting drops.
const TRACE_CAPACITY: usize = 65_536;

/// Parses and executes an invocation, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for usage mistakes and runtime failures; the
/// binary prints the error and exits nonzero.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Devices => Ok(devices()),
        Command::Demo => demo(),
        Command::Simulate(opts) | Command::Stats(opts) => {
            with_telemetry(&opts.obs, || simulate(&opts))
        }
        Command::Profile(opts) => with_telemetry(&opts.obs, || profile_csv(&opts)),
        Command::Serve(opts) => with_telemetry(&opts.obs, || serve(&opts)),
        Command::Router(opts) => router(&opts),
        Command::Push(opts) => push(&opts),
        Command::Watch(opts) => watch(&opts),
        Command::Top(opts) => top(&opts),
        Command::DumpFlight(opts) => dump_flight(&opts),
        Command::Record(opts) => record(&opts),
        Command::Replay(opts) => replay(&opts),
        Command::JournalInspect(opts) => journal_inspect(&opts),
        Command::Query(opts) => query(&opts),
    }
}

/// Runs `f` with telemetry recording on when any `--metrics`/`--trace`/
/// `--verbose-stats` output was requested, then writes the requested
/// outputs. With no telemetry flags this is a plain call to `f`.
fn with_telemetry<F>(obs_opts: &ObsOpts, f: F) -> Result<String, CliError>
where
    F: FnOnce() -> Result<String, CliError>,
{
    if !obs_opts.active() {
        return f();
    }
    obs::reset();
    obs::enable();
    if obs_opts.trace_out.is_some() {
        obs::span::start_tracing(TRACE_CAPACITY);
    }
    let result = f();
    let snapshot = obs::snapshot();
    let (trace_events, trace_dropped) = if obs_opts.trace_out.is_some() {
        obs::span::stop_tracing()
    } else {
        (Vec::new(), 0)
    };
    obs::disable();
    let mut out = result?;
    let io_err = |path: &str, e: std::io::Error| CliError::Runtime(format!("{path}: {e}"));
    if let Some(path) = &obs_opts.metrics_out {
        let mut sink = obs::JsonLinesSink::new(Vec::new());
        sink.write_snapshot(&snapshot).map_err(|e| io_err(path, e))?;
        std::fs::write(path, sink.into_inner()).map_err(|e| io_err(path, e))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if let Some(path) = &obs_opts.trace_out {
        let mut buf = Vec::new();
        obs::sink::write_trace_jsonl(&mut buf, &trace_events, trace_dropped)
            .map_err(|e| io_err(path, e))?;
        std::fs::write(path, buf).map_err(|e| io_err(path, e))?;
        let _ = writeln!(
            out,
            "trace written to {path} ({} events, {trace_dropped} dropped)",
            trace_events.len()
        );
    }
    if obs_opts.verbose_stats {
        let mut sink = obs::PrettyTableSink::new(Vec::new());
        sink.write_snapshot(&snapshot)
            .map_err(|e| io_err("<stdout>", e))?;
        let table = String::from_utf8(sink.into_inner())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let _ = writeln!(out, "\ntelemetry:\n{table}");
    }
    Ok(out)
}

/// The detector configuration for a CLI run: the paper's fixed-threshold
/// setup, with the online calibration loop switched on by `--adaptive`.
fn detector_config(rate: f64, clock_hz: f64, adaptive: bool) -> EmprofConfig {
    let mut config = EmprofConfig::for_rates(rate, clock_hz);
    if adaptive {
        config.calib = CalibConfig::adaptive();
    }
    config
}

/// With telemetry on, re-runs the magnitude through the streaming
/// detector: this records the `stream.*` throughput gauges and doubles as
/// a live equivalence check against the batch profile. The streaming
/// detector must run the same configuration (notably the calibration
/// knob) as the batch run it is compared to.
fn streaming_cross_check(
    out: &mut String,
    magnitude: &[f64],
    config: EmprofConfig,
    rate: f64,
    clock_hz: f64,
    batch: &Profile,
) {
    if !obs::is_enabled() {
        return;
    }
    let mut s = StreamingEmprof::new(config, rate, clock_hz);
    s.extend(magnitude.iter().copied());
    let stats = s.stats();
    let streamed = s.finish();
    let agreement = if streamed.events() == batch.events() {
        "matches batch"
    } else {
        "MISMATCH vs batch"
    };
    let _ = writeln!(
        out,
        "streaming cross-check: {} events ({agreement}), {:.1} MS/s ingest",
        streamed.events().len(),
        stats.samples_per_sec.unwrap_or(0.0) / 1e6
    );
}

/// With telemetry on, appends the stall-latency quantile estimates from
/// the `detect.stall_latency_cycles` histogram (recorded per finalized
/// event by both detectors).
fn stall_latency_quantiles(out: &mut String) {
    if !obs::is_enabled() {
        return;
    }
    let snapshot = obs::snapshot();
    let q = |p: f64| snapshot.histogram_quantile("detect.stall_latency_cycles", p);
    if let (Some(p50), Some(p90), Some(p99)) = (q(0.5), q(0.9), q(0.99)) {
        let _ = writeln!(
            out,
            "stall latency: ~{p50:.0} cycles p50, ~{p90:.0} p90, ~{p99:.0} p99"
        );
    }
}

fn devices() -> String {
    let mut out = String::new();
    for d in [
        DeviceModel::alcatel(),
        DeviceModel::samsung(),
        DeviceModel::olimex(),
        DeviceModel::sesc_like(),
    ] {
        let _ = writeln!(
            out,
            "{:<9} {:>6.3} GHz  width {}  LLC {:>5} KiB  prefetch {}  ~{:.0} ns/miss",
            d.name,
            d.clock_hz / 1e9,
            d.width,
            d.llc.size_bytes >> 10,
            if d.prefetcher.is_some() { "yes" } else { "no " },
            d.cycles_to_ns(d.nominal_miss_latency_cycles()),
        );
    }
    out
}

fn device_by_name(name: &str) -> Result<DeviceModel, CliError> {
    match name {
        "alcatel" => Ok(DeviceModel::alcatel()),
        "samsung" => Ok(DeviceModel::samsung()),
        "olimex" => Ok(DeviceModel::olimex()),
        "sesc" | "sesc-sim" => Ok(DeviceModel::sesc_like()),
        other => Err(CliError::Runtime(format!(
            "unknown device {other} (try: alcatel, samsung, olimex, sesc)"
        ))),
    }
}

/// Runs a named workload on a device, returning the simulation result.
fn run_workload(
    workload: &str,
    device: &DeviceModel,
    scale: f64,
    seed: u64,
) -> Result<emprof_sim::SimResult, CliError> {
    let sim = Simulator::new(device.clone())
        .with_max_cycles(4_000_000_000)
        .with_seed(seed);
    let interp_run = |program: emprof_sim::Program| sim.run(Interpreter::new(&program));
    let err = |e: String| CliError::Runtime(e);

    if let Some(spec) = workload.strip_prefix("microbench:") {
        let parts: Vec<&str> = spec.split(':').collect();
        let [tm, cm] = parts.as_slice() else {
            return Err(err(format!("bad microbench spec {workload} (want microbench:TM:CM)")));
        };
        let tm: u64 = tm.parse().map_err(|_| err(format!("bad TM {tm}")))?;
        let cm: u64 = cm.parse().map_err(|_| err(format!("bad CM {cm}")))?;
        let program = MicrobenchConfig::new(tm, cm)
            .build()
            .map_err(|e| err(e.to_string()))?;
        return Ok(interp_run(program));
    }
    match workload {
        "boot" => Ok(sim.run(boot::boot_sequence(seed, scale).source())),
        "sensor-filter" => {
            let program = iot::sensor_filter(16, 64, (20_000.0 * scale) as i64 + 100)
                .map_err(|e| err(e.to_string()))?;
            Ok(interp_run(program))
        }
        "block-transfer" => {
            let program = iot::block_transfer((320.0 * scale) as i64 + 4)
                .map_err(|e| err(e.to_string()))?;
            Ok(interp_run(program))
        }
        "table-crypto" => {
            let program = iot::table_crypto((10_000.0 * scale) as i64 + 64, 8 << 20, 40)
                .map_err(|e| err(e.to_string()))?;
            Ok(interp_run(program))
        }
        name => {
            let spec = WorkloadSpec::all_spec2000()
                .into_iter()
                .find(|w| w.name == name)
                .ok_or_else(|| err(format!("unknown workload {name}")))?;
            Ok(sim.run(spec.scaled(scale).with_seed(seed).source()))
        }
    }
}

/// Parses a `--fault-plan` spec string; a `none`/empty plan is `None`.
fn parse_fault_plan(spec: Option<&str>) -> Result<Option<FaultPlan>, CliError> {
    let Some(spec) = spec else { return Ok(None) };
    let plan: FaultPlan = spec
        .parse()
        .map_err(|e| CliError::Usage(format!("--fault-plan {spec}: {e}")))?;
    Ok(if plan.is_none() { None } else { Some(plan) })
}

/// Appends a one-line tally of what a fault injector actually did.
fn fault_summary(out: &mut String, report: &FaultReport) {
    let _ = writeln!(
        out,
        "faults injected: {} dropout bursts, {} corrupted samples, {} gain steps, {} shifts",
        report.dropouts.len(),
        report.corrupted.len(),
        report.gain_steps.len(),
        report.shifts.len()
    );
    if report.walk_min_gain < 1.0 {
        let _ = writeln!(
            out,
            "probe walk: gain wandered down to {:.0}% of nominal",
            report.walk_min_gain * 100.0
        );
    }
}

fn profile_of(
    result: &emprof_sim::SimResult,
    device: &DeviceModel,
    bandwidth: f64,
    seed: u64,
    par: Parallelism,
    adaptive: bool,
) -> (Profile, Vec<f64>, f64) {
    let rx = Receiver::new(ReceiverConfig::paper_setup(bandwidth)).with_parallelism(par);
    let capture = rx.capture(&result.power, seed);
    let emprof = Emprof::new(detector_config(
        capture.sample_rate_hz(),
        device.clock_hz,
        adaptive,
    ));
    let magnitude = capture.magnitude_par(par);
    let profile = emprof.profile_magnitude_par(
        &magnitude,
        capture.sample_rate_hz(),
        device.clock_hz,
        par,
    );
    (profile, magnitude, capture.sample_rate_hz())
}

fn simulate(opts: &SimulateOpts) -> Result<String, CliError> {
    let fault_plan = parse_fault_plan(opts.fault_plan.as_deref())?;
    let device = device_by_name(&opts.device)?;
    let result = run_workload(&opts.workload, &device, opts.scale, opts.seed)?;
    let par = Parallelism::resolve(opts.threads);
    let (profile, magnitude, rate, fault_report) = match fault_plan {
        None => {
            let (p, m, r) =
                profile_of(&result, &device, opts.bandwidth_hz, opts.seed, par, opts.adaptive);
            (p, m, r, None)
        }
        Some(plan) => {
            let rx = Receiver::new(ReceiverConfig::paper_setup(opts.bandwidth_hz))
                .with_parallelism(par);
            let capture = rx.capture(&result.power, opts.seed);
            let rate = capture.sample_rate_hz();
            let mut injector = FaultInjector::new(plan, opts.fault_seed);
            let (magnitude, report) = capture.magnitude_faulted(&mut injector, par);
            let emprof = Emprof::new(detector_config(rate, device.clock_hz, opts.adaptive));
            let profile =
                emprof.profile_magnitude_par(&magnitude, rate, device.clock_hz, par);
            (profile, magnitude, rate, Some(report))
        }
    };
    let config = detector_config(rate, device.clock_hz, opts.adaptive);

    // Dual-probe cross-validation: synthesize the memory-side capture of
    // the same run (sharing the CPU capture's time base, as in the
    // paper's Fig. 10 setup) and reject CPU-probe events with no
    // corroborating DRAM activity. The pre-fusion profile is kept for
    // the streaming cross-check: streaming is single-probe by nature.
    let prefusion = profile.clone();
    let (profile, fusion_report) = if opts.dual_probe {
        let horizon_ns = result.stats.cycles as f64 / device.clock_hz * 1e9;
        let mem_magnitude = MemoryProbe::new(ReceiverConfig::paper_setup(opts.bandwidth_hz))
            .capture(&result.cas_trace, horizon_ns, device.clock_hz, opts.seed)
            .magnitude_par(par);
        let fused = FusedDetector::new(Emprof::new(config), FusionConfig::default());
        let (fused_profile, report) =
            fused.cross_validate(profile, &mem_magnitude, rate, device.clock_hz);
        (fused_profile, Some(report))
    } else {
        (profile, None)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {}: {} cycles, {} instructions (IPC {:.2})",
        opts.workload,
        device.name,
        result.stats.cycles,
        result.stats.instructions,
        result.stats.ipc()
    );
    let _ = writeln!(
        out,
        "capture: {} samples at {:.0} MS/s",
        magnitude.len(),
        rate / 1e6
    );
    if let Some(report) = &fault_report {
        fault_summary(&mut out, report);
    }
    if let Some(report) = &fusion_report {
        let _ = writeln!(
            out,
            "dual-probe fusion: {} events confirmed, {} rejected as single-probe artifacts",
            report.confirmed, report.rejected
        );
    }
    let _ = writeln!(out, "{}", ProfileSummary::of(&profile));
    if profile.degraded_count() > 0 {
        let _ = writeln!(
            out,
            "confidence: {} events flagged degraded (probe drift / signal gaps)",
            profile.degraded_count()
        );
    }
    let _ = writeln!(
        out,
        "ground truth: {} LLC misses, {} stall cycles",
        result.ground_truth.llc_miss_count(),
        result.ground_truth.llc_stall_cycles()
    );
    streaming_cross_check(&mut out, &magnitude, config, rate, device.clock_hz, &prefusion);
    stall_latency_quantiles(&mut out);
    if let Some(path) = &opts.signal_out {
        write_file(path, &report::signal_to_csv(&magnitude))?;
        let _ = writeln!(out, "signal written to {path}");
    }
    if let Some(path) = &opts.events_out {
        write_file(path, &report::events_to_csv(&profile))?;
        let _ = writeln!(out, "events written to {path}");
    }
    Ok(out)
}

fn profile_csv(opts: &ProfileOpts) -> Result<String, CliError> {
    let csv = std::fs::read_to_string(&opts.signal_path)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", opts.signal_path)))?;
    let signal =
        report::signal_from_csv(&csv).map_err(|e| CliError::Runtime(e.to_string()))?;
    let config = detector_config(opts.sample_rate_hz, opts.clock_hz, opts.adaptive);
    let emprof = Emprof::new(config);
    let profile = emprof.profile_magnitude_par(
        &signal,
        opts.sample_rate_hz,
        opts.clock_hz,
        Parallelism::resolve(opts.threads),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} samples ({:.3} ms of execution)",
        opts.signal_path,
        signal.len(),
        signal.len() as f64 / opts.sample_rate_hz * 1e3
    );
    let _ = writeln!(out, "{}", ProfileSummary::of(&profile));
    if profile.degraded_count() > 0 {
        let _ = writeln!(
            out,
            "confidence: {} events flagged degraded (probe drift / signal gaps)",
            profile.degraded_count()
        );
    }
    streaming_cross_check(&mut out, &signal, config, opts.sample_rate_hz, opts.clock_hz, &profile);
    stall_latency_quantiles(&mut out);
    if let Some(path) = &opts.events_out {
        write_file(path, &report::events_to_csv(&profile))?;
        let _ = writeln!(out, "events written to {path}");
    }
    Ok(out)
}

/// Runs the profiling service, optionally for a bounded duration.
fn serve(opts: &ServeOpts) -> Result<String, CliError> {
    let fault_plan = parse_fault_plan(opts.fault_plan.as_deref())?;
    let chaos = fault_plan.is_some();
    // A scrape endpoint over a disabled registry would serve an empty
    // snapshot; --metrics-addr implies telemetry for the server's
    // lifetime (unless `with_telemetry` already turned it on).
    struct ObsOff(bool);
    impl Drop for ObsOff {
        fn drop(&mut self) {
            if self.0 {
                obs::disable();
            }
        }
    }
    let scrape_obs = ObsOff(opts.metrics_addr.is_some() && !obs::is_enabled());
    if scrape_obs.0 {
        obs::reset();
        obs::enable();
    }
    let config = ServeConfig {
        threads: Parallelism::resolve(opts.threads),
        queue_frames: opts.queue_frames,
        shed: opts.shed,
        idle_timeout: std::time::Duration::from_secs(opts.idle_timeout_secs),
        max_sessions: opts.max_sessions,
        heartbeat_interval: opts.heartbeat_secs.map(std::time::Duration::from_secs),
        fault_plan,
        fault_seed: opts.fault_seed,
        journal_dir: opts.journal_dir.as_ref().map(std::path::PathBuf::from),
        metrics_addr: opts.metrics_addr.clone(),
        flight_dir: opts.flight_dir.as_ref().map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let threads = config.threads.get();
    let server = Server::bind(opts.addr.as_str(), config)
        .map_err(|e| CliError::Runtime(format!("bind {}: {e}", opts.addr)))?;
    // The banner goes out immediately: callers script against it.
    println!(
        "emprof-serve listening on {} ({} workers, queue {} frames, {}{}{}{})",
        server.local_addr(),
        threads,
        opts.queue_frames,
        if opts.shed { "shed" } else { "backpressure" },
        if chaos { ", CHAOS" } else { "" },
        match &opts.journal_dir {
            Some(dir) => format!(", journal {dir}"),
            None => String::new(),
        },
        match server.metrics_local_addr() {
            Some(addr) => format!(", metrics http://{addr}/metrics"),
            None => String::new(),
        },
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match opts.duration_secs {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(1));
        },
    }
    let stats = server.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} connections, {} sessions, {} resumes",
        stats.connections, stats.sessions_opened, stats.reconnects
    );
    let _ = writeln!(
        out,
        "ingested {} samples in {} frames ({} bytes), {} events",
        stats.samples_in, stats.frames_in, stats.bytes_in, stats.events_total
    );
    let _ = writeln!(
        out,
        "backpressure {:.3} s blocked, {} batches shed, peak queue depth {}",
        stats.backpressure_ns as f64 / 1e9,
        stats.sheds,
        stats.peak_queue_depth
    );
    stall_latency_quantiles(&mut out);
    Ok(out)
}

/// Runs the sharded front tier: a consistent-hash router over a
/// backend fleet, with health probing and journal-handoff migration.
fn router(opts: &RouterOpts) -> Result<String, CliError> {
    // Same rule as `serve`: a scrape endpoint over a disabled registry
    // would serve an empty snapshot, so --metrics-addr implies
    // telemetry for the router's lifetime.
    struct ObsOff(bool);
    impl Drop for ObsOff {
        fn drop(&mut self) {
            if self.0 {
                obs::disable();
            }
        }
    }
    let scrape_obs = ObsOff(opts.metrics_addr.is_some() && !obs::is_enabled());
    if scrape_obs.0 {
        obs::reset();
        obs::enable();
    }
    let backends: Vec<BackendSpec> = opts
        .backends
        .iter()
        .map(|b| BackendSpec {
            name: b.name.clone(),
            addr: b.addr.clone(),
            journal_dir: b.journal_dir.as_ref().map(std::path::PathBuf::from),
        })
        .collect();
    let names: Vec<&str> = backends.iter().map(|b| b.name.as_str()).collect();
    let banner_backends = names.join(",");
    let config = RouterConfig {
        backends,
        replicas: opts.replicas,
        probe_interval: std::time::Duration::from_millis(opts.probe_ms),
        down_after: opts.down_after,
        idle_timeout: std::time::Duration::from_secs(opts.idle_timeout_secs),
        metrics_addr: opts.metrics_addr.clone(),
        ..RouterConfig::default()
    };
    let router = Router::bind(opts.addr.as_str(), config)
        .map_err(|e| CliError::Runtime(format!("bind {}: {e}", opts.addr)))?;
    // The banner goes out immediately: callers script against it.
    println!(
        "emprof-router listening on {} ({} backends: {}, {} replicas, probe {}ms{})",
        router.local_addr(),
        opts.backends.len(),
        banner_backends,
        opts.replicas,
        opts.probe_ms,
        match router.metrics_local_addr() {
            Some(addr) => format!(", metrics http://{addr}/metrics"),
            None => String::new(),
        },
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match opts.duration_secs {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(1));
        },
    }
    let stats = router.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routed {} sessions ({} still active), {} frames, {} samples, {} events",
        stats.sessions_opened, stats.sessions_active, stats.frames_in, stats.samples_in,
        stats.events_out
    );
    let _ = writeln!(
        out,
        "migrations {} ({} lossy), reconnects {}, probe failures {}, mark-downs {}, backends up {}",
        stats.migrations,
        stats.migrations_lossy,
        stats.reconnects,
        stats.probe_failures,
        stats.mark_downs,
        stats.backends_up
    );
    Ok(out)
}

/// Streams a magnitude CSV to a running service and summarizes the reply.
fn push(opts: &PushOpts) -> Result<String, CliError> {
    let fault_plan = parse_fault_plan(opts.fault_plan.as_deref())?;
    let csv = std::fs::read_to_string(&opts.signal_path)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", opts.signal_path)))?;
    let (mut signal, csv_rejected) = report::signal_from_csv_sanitized(&csv)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let fault_report = fault_plan
        .map(|plan| FaultInjector::new(plan, opts.fault_seed).inject(&mut signal));
    let config = detector_config(opts.sample_rate_hz, opts.clock_hz, opts.adaptive);
    let err = |e: emprof_serve::ClientError| CliError::Runtime(format!("{}: {e}", opts.addr));
    let client_config = ClientConfig {
        read_timeout: std::time::Duration::from_secs(opts.timeout_secs),
        max_reconnects: opts.retries,
        ..ClientConfig::default()
    };
    let mut client = ProfileClient::connect_with(
        opts.addr.as_str(),
        &opts.device,
        config,
        opts.sample_rate_hz,
        opts.clock_hz,
        client_config,
    )
    .map_err(err)?;
    for chunk in signal.chunks(opts.frame) {
        client.send(chunk).map_err(err)?;
    }
    let reconnects = client.reconnects();
    let (events, stats) = client.finish().map_err(err)?;
    let accepted = signal.len() as u64 - stats.samples_rejected;
    let profile = Profile::new(
        events,
        accepted as usize,
        opts.sample_rate_hz,
        opts.clock_hz,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} samples served by {} ({} queued at flush, {} shed)",
        opts.signal_path,
        stats.samples_pushed,
        opts.addr,
        stats.queue_depth,
        stats.sheds
    );
    if csv_rejected > 0 {
        let _ = writeln!(out, "{csv_rejected} non-finite CSV samples dropped before send");
    }
    if let Some(report) = &fault_report {
        fault_summary(&mut out, report);
    }
    if stats.samples_rejected > 0 {
        let _ = writeln!(
            out,
            "server rejected {} non-finite samples",
            stats.samples_rejected
        );
    }
    if reconnects > 0 {
        let _ = writeln!(out, "session resumed {reconnects} time(s) after transport loss");
    }
    let _ = writeln!(out, "{}", ProfileSummary::of(&profile));
    if profile.degraded_count() > 0 {
        let _ = writeln!(
            out,
            "confidence: {} events flagged degraded (probe drift / signal gaps)",
            profile.degraded_count()
        );
    }
    if let Some(path) = &opts.events_out {
        write_file(path, &report::events_to_csv(&profile))?;
        let _ = writeln!(out, "events written to {path}");
    }
    Ok(out)
}

/// Tails a running service's finalized-event stream.
fn watch(opts: &WatchOpts) -> Result<String, CliError> {
    let err = |e: emprof_serve::ClientError| CliError::Runtime(format!("{}: {e}", opts.addr));
    let client_config = ClientConfig {
        read_timeout: std::time::Duration::from_secs(opts.timeout_secs),
        max_reconnects: opts.retries,
        ..ClientConfig::default()
    };
    let mut client =
        WatchClient::connect_with(opts.addr.as_str(), client_config).map_err(err)?;
    let mut out = String::new();
    let mut polled = 0u64;
    loop {
        let tail = client.poll().map_err(err)?;
        for te in &tail.events {
            let _ = writeln!(
                out,
                "session {} [{}..{}) {:.0} cycles {:?}",
                te.session_id,
                te.event.start_sample,
                te.event.end_sample,
                te.event.duration_cycles,
                te.event.kind
            );
        }
        if tail.missed > 0 {
            let _ = writeln!(out, "({} events missed: tail overflowed)", tail.missed);
        }
        let _ = writeln!(
            out,
            "sessions {} | samples {} | events {} | sheds {}",
            tail.server.sessions_active,
            tail.server.samples_in,
            tail.server.events_total,
            tail.server.sheds
        );
        polled += 1;
        if let Some(max) = opts.polls {
            if polled >= max {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
    Ok(out)
}

/// Formats a rate as a compact human-readable figure (`1.2M`, `850k`).
fn human_rate(v: f64) -> String {
    if !v.is_finite() || v < 0.0 {
        "?".to_string()
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Client-side rate figures between two METRICS polls of one session.
///
/// A backend restart (or a session migrating to a fresh backend) resets
/// the wire counters to zero, so the naive `now - prev` delta of a
/// dashboard that survived the restart would go hugely negative (or,
/// with a saturating subtraction, silently freeze at zero). A reset is
/// detected as any counter moving backwards: the frame falls back to
/// the server's own windowed rate, marks the row `(reset)`, and tallies
/// the `top.counter_resets` telemetry counter.
fn session_rates(
    dt: f64,
    prev: &emprof_serve::SessionRow,
    row: &emprof_serve::SessionRow,
) -> (f64, String) {
    if row.samples_pushed < prev.samples_pushed || row.events_emitted < prev.events_emitted {
        obs::counter_add!("top.counter_resets", 1);
        return (row.samples_per_sec, " (reset)".to_string());
    }
    let ds = row.samples_pushed - prev.samples_pushed;
    let de = row.events_emitted - prev.events_emitted;
    (ds as f64 / dt, format!(" (+{de})"))
}

/// Renders one `emprof top` dashboard frame.
///
/// `prev` carries the previous poll (seconds elapsed since it, and its
/// reply): per-session sample/event rates are then client-side deltas
/// computed from the wire counters, not server-reported figures. The
/// first frame falls back to the server's own windowed rate.
fn render_top_frame(
    out: &mut String,
    addr: &str,
    reply: &MetricsReply,
    health: &emprof_serve::HealthWire,
    prev: Option<(f64, &MetricsReply)>,
) {
    let _ = writeln!(
        out,
        "emprof top — {addr} | up {:.1}s | {} | sessions {}/{} | journal {}",
        health.uptime_ms as f64 / 1e3,
        if health.healthy { "healthy" } else { "UNHEALTHY" },
        health.sessions_active,
        health.max_sessions,
        if health.journal_enabled { "on" } else { "off" },
    );
    if reply.sessions.is_empty() {
        let _ = writeln!(out, "(no registered sessions)");
    } else {
        let _ = writeln!(
            out,
            "{:<7} {:<18} {:<10} {:<4} {:>6} {:>12} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>8}",
            "SESSION", "TRACE", "DEVICE", "CONN", "QUEUE", "SAMPLES", "SAMP/S", "EVENTS",
            "ACKED", "DEGR", "LAG", "SHED", "IDLE"
        );
        for row in &reply.sessions {
            let prev_row = prev.and_then(|(dt, p)| {
                p.sessions
                    .iter()
                    .find(|r| r.session_id == row.session_id)
                    .map(|r| (dt, r))
            });
            let (samp_rate, ev_suffix) = match prev_row {
                Some((dt, p)) if dt > 0.0 => session_rates(dt, p, row),
                _ => (row.samples_per_sec, String::new()),
            };
            let mut device = row.device.clone();
            device.truncate(10);
            let _ = writeln!(
                out,
                "{:<7} {:<18} {:<10} {:<4} {:>6} {:>12} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>7}ms",
                row.session_id,
                format!("0x{:016x}", row.trace_id),
                device,
                if row.connected { "yes" } else { "no" },
                format!("{}/{}", row.queue_depth, row.queue_capacity),
                row.samples_pushed,
                human_rate(samp_rate),
                format!("{}{ev_suffix}", row.events_emitted),
                row.events_acked,
                row.events_degraded,
                row.delivery_lag(),
                row.sheds,
                row.idle_ms,
            );
        }
    }
    let s = &reply.server;
    let _ = writeln!(
        out,
        "totals: samples {} | frames {} | bytes {} | events {} | sheds {}",
        s.samples_in, s.frames_in, s.bytes_in, s.events_total, s.sheds
    );
}

/// Renders one merged fleet frame for `emprof top` across several
/// nodes: per-node health headers, one session table with a NODE
/// column, then per-node totals capped by a fleet-total summary line.
fn render_fleet_frame(
    out: &mut String,
    nodes: &[(String, MetricsReply, emprof_serve::HealthWire)],
    down: &[String],
    prev: Option<(f64, &[(String, MetricsReply)])>,
) {
    let _ = writeln!(
        out,
        "emprof top — fleet of {} nodes",
        nodes.len() + down.len()
    );
    for (addr, _, health) in nodes {
        let _ = writeln!(
            out,
            "node {addr} | up {:.1}s | {} | sessions {}/{} | journal {}",
            health.uptime_ms as f64 / 1e3,
            if health.healthy { "healthy" } else { "UNHEALTHY" },
            health.sessions_active,
            health.max_sessions,
            if health.journal_enabled { "on" } else { "off" },
        );
    }
    for addr in down {
        let _ = writeln!(out, "node {addr} | DOWN (connection refused or timed out)");
    }
    let any_sessions = nodes.iter().any(|(_, reply, _)| !reply.sessions.is_empty());
    if any_sessions {
        let _ = writeln!(
            out,
            "{:<18} {:<7} {:<18} {:<10} {:<4} {:>6} {:>12} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>8}",
            "NODE", "SESSION", "TRACE", "DEVICE", "CONN", "QUEUE", "SAMPLES", "SAMP/S",
            "EVENTS", "ACKED", "DEGR", "LAG", "SHED", "IDLE"
        );
        for (addr, reply, _) in nodes {
            for row in &reply.sessions {
                let prev_row = prev.and_then(|(dt, replies)| {
                    replies
                        .iter()
                        .find(|(a, _)| a == addr)
                        .and_then(|(_, p)| {
                            p.sessions.iter().find(|r| r.session_id == row.session_id)
                        })
                        .map(|r| (dt, r))
                });
                let (samp_rate, ev_suffix) = match prev_row {
                    Some((dt, p)) if dt > 0.0 => session_rates(dt, p, row),
                    _ => (row.samples_per_sec, String::new()),
                };
                let mut device = row.device.clone();
                device.truncate(10);
                let mut node = addr.clone();
                node.truncate(18);
                let _ = writeln!(
                    out,
                    "{:<18} {:<7} {:<18} {:<10} {:<4} {:>6} {:>12} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>7}ms",
                    node,
                    row.session_id,
                    format!("0x{:016x}", row.trace_id),
                    device,
                    if row.connected { "yes" } else { "no" },
                    format!("{}/{}", row.queue_depth, row.queue_capacity),
                    row.samples_pushed,
                    human_rate(samp_rate),
                    format!("{}{ev_suffix}", row.events_emitted),
                    row.events_acked,
                    row.events_degraded,
                    row.delivery_lag(),
                    row.sheds,
                    row.idle_ms,
                );
            }
        }
    } else {
        let _ = writeln!(out, "(no registered sessions)");
    }
    let (mut samples, mut frames, mut bytes, mut events, mut sheds) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (_, reply, _) in nodes {
        let s = &reply.server;
        samples += s.samples_in;
        frames += s.frames_in;
        bytes += s.bytes_in;
        events += s.events_total;
        sheds += s.sheds;
    }
    let _ = writeln!(
        out,
        "totals: samples {samples} | frames {frames} | bytes {bytes} | events {events} | sheds {sheds} (fleet of {} nodes)",
        nodes.len() + down.len()
    );
}

/// Live fleet dashboard over the service's METRICS poll. With one
/// `--addr` this is the classic single-node view; with several, the
/// per-node rows merge into one dashboard with a NODE column and a
/// fleet-total summary line.
///
/// In the fleet view a node that refuses the dial or times out mid-poll
/// must not take the whole dashboard down with it: the node is rendered
/// as a DOWN line (counted in `top.node_down`), its client is dropped,
/// and every later frame retries the dial so a recovered backend
/// rejoins on its own. Single-node `top` keeps the historical behavior
/// of failing loudly.
fn top(opts: &TopOpts) -> Result<String, CliError> {
    let client_config = ClientConfig {
        read_timeout: std::time::Duration::from_secs(opts.timeout_secs),
        max_reconnects: opts.retries,
        ..ClientConfig::default()
    };
    let fleet = opts.addrs.len() > 1;
    let mut clients: Vec<(String, Option<MetricsClient>)> = Vec::with_capacity(opts.addrs.len());
    for addr in &opts.addrs {
        match MetricsClient::connect_with(addr.as_str(), client_config.clone()) {
            Ok(client) => clients.push((addr.clone(), Some(client))),
            Err(_) if fleet => {
                obs::counter_add!("top.node_down", 1);
                clients.push((addr.clone(), None));
            }
            Err(e) => return Err(CliError::Runtime(format!("{addr}: {e}"))),
        }
    }
    let mut out = String::new();
    let mut polled = 0u64;
    let mut prev: Option<(std::time::Instant, Vec<(String, MetricsReply)>)> = None;
    loop {
        let mut nodes = Vec::with_capacity(clients.len());
        let mut down = Vec::new();
        for (addr, slot) in &mut clients {
            if slot.is_none() {
                // Marked DOWN on an earlier frame: retry the dial so a
                // recovered backend rejoins the dashboard.
                *slot = MetricsClient::connect_with(addr.as_str(), client_config.clone()).ok();
            }
            let polled_node = match slot.as_mut() {
                Some(client) => client
                    .fetch_metrics()
                    .and_then(|reply| client.fetch_health().map(|health| (reply, health))),
                None => Err(emprof_serve::ClientError::Unexpected("node is down")),
            };
            match polled_node {
                Ok((reply, health)) => nodes.push((addr.clone(), reply, health)),
                Err(e) if !fleet => return Err(CliError::Runtime(format!("{addr}: {e}"))),
                Err(_) => {
                    *slot = None;
                    obs::counter_add!("top.node_down", 1);
                    down.push(addr.clone());
                }
            }
        }
        let now = std::time::Instant::now();
        if fleet {
            let prev_view = prev
                .as_ref()
                .map(|(at, r)| (now.duration_since(*at).as_secs_f64(), r.as_slice()));
            render_fleet_frame(&mut out, &nodes, &down, prev_view);
        } else {
            let (addr, reply, health) = &nodes[0];
            let prev_view = prev
                .as_ref()
                .map(|(at, r)| (now.duration_since(*at).as_secs_f64(), &r[0].1));
            render_top_frame(&mut out, addr, reply, health, prev_view);
        }
        prev = Some((
            now,
            nodes.into_iter().map(|(a, r, _)| (a, r)).collect(),
        ));
        polled += 1;
        let done = opts.once || opts.polls.is_some_and(|max| polled >= max);
        if done {
            break;
        }
        let _ = writeln!(out);
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
    Ok(out)
}

/// Fetches flight-recorder dumps from a running service.
fn dump_flight(opts: &DumpFlightOpts) -> Result<String, CliError> {
    let err = |e: emprof_serve::ClientError| CliError::Runtime(format!("{}: {e}", opts.addr));
    let client_config = ClientConfig {
        read_timeout: std::time::Duration::from_secs(opts.timeout_secs),
        max_reconnects: opts.retries,
        ..ClientConfig::default()
    };
    let mut client =
        MetricsClient::connect_with(opts.addr.as_str(), client_config).map_err(err)?;
    let dumps = client.fetch_flight(opts.session).map_err(err)?;
    let mut out = String::new();
    if dumps.is_empty() {
        let _ = writeln!(
            out,
            "no flight recorders matched (session {} at {})",
            opts.session, opts.addr
        );
        return Ok(out);
    }
    match &opts.out_dir {
        Some(dir) => {
            let io_err = |e: std::io::Error| CliError::Runtime(format!("{dir}: {e}"));
            std::fs::create_dir_all(dir).map_err(io_err)?;
            for d in &dumps {
                let path =
                    std::path::Path::new(dir).join(format!("flight-session-{}.json", d.session_id));
                std::fs::write(&path, format!("{}\n", d.json)).map_err(io_err)?;
                let _ = writeln!(
                    out,
                    "session {} (trace 0x{:016x}) written to {}",
                    d.session_id,
                    d.trace_id,
                    path.display()
                );
            }
        }
        None => {
            for d in &dumps {
                let _ = writeln!(out, "{}", d.json);
            }
        }
    }
    Ok(out)
}

/// Persists a magnitude CSV into a fresh durable journal.
fn record(opts: &RecordOpts) -> Result<String, CliError> {
    let csv = std::fs::read_to_string(&opts.signal_path)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", opts.signal_path)))?;
    let (signal, rejected) = report::signal_from_csv_sanitized(&csv)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let dir = std::path::Path::new(&opts.journal_dir);
    let meta = SessionMeta {
        session_id: 0,
        resume_token: 0,
        sample_rate_hz: opts.sample_rate_hz,
        clock_hz: opts.clock_hz,
        config: EmprofConfig::for_rates(opts.sample_rate_hz, opts.clock_hz),
        device: opts.device.clone(),
    };
    let jerr = |e: std::io::Error| CliError::Runtime(format!("{}: {e}", opts.journal_dir));
    let mut journal = SessionJournal::create(dir, meta, JournalConfig::default()).map_err(jerr)?;
    for (i, chunk) in signal.chunks(opts.frame).enumerate() {
        journal.append_samples(i as u64 + 1, chunk).map_err(jerr)?;
    }
    journal.sync().map_err(jerr)?;
    let stats = journal.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recorded {} samples in {} batches to {} ({} segments, {} bytes)",
        signal.len(),
        signal.chunks(opts.frame.max(1)).len(),
        opts.journal_dir,
        stats.segments,
        stats.bytes
    );
    if rejected > 0 {
        let _ = writeln!(out, "{rejected} non-finite CSV samples dropped before recording");
    }
    Ok(out)
}

/// Re-drives the detectors from a journaled capture.
fn replay(opts: &ReplayOpts) -> Result<String, CliError> {
    let dir = std::path::Path::new(&opts.journal_dir);
    // Journal recovery conjures missing directories into empty journals
    // (open never fails); a replay of a path that does not exist should
    // be an error, not a silent empty profile.
    if !dir.is_dir() {
        return Err(CliError::Runtime(format!(
            "{}: no such journal directory",
            opts.journal_dir
        )));
    }
    let jerr = |e: std::io::Error| CliError::Runtime(format!("{}: {e}", opts.journal_dir));
    let Some((_journal, rec)) =
        SessionJournal::open(dir, JournalConfig::default()).map_err(jerr)?
    else {
        return Err(CliError::Runtime(format!(
            "{}: not a session journal (no identity checkpoint survived)",
            opts.journal_dir
        )));
    };
    let mut out = String::new();
    if rec.report.truncations > 0 || rec.report.dropped_segments > 0 {
        let _ = writeln!(
            out,
            "recovery repaired the journal: {} torn tail(s) truncated ({} bytes), \
             {} segment(s) dropped",
            rec.report.truncations, rec.report.truncated_bytes, rec.report.dropped_segments
        );
    }
    let signal: Vec<f64> = rec
        .samples
        .iter()
        .flat_map(|(_, batch)| batch.iter().copied())
        .collect();
    let journaled: Vec<_> = rec.events.iter().map(|(_, e)| *e).collect();
    let (rate, clock) = (rec.meta.sample_rate_hz, rec.meta.clock_hz);
    if signal.is_empty() {
        // Samples compacted away (a finished, acked serve journal):
        // the journaled events are the capture's whole story.
        let profile = Profile::new(journaled, 0, rate, clock);
        let _ = writeln!(
            out,
            "{}: no samples retained; {} journaled events for device {:?}",
            opts.journal_dir,
            profile.events().len(),
            rec.meta.device
        );
        if let Some(path) = &opts.events_out {
            write_file(path, &report::events_to_csv(&profile))?;
            let _ = writeln!(out, "events written to {path}");
        }
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "{}: {} samples in {} batches, device {:?}, {:.0} MS/s capture",
        opts.journal_dir,
        signal.len(),
        rec.samples.len(),
        rec.meta.device,
        rate / 1e6
    );
    let batch = Emprof::new(rec.meta.config).profile_magnitude(&signal, rate, clock);
    let mut streaming = StreamingEmprof::new(rec.meta.config, rate, clock);
    streaming.extend(signal.iter().copied());
    let streamed = streaming.finish();
    if streamed.events() != batch.events() {
        return Err(CliError::Runtime(
            "replay MISMATCH: streaming and batch detectors disagree".into(),
        ));
    }
    let _ = writeln!(out, "{}", ProfileSummary::of(&batch));
    let _ = writeln!(
        out,
        "streaming replay: {} events (matches batch)",
        streamed.events().len()
    );
    if !journaled.is_empty() {
        // A serve journal that finalized before the crash: its events
        // must be a suffix-complete record of what the batch computes
        // past the compacted prefix.
        let total = batch.events().len();
        let tail = &batch.events()[total - journaled.len().min(total)..];
        if tail == journaled.as_slice() {
            let _ = writeln!(
                out,
                "journal holds {} finalized event(s); they match the recomputed profile",
                journaled.len()
            );
        } else {
            return Err(CliError::Runtime(
                "replay MISMATCH: journaled events disagree with recomputed profile".into(),
            ));
        }
    }
    if let Some(path) = &opts.events_out {
        write_file(path, &report::events_to_csv(&batch))?;
        let _ = writeln!(out, "events written to {path}");
    }
    Ok(out)
}

/// Dumps per-segment health of a journal directory (read-only).
fn journal_inspect(opts: &InspectOpts) -> Result<String, CliError> {
    let dir = std::path::Path::new(&opts.journal_dir);
    let inspect = inspect_dir(dir)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", opts.journal_dir)))?;
    let mut out = String::new();
    let _ = writeln!(out, "journal {}", inspect.dir.display());
    if inspect.segments.is_empty() {
        let _ = writeln!(out, "(no segments)");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>10} {:>10}  {:<7} {:<8} records (meta/samp/ev/cur/fin/foot)  max-ev",
        "segment", "base", "bytes", "valid", "state", "footer"
    );
    for seg in &inspect.segments {
        let state = if !seg.header_ok {
            "BAD-HDR"
        } else if seg.torn {
            "TORN"
        } else {
            "ok"
        };
        let footer = match seg.footer {
            FooterStatus::Ok => "ok",
            FooterStatus::Missing => "missing",
            FooterStatus::Mismatch => "MISMATCH",
        };
        let k = &seg.records_by_kind;
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10} {:>10}  {:<7} {:<8} {} ({}/{}/{}/{}/{}/{})  {}",
            seg.file_name,
            seg.base_index,
            seg.bytes_on_disk,
            seg.valid_bytes,
            state,
            footer,
            seg.records,
            k[0],
            k[1],
            k[2],
            k[3],
            k[4],
            k[5],
            seg.max_event_seq
        );
    }
    for anomaly in &inspect.anomalies {
        let _ = writeln!(out, "anomaly: {anomaly}");
    }
    let _ = writeln!(
        out,
        "{} segment(s), {} record(s), healthy: {}",
        inspect.segments.len(),
        inspect.records(),
        if inspect.healthy() { "yes" } else { "NO" }
    );
    Ok(out)
}

/// Evaluates range statistics over a journal — locally from a directory
/// or remotely from a `serve --journal` node or router.
///
/// Both paths render the same [`QueryResultWire`] shape, and the result
/// is bit-identical to recomputing the statistic from a full replay of
/// the same journals: locally because the engine folds events through
/// the exact accumulator replay uses, remotely because the latency
/// distribution travels as raw histogram buckets and quantiles are
/// derived client-side from the same code.
fn query(opts: &QueryOpts) -> Result<String, CliError> {
    let result = match (&opts.journal_dir, &opts.addr) {
        (Some(dir), None) => {
            let spec = QuerySpec {
                t0: opts.t0,
                t1: opts.t1,
                sessions: opts.sessions.clone(),
                bucket_samples: opts.bucket_samples,
            };
            let root = std::path::Path::new(dir);
            if !root.is_dir() {
                return Err(CliError::Runtime(format!(
                    "{dir}: no such journal directory"
                )));
            }
            let local = query_journals(root, &spec, None)
                .map_err(|e| CliError::Runtime(format!("{dir}: {e}")))?;
            query_result_to_wire(&local)
        }
        (None, Some(addr)) => {
            let err = |e: emprof_serve::ClientError| CliError::Runtime(format!("{addr}: {e}"));
            let client_config = ClientConfig {
                read_timeout: std::time::Duration::from_secs(opts.timeout_secs),
                max_reconnects: opts.retries,
                ..ClientConfig::default()
            };
            let mut client =
                MetricsClient::connect_with(addr.as_str(), client_config).map_err(err)?;
            let spec = QuerySpecWire {
                t0: opts.t0,
                t1: opts.t1,
                bucket_samples: opts.bucket_samples,
                sessions: opts.sessions.clone(),
            };
            client.query(&spec).map_err(err)?
        }
        // parse_query enforces exactly one of --journal / --addr.
        _ => unreachable!("parse enforced the journal/addr choice"),
    };
    let mut out = String::new();
    if opts.json {
        render_query_json(&mut out, opts, &result);
    } else {
        render_query_table(&mut out, opts, &result);
    }
    Ok(out)
}

/// Formats a latency quantile in cycles, or `-` before any event.
fn cycles_or_dash(q: Option<f64>) -> String {
    match q {
        Some(v) => format!("{v:.0}"),
        None => "-".to_string(),
    }
}

/// Renders a QUERY_RESULT as the human table.
fn render_query_table(out: &mut String, opts: &QueryOpts, r: &QueryResultWire) {
    let t1 = if opts.t1 == u64::MAX {
        "end".to_string()
    } else {
        opts.t1.to_string()
    };
    let _ = writeln!(
        out,
        "query [{}, {t1}] | {} session(s) | {} node(s)",
        opts.t0,
        r.sessions.len(),
        r.nodes
    );
    let _ = writeln!(
        out,
        "events {} | degraded {} | refresh collisions {}",
        r.events, r.degraded, r.refresh_collisions
    );
    let _ = writeln!(
        out,
        "stall latency (cycles): p50 {} | p90 {} | p99 {} | min {} | max {}",
        cycles_or_dash(r.latency.p50()),
        cycles_or_dash(r.latency.p90()),
        cycles_or_dash(r.latency.p99()),
        r.latency.min.map_or("-".to_string(), |v| v.to_string()),
        r.latency.max.map_or("-".to_string(), |v| v.to_string()),
    );
    if !r.sessions.is_empty() {
        let _ = writeln!(
            out,
            "{:<9} {:<12} {:>8} {:>8} {:>10}",
            "SESSION", "DEVICE", "EVENTS", "DEGR", "COLLISIONS"
        );
        for row in &r.sessions {
            let mut device = row.device.clone();
            device.truncate(12);
            let _ = writeln!(
                out,
                "{:<9} {:<12} {:>8} {:>8} {:>10}",
                row.session_id, device, row.events, row.degraded, row.refresh_collisions
            );
        }
    }
    if !r.timeline.is_empty() {
        let _ = writeln!(
            out,
            "timeline ({} buckets of {} samples): {}",
            r.timeline.len(),
            opts.bucket_samples,
            r.timeline
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    let _ = writeln!(
        out,
        "segments: {} scanned, {} pruned | cache: {} hits, {} misses",
        r.segments_scanned, r.segments_pruned, r.cache_hits, r.cache_misses
    );
}

/// Renders a QUERY_RESULT as one JSON document (hand-rolled: the
/// workspace is pure `std`, and every field is a number, a string with
/// no exotic characters, or an array of those).
fn render_query_json(out: &mut String, opts: &QueryOpts, r: &QueryResultWire) {
    fn json_string(s: &str) -> String {
        let mut esc = String::with_capacity(s.len() + 2);
        esc.push('"');
        for c in s.chars() {
            match c {
                '"' => esc.push_str("\\\""),
                '\\' => esc.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(esc, "\\u{:04x}", c as u32);
                }
                c => esc.push(c),
            }
        }
        esc.push('"');
        esc
    }
    fn opt_num(v: Option<f64>) -> String {
        match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_string(),
        }
    }
    let sessions = r
        .sessions
        .iter()
        .map(|row| {
            format!(
                "{{\"session_id\":{},\"device\":{},\"events\":{},\"degraded\":{},\
                 \"refresh_collisions\":{}}}",
                row.session_id,
                json_string(&row.device),
                row.events,
                row.degraded,
                row.refresh_collisions
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let timeline = r
        .timeline
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let _ = writeln!(
        out,
        "{{\"t0\":{},\"t1\":{},\"events\":{},\"degraded\":{},\"refresh_collisions\":{},\
         \"latency\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\
         \"p99\":{}}},\"sessions\":[{}],\"timeline\":[{}],\"bucket_samples\":{},\
         \"segments_scanned\":{},\"segments_pruned\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"nodes\":{}}}",
        opts.t0,
        opts.t1,
        r.events,
        r.degraded,
        r.refresh_collisions,
        r.latency.count,
        r.latency.sum,
        r.latency.min.map_or("null".to_string(), |v| v.to_string()),
        r.latency.max.map_or("null".to_string(), |v| v.to_string()),
        opt_num(r.latency.p50()),
        opt_num(r.latency.p90()),
        opt_num(r.latency.p99()),
        sessions,
        timeline,
        opts.bucket_samples,
        r.segments_scanned,
        r.segments_pruned,
        r.cache_hits,
        r.cache_misses,
        r.nodes
    );
}

fn demo() -> Result<String, CliError> {
    let device = DeviceModel::olimex();
    let config = MicrobenchConfig::new(256, 1);
    let program = config
        .build()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let result = Simulator::new(device.clone())
        .with_max_cycles(4_000_000_000)
        .run(Interpreter::new(&program));
    let (profile, _, _) =
        profile_of(&result, &device, 40e6, 7, Parallelism::resolve(None), false);
    let window = result
        .ground_truth
        .marker_window(
            emprof_workloads::MARKER_MISS_START,
            emprof_workloads::MARKER_MISS_END,
        )
        .ok_or_else(|| CliError::Runtime("markers missing".into()))?;
    let section = profile.slice_cycles(window.0, window.1);
    let reported = section.miss_count() + section.refresh_count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "microbenchmark engineered for {} LLC misses on the Olimex model",
        config.total_misses
    );
    let _ = writeln!(
        out,
        "EMPROF detected {} stalls in the measured section ({:.2}% accuracy)",
        reported,
        emprof_core::accuracy::count_accuracy(reported as f64, config.total_misses as f64)
            * 100.0
    );
    let _ = writeln!(
        out,
        "mean measured latency {:.0} cycles (~{:.0} ns at {:.3} GHz)",
        section.mean_latency_cycles(),
        section.mean_latency_cycles() / device.clock_hz * 1e9,
        device.clock_hz / 1e9
    );
    Ok(out)
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// Telemetry state is process-global; tests that toggle it must not
    /// overlap.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn devices_lists_all_models() {
        let out = run(&argv("devices")).unwrap();
        for name in ["alcatel", "samsung", "olimex", "sesc-sim"] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn help_is_returned() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn simulate_microbench_reports_counts() {
        let out = run(&argv("simulate microbench:64:4 --device olimex --seed 3")).unwrap();
        assert!(out.contains("misses:"), "{out}");
        assert!(out.contains("ground truth:"), "{out}");
    }

    #[test]
    fn simulate_iot_kernel() {
        let out = run(&argv("simulate table-crypto --scale 0.05")).unwrap();
        assert!(out.contains("table-crypto on olimex"));
    }

    #[test]
    fn simulate_spec_scaled() {
        let out = run(&argv("simulate vpr --scale 0.01 --device sesc")).unwrap();
        assert!(out.contains("vpr on sesc-sim"));
    }

    #[test]
    fn unknown_workload_and_device_error() {
        assert!(matches!(
            run(&argv("simulate nope --scale 0.01")),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(&argv("simulate mcf --device toaster")),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(&argv("simulate microbench:abc:1")),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn signal_round_trips_through_files() {
        let dir = std::env::temp_dir().join("emprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sig = dir.join("sig.csv");
        let ev = dir.join("ev.csv");
        let out = run(&argv(&format!(
            "simulate microbench:64:4 --seed 5 --signal-out {} --events-out {}",
            sig.display(),
            ev.display()
        )))
        .unwrap();
        assert!(out.contains("signal written"));

        // Profile the exported capture; counts must match the simulate run.
        let out2 = run(&argv(&format!(
            "profile {} --rate 40e6 --clock 1.008e9",
            sig.display()
        )))
        .unwrap();
        let miss_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("misses:"))
                .map(str::to_string)
                .expect("misses line")
        };
        assert_eq!(miss_line(&out), miss_line(&out2));
        // The events CSV parses back.
        let events =
            report::events_from_csv(&std::fs::read_to_string(&ev).unwrap()).unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn metrics_jsonl_covers_the_whole_pipeline() {
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("emprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.jsonl");
        let trace = dir.join("trace.jsonl");
        let out = run(&argv(&format!(
            "simulate microbench:64:4 --seed 5 --metrics {} --trace {}",
            metrics.display(),
            trace.display()
        )))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        assert!(out.contains("streaming cross-check"), "{out}");
        assert!(out.contains("matches batch"), "{out}");

        let body = std::fs::read_to_string(&metrics).unwrap();
        // Detect-stage wall-time spans.
        for span in ["detect.fused", "detect.merge", "detect.refine"] {
            assert!(
                body.contains(&format!("{{\"type\":\"span\",\"name\":\"{span}\"")),
                "missing span {span} in:\n{body}"
            );
        }
        // Per-level cache hit/miss counters from the simulator.
        for ctr in [
            "sim.cache.l1d.hit",
            "sim.cache.l1d.miss",
            "sim.cache.l1i.hit",
            "sim.cache.l1i.miss",
            "sim.cache.llc.hit",
            "sim.cache.llc.miss",
        ] {
            assert!(
                body.contains(&format!("{{\"type\":\"counter\",\"name\":\"{ctr}\"")),
                "missing counter {ctr} in:\n{body}"
            );
        }
        // Streaming throughput gauge.
        assert!(
            body.contains("{\"type\":\"gauge\",\"name\":\"stream.samples_per_sec\""),
            "missing throughput gauge in:\n{body}"
        );
        // Every line is a JSON object.
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        let trace_body = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_body.contains("{\"type\":\"trace\",\"name\":\"sim.run\""));
    }

    #[test]
    fn stats_subcommand_prints_telemetry_table() {
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = run(&argv("stats microbench:64:4 --seed 5")).unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("spans (wall time per stage)"), "{out}");
        assert!(out.contains("detect.fused"), "{out}");
        assert!(out.contains("sim.cache.llc.miss"), "{out}");
        // The stall-latency histogram quantiles ride along.
        assert!(out.contains("stall latency:"), "{out}");
        assert!(out.contains("p99"), "{out}");
    }

    #[test]
    fn telemetry_off_leaves_recording_disabled() {
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = run(&argv("simulate microbench:64:4 --seed 5")).unwrap();
        assert!(!emprof_obs::is_enabled());
    }

    #[test]
    fn thread_count_never_changes_the_output() {
        let base = run(&argv("simulate microbench:64:4 --seed 5 --threads 1")).unwrap();
        for threads in [2, 4] {
            let out = run(&argv(&format!(
                "simulate microbench:64:4 --seed 5 --threads {threads}"
            )))
            .unwrap();
            assert_eq!(base, out, "--threads {threads} changed the report");
        }
    }

    #[test]
    fn push_and_watch_against_in_process_server() {
        let dir = std::env::temp_dir().join("emprof-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sig = dir.join("push-sig.csv");
        run(&argv(&format!(
            "simulate microbench:64:4 --seed 5 --signal-out {}",
            sig.display()
        )))
        .unwrap();

        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let pushed = run(&argv(&format!(
            "push {} --rate 40e6 --clock 1.008e9 --addr {addr} --frame 1000 --device cli",
            sig.display()
        )))
        .unwrap();
        let local = run(&argv(&format!(
            "profile {} --rate 40e6 --clock 1.008e9",
            sig.display()
        )))
        .unwrap();
        let miss_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("misses:"))
                .map(str::to_string)
                .expect("misses line")
        };
        // The served profile is the local profile, bit for bit.
        assert_eq!(miss_line(&pushed), miss_line(&local));

        let watched = run(&argv(&format!(
            "watch --addr {addr} --polls 1 --interval-ms 10"
        )))
        .unwrap();
        assert!(watched.contains("sessions"), "{watched}");
        assert!(watched.contains("session "), "tail events missing: {watched}");
        server.shutdown();
    }

    #[test]
    fn session_rates_clamp_counter_resets() {
        let row = |samples: u64, events: u64| emprof_serve::SessionRow {
            session_id: 1,
            trace_id: 42,
            device: "dev".into(),
            connected: true,
            queue_depth: 0,
            queue_capacity: 8,
            samples_pushed: samples,
            samples_per_sec: 123.0,
            events_emitted: events,
            events_acked: 0,
            journaled_events: 0,
            sheds: 0,
            samples_rejected: 0,
            events_degraded: 0,
            idle_ms: 0,
        };
        // Monotone counters: the rate is the client-side delta.
        let (rate, suffix) = session_rates(2.0, &row(1_000, 3), &row(5_000, 7));
        assert_eq!(rate, 2_000.0);
        assert_eq!(suffix, " (+4)");
        // A counter moving backwards is a backend restart, not a
        // negative rate: fall back to the server's windowed figure.
        let (rate, suffix) = session_rates(2.0, &row(5_000, 7), &row(100, 0));
        assert_eq!(rate, 123.0);
        assert_eq!(suffix, " (reset)");
        // Either counter regressing alone counts as a reset.
        let (rate, suffix) = session_rates(2.0, &row(100, 7), &row(200, 2));
        assert_eq!(rate, 123.0);
        assert_eq!(suffix, " (reset)");
    }

    #[test]
    fn top_and_dump_flight_against_in_process_server() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        // A live mid-stream session so the dashboard has a row to render.
        let config = EmprofConfig::for_rates(40e6, 1e9);
        let mut client =
            ProfileClient::connect(addr, "top-test", config, 40e6, 1e9).unwrap();
        client.send(&vec![5.0; 20_000]).unwrap();

        let topped = run(&argv(&format!("top --addr {addr} --once"))).unwrap();
        assert!(topped.contains("emprof top"), "{topped}");
        assert!(topped.contains("SESSION"), "{topped}");
        assert!(topped.contains("top-test"), "{topped}");
        assert!(topped.contains("0x"), "trace id missing: {topped}");
        assert!(topped.contains("totals:"), "{topped}");

        // Two polls: the second frame's rates are client-side deltas.
        let twice = run(&argv(&format!(
            "top --addr {addr} --polls 2 --interval-ms 10"
        )))
        .unwrap();
        assert_eq!(twice.matches("totals:").count(), 2, "{twice}");

        let dir = std::env::temp_dir().join("emprof-cli-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        let dumped = run(&argv(&format!(
            "dump-flight --addr {addr} --out {}",
            dir.display()
        )))
        .unwrap();
        assert!(dumped.contains("written to"), "{dumped}");
        let dump_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flight-session-") && n.ends_with(".json"))
            })
            .collect();
        assert_eq!(dump_files.len(), 1, "{dump_files:?}");
        let body = std::fs::read_to_string(&dump_files[0]).unwrap();
        assert!(body.contains("\"type\":\"flight\""), "{body}");
        assert!(body.contains("\"trace_id\":\"0x"), "{body}");

        // Without --out the dump JSON itself goes to stdout.
        let stdout_dump = run(&argv(&format!("dump-flight --addr {addr}"))).unwrap();
        assert!(stdout_dump.contains("\"type\":\"flight\""), "{stdout_dump}");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn dump_flight_unknown_session_is_empty_not_fatal() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let out = run(&argv(&format!("dump-flight --addr {addr} --session 99"))).unwrap();
        assert!(out.contains("no flight recorders matched"), "{out}");
        server.shutdown();
    }

    #[test]
    fn serve_with_metrics_addr_runs() {
        // --metrics-addr implies telemetry (toggles the global obs
        // state), so serialize with the other obs-touching tests.
        let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = run(&argv(
            "serve --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:0 --duration 1 --threads 2",
        ))
        .unwrap();
        assert!(out.contains("served 0 connections"), "{out}");
        assert!(!obs::is_enabled(), "serve must restore the obs toggle");
    }

    #[test]
    fn serve_bounded_duration_reports_stats() {
        let out = run(&argv(
            "serve --addr 127.0.0.1:0 --duration 1 --queue-frames 8 --threads 2",
        ))
        .unwrap();
        assert!(out.contains("served 0 connections"), "{out}");
        assert!(out.contains("peak queue depth"), "{out}");
    }

    #[test]
    fn router_verb_routes_a_session_end_to_end() {
        let backend = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let baddr = backend.local_addr();
        // The router binds a pre-picked free port: the banner (with the
        // resolved ephemeral addr) goes to stdout, not the return value.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let raddr = format!("127.0.0.1:{port}");
        let handle = std::thread::spawn({
            let raddr = raddr.clone();
            move || {
                run(&argv(&format!(
                    "router --addr {raddr} --backends b0={baddr} --probe-ms 100 --duration 3"
                )))
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while std::net::TcpStream::connect(&raddr).is_err() {
            assert!(
                std::time::Instant::now() < deadline,
                "router never started listening on {raddr}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let config = EmprofConfig::for_rates(40e6, 1e9);
        let mut client =
            ProfileClient::connect(raddr.as_str(), "via-router", config, 40e6, 1e9).unwrap();
        client.send(&vec![5.0; 20_000]).unwrap();
        let (_, stats) = client.finish().unwrap();
        assert!(stats.final_report);
        assert_eq!(stats.samples_pushed, 20_000);

        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("routed 1 sessions"), "{out}");
        assert!(out.contains("migrations 0 (0 lossy)"), "{out}");
        assert!(out.contains("backends up 1"), "{out}");
        backend.shutdown();
    }

    #[test]
    fn top_merges_multiple_addrs_into_one_fleet_view() {
        let s1 = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let s2 = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let (a1, a2) = (s1.local_addr(), s2.local_addr());
        let config = EmprofConfig::for_rates(40e6, 1e9);
        let mut c1 = ProfileClient::connect(a1, "fleet-a", config, 40e6, 1e9).unwrap();
        let mut c2 = ProfileClient::connect(a2, "fleet-b", config, 40e6, 1e9).unwrap();
        c1.send(&vec![5.0; 10_000]).unwrap();
        c2.send(&vec![5.0; 10_000]).unwrap();

        let out = run(&argv(&format!("top --addr {a1} --addr {a2} --once"))).unwrap();
        assert!(out.contains("fleet of 2 nodes"), "{out}");
        // Per-node health headers, one merged table with a NODE column.
        assert!(out.contains(&format!("node {a1}")), "{out}");
        assert!(out.contains(&format!("node {a2}")), "{out}");
        assert!(out.contains("NODE"), "{out}");
        assert!(out.contains("fleet-a") && out.contains("fleet-b"), "{out}");
        // Exactly one totals line: the fleet-wide sum, not per node.
        assert_eq!(out.matches("totals:").count(), 1, "{out}");
        assert!(out.contains("(fleet of 2 nodes)"), "{out}");

        // Two polls: second-frame rates are client-side deltas per node.
        let twice = run(&argv(&format!(
            "top --addr {a1} --addr {a2} --polls 2 --interval-ms 10"
        )))
        .unwrap();
        assert_eq!(twice.matches("totals:").count(), 2, "{twice}");

        drop(c1);
        drop(c2);
        s1.shutdown();
        s2.shutdown();
    }

    #[test]
    fn top_fleet_marks_dead_node_down_and_keeps_rendering() {
        let live = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = live.local_addr();
        let config = EmprofConfig::for_rates(40e6, 1e9);
        let mut client = ProfileClient::connect(addr, "survivor", config, 40e6, 1e9).unwrap();
        client.send(&vec![5.0; 10_000]).unwrap();
        // A fresh ephemeral listener, immediately closed: nothing there.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        };

        let out = run(&argv(&format!("top --addr {addr} --addr {dead} --once"))).unwrap();
        assert!(out.contains("fleet of 2 nodes"), "{out}");
        assert!(out.contains(&format!("node {dead} | DOWN")), "{out}");
        // The live node still renders its health header and rows.
        assert!(out.contains(&format!("node {addr} | up")), "{out}");
        assert!(out.contains("survivor"), "{out}");
        assert!(out.contains("totals:"), "{out}");

        // Single-node top keeps the historical fail-loudly behavior.
        assert!(matches!(
            run(&argv(&format!("top --addr {dead} --once"))),
            Err(CliError::Runtime(_))
        ));

        drop(client);
        live.shutdown();
    }

    #[test]
    fn query_local_and_remote_agree_end_to_end() {
        let dir = std::env::temp_dir().join("emprof-cli-query-test");
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let config = EmprofConfig::for_rates(40e6, 1e9);
        let mut signal = vec![5.0; 40_000];
        for (start, width) in [(5_000usize, 12usize), (9_000, 30), (15_000, 8)] {
            for s in signal.iter_mut().skip(start).take(width) {
                *s = 0.8;
            }
        }
        let mut client = ProfileClient::connect(addr, "qdev", config, 40e6, 1e9).unwrap();
        client.send(&signal).unwrap();
        // Flush (not finish): a finished, fully-acked session's journal
        // is cleanly retired — deleted — and there would be nothing
        // left to query. A flushed mid-stream session keeps journaling.
        let (events, _) = client.flush().unwrap();
        assert!(!events.is_empty(), "the dipped signal must produce events");

        let remote = run(&argv(&format!("query --addr {addr}"))).unwrap();
        let local = run(&argv(&format!("query --journal {}", dir.display()))).unwrap();
        let stat_lines = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("events ") || l.starts_with("stall latency"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        // Remote (server-side engine + wire) and local (direct read)
        // agree on every statistic.
        assert_eq!(stat_lines(&remote), stat_lines(&local), "{remote}\n{local}");
        assert!(
            remote.contains(&format!("events {}", events.len())),
            "{remote}"
        );
        assert!(remote.contains("qdev"), "{remote}");
        assert!(remote.contains("p99"), "{remote}");

        // --json emits one machine-readable document with the same counts.
        let json = run(&argv(&format!(
            "query --journal {} --t0 0 --t1 39999 --bucket 10000 --json",
            dir.display()
        )))
        .unwrap();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'), "{json}");
        assert!(
            json.contains(&format!("\"events\":{}", events.len())),
            "{json}"
        );
        assert!(json.contains("\"timeline\":["), "{json}");

        // A windowed query keeps only events starting inside the range.
        let windowed = run(&argv(&format!(
            "query --journal {} --t0 0 --t1 6000",
            dir.display()
        )))
        .unwrap();
        assert!(windowed.contains("events 1 "), "{windowed}");

        drop(client);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_flight_dir_flag_is_threaded_through() {
        let dir = std::env::temp_dir().join("emprof-cli-flight-dir-flag");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&argv(&format!(
            "serve --addr 127.0.0.1:0 --flight-dir {} --duration 1 --threads 2",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("served 0 connections"), "{out}");
        // Server::bind creates the flight directory eagerly.
        assert!(dir.is_dir(), "--flight-dir was not passed to ServeConfig");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_unreachable_server_errors() {
        let dir = std::env::temp_dir().join("emprof-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sig = dir.join("unreachable-sig.csv");
        std::fs::write(&sig, "magnitude\n1.0\n2.0\n").unwrap();
        // A fresh ephemeral listener, immediately closed: nothing is there.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        assert!(matches!(
            run(&argv(&format!(
                "push {} --rate 1e6 --clock 1e9 --addr 127.0.0.1:{port}",
                sig.display()
            ))),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn simulate_with_fault_plan_reports_injections() {
        let out = run(&argv(
            "simulate microbench:64:4 --seed 5 --fault-plan chaos --fault-seed 7",
        ))
        .unwrap();
        assert!(out.contains("faults injected:"), "{out}");
        // The run still completes with a profile despite the chaos.
        assert!(out.contains("misses:"), "{out}");
        // A malformed plan is a usage error, not a runtime crash.
        assert!(matches!(
            run(&argv("simulate microbench:64:4 --fault-plan dropout=banana")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn push_with_resilience_flags_and_faults() {
        let dir = std::env::temp_dir().join("emprof-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sig = dir.join("fault-sig.csv");
        run(&argv(&format!(
            "simulate microbench:64:4 --seed 5 --signal-out {}",
            sig.display()
        )))
        .unwrap();
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let out = run(&argv(&format!(
            "push {} --rate 40e6 --clock 1.008e9 --addr {addr} --frame 1000 \
             --timeout 5 --retries 2 --fault-plan corrupt=2e-3 --fault-seed 3",
            sig.display()
        )))
        .unwrap();
        assert!(out.contains("faults injected:"), "{out}");
        // corrupt=2e-3 over tens of thousands of samples injects NaN/inf
        // the server must reject rather than let them poison the wedge.
        assert!(out.contains("server rejected"), "{out}");
        assert!(out.contains("misses:"), "{out}");
        server.shutdown();
    }

    #[test]
    fn record_replay_inspect_round_trip() {
        let dir = std::env::temp_dir().join("emprof-cli-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sig = dir.join("rec-sig.csv");
        let journal = dir.join("journal");
        run(&argv(&format!(
            "simulate microbench:64:4 --seed 5 --signal-out {}",
            sig.display()
        )))
        .unwrap();

        let recorded = run(&argv(&format!(
            "record {} --journal {} --rate 40e6 --clock 1.008e9 --device cli --frame 4096",
            sig.display(),
            journal.display()
        )))
        .unwrap();
        assert!(recorded.contains("recorded"), "{recorded}");

        // Replay reproduces the direct profile of the same CSV.
        let replayed = run(&argv(&format!("replay --journal {}", journal.display()))).unwrap();
        let local = run(&argv(&format!(
            "profile {} --rate 40e6 --clock 1.008e9",
            sig.display()
        )))
        .unwrap();
        let miss_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("misses:"))
                .map(str::to_string)
                .expect("misses line")
        };
        assert_eq!(miss_line(&replayed), miss_line(&local));
        assert!(replayed.contains("matches batch"), "{replayed}");

        let inspected = run(&argv(&format!("journal-inspect {}", journal.display()))).unwrap();
        assert!(inspected.contains("healthy: yes"), "{inspected}");
        assert!(inspected.contains("seg-"), "{inspected}");

        // A torn tail is repaired, not fatal: chop bytes off the last
        // segment and replay again.
        let mut segs: Vec<_> = std::fs::read_dir(&journal)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let last = segs.last().unwrap();
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 3]).unwrap();
        let repaired = run(&argv(&format!("replay --journal {}", journal.display()))).unwrap();
        assert!(repaired.contains("recovery repaired"), "{repaired}");
        assert!(repaired.contains("matches batch"), "{repaired}");
    }

    #[test]
    fn replay_missing_journal_errors() {
        let missing = std::env::temp_dir().join("emprof-cli-missing-journal");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(matches!(
            run(&argv(&format!("replay --journal {}", missing.display()))),
            Err(CliError::Runtime(_))
        ));
        assert!(
            !missing.exists(),
            "a failed replay must not conjure the directory"
        );
        assert!(matches!(
            run(&argv(&format!("journal-inspect {}", missing.display()))),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn serve_with_journal_reports_banner_dir() {
        let dir = std::env::temp_dir().join("emprof-cli-serve-journal");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&argv(&format!(
            "serve --addr 127.0.0.1:0 --duration 1 --threads 2 --journal {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("served 0 connections"), "{out}");
        assert!(dir.exists(), "--journal must create the directory");
    }

    #[test]
    fn profile_missing_file_errors() {
        assert!(matches!(
            run(&argv("profile /nonexistent.csv --rate 1e6 --clock 1e9")),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn demo_reports_high_accuracy() {
        let out = run(&argv("demo")).unwrap();
        let pct: f64 = out
            .split('(')
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .expect("accuracy in output");
        assert!(pct > 95.0, "demo accuracy {pct}: {out}");
    }
}
