//! Library backing the `emprof` command-line tool.
//!
//! The binary is a thin wrapper over [`run`]; all command parsing and
//! execution lives here so it can be tested without spawning processes.
//!
//! ```text
//! emprof devices
//! emprof simulate <workload> [--device NAME] [--bandwidth HZ] [--scale F]
//!                 [--seed N] [--signal-out FILE] [--events-out FILE]
//! emprof profile <signal.csv> --rate HZ --clock HZ [--events-out FILE]
//! emprof serve [--addr HOST:PORT] [--threads N] [--queue-frames N] [--shed]
//! emprof push <signal.csv> --rate HZ --clock HZ [--addr HOST:PORT]
//! emprof watch [--addr HOST:PORT] [--interval-ms MS] [--polls N]
//! emprof demo
//! ```
//!
//! Workloads: `microbench:TM:CM`, the SPEC-like names (`ammp`, `bzip2`,
//! `crafty`, `equake`, `gzip`, `mcf`, `parser`, `twolf`, `vortex`,
//! `vpr`), `boot`, and the IoT kernels (`sensor-filter`,
//! `block-transfer`, `table-crypto`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod opts;

pub use commands::run;
pub use opts::{
    CliError, Command, ProfileOpts, PushOpts, ServeOpts, SimulateOpts, WatchOpts,
};
