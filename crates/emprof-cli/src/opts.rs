//! Command-line parsing (hand-rolled; the crate stays dependency-light).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the modeled devices.
    Devices,
    /// Simulate a workload, capture it, and profile the capture.
    Simulate(SimulateOpts),
    /// Profile an existing magnitude-CSV capture.
    Profile(ProfileOpts),
    /// Run a workload pipeline and report its telemetry.
    Stats(SimulateOpts),
    /// Run the end-to-end demonstration.
    Demo,
    /// Print usage.
    Help,
}

/// Telemetry output options shared by the pipeline-running commands.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsOpts {
    /// Write a metrics snapshot as JSON lines to this path.
    pub metrics_out: Option<String>,
    /// Write individual span occurrences as JSON lines to this path.
    pub trace_out: Option<String>,
    /// Append a human-readable telemetry table to the report.
    pub verbose_stats: bool,
}

impl ObsOpts {
    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some() || self.verbose_stats
    }

    /// Consumes `arg` if it is a telemetry flag; returns whether it was.
    fn take_flag<'a, I: Iterator<Item = &'a String>>(
        &mut self,
        arg: &str,
        it: &mut std::iter::Peekable<I>,
    ) -> Result<bool, CliError> {
        match arg {
            "--metrics" => self.metrics_out = Some(take_value(it, "--metrics")?),
            "--trace" => self.trace_out = Some(take_value(it, "--trace")?),
            "--verbose-stats" => self.verbose_stats = true,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Options of `emprof simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOpts {
    /// Workload spec string (e.g. `mcf`, `microbench:256:1`, `boot`).
    pub workload: String,
    /// Device model name (`alcatel`, `samsung`, `olimex`, `sesc`).
    pub device: String,
    /// Measurement bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Length scale for scalable workloads.
    pub scale: f64,
    /// Capture/workload seed.
    pub seed: u64,
    /// Worker threads for the analysis pipeline (`None` = the
    /// `EMPROF_THREADS` environment variable, falling back to the
    /// hardware's available parallelism; `1` forces the sequential path).
    pub threads: Option<usize>,
    /// Write the captured magnitude signal to this CSV path.
    pub signal_out: Option<String>,
    /// Write the detected events to this CSV path.
    pub events_out: Option<String>,
    /// Telemetry outputs.
    pub obs: ObsOpts,
}

impl Default for SimulateOpts {
    fn default() -> Self {
        SimulateOpts {
            workload: String::new(),
            device: "olimex".to_string(),
            bandwidth_hz: 40e6,
            scale: 0.1,
            seed: 1,
            threads: None,
            signal_out: None,
            events_out: None,
            obs: ObsOpts::default(),
        }
    }
}

/// Options of `emprof profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOpts {
    /// Path of the magnitude CSV to analyze.
    pub signal_path: String,
    /// Capture sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Profiled core clock in Hz.
    pub clock_hz: f64,
    /// Worker threads for the detector (`None` = environment/hardware
    /// default, `1` forces the sequential path).
    pub threads: Option<usize>,
    /// Write the detected events to this CSV path.
    pub events_out: Option<String>,
    /// Telemetry outputs.
    pub obs: ObsOpts,
}

/// Errors produced while parsing or executing a command.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The arguments did not form a valid command.
    Usage(String),
    /// A runtime failure (I/O, bad CSV, unknown workload, ...).
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses a full argument list (excluding argv\[0\]).
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown commands, unknown flags,
/// missing values, or unparsable numbers.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "devices" => expect_end(it).map(|()| Command::Devices),
        "demo" => expect_end(it).map(|()| Command::Demo),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "simulate" => parse_simulate(it, "simulate").map(Command::Simulate),
        "stats" => parse_simulate(it, "stats").map(|mut opts| {
            // The whole point of `stats` is the telemetry table.
            opts.obs.verbose_stats = true;
            Command::Stats(opts)
        }),
        "profile" => {
            let mut positional = Vec::new();
            let mut rate = None;
            let mut clock = None;
            let mut threads = None;
            let mut events_out = None;
            let mut obs = ObsOpts::default();
            let mut it = it.peekable();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--rate" => rate = Some(take_parsed(&mut it, "--rate")?),
                    "--clock" => clock = Some(take_parsed(&mut it, "--clock")?),
                    "--threads" => threads = Some(take_threads(&mut it)?),
                    "--events-out" => {
                        events_out = Some(take_value(&mut it, "--events-out")?)
                    }
                    flag if flag.starts_with("--") => {
                        if !obs.take_flag(flag, &mut it)? {
                            return Err(CliError::Usage(format!("unknown flag {flag}")));
                        }
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            let signal_path = match positional.as_slice() {
                [p] => p.clone(),
                _ => {
                    return Err(CliError::Usage(
                        "profile requires exactly one signal CSV path".into(),
                    ))
                }
            };
            Ok(Command::Profile(ProfileOpts {
                signal_path,
                sample_rate_hz: rate
                    .ok_or_else(|| CliError::Usage("profile requires --rate".into()))?,
                clock_hz: clock
                    .ok_or_else(|| CliError::Usage("profile requires --clock".into()))?,
                threads,
                events_out,
                obs,
            }))
        }
        other => Err(CliError::Usage(format!("unknown command {other}"))),
    }
}

/// Parses the shared `simulate`/`stats` argument form.
fn parse_simulate<'a, I: Iterator<Item = &'a String>>(
    it: I,
    cmd: &str,
) -> Result<SimulateOpts, CliError> {
    let mut opts = SimulateOpts::default();
    let mut positional = Vec::new();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--device" => opts.device = take_value(&mut it, "--device")?,
            "--bandwidth" => opts.bandwidth_hz = take_parsed(&mut it, "--bandwidth")?,
            "--scale" => opts.scale = take_parsed(&mut it, "--scale")?,
            "--seed" => opts.seed = take_parsed(&mut it, "--seed")?,
            "--threads" => opts.threads = Some(take_threads(&mut it)?),
            "--signal-out" => opts.signal_out = Some(take_value(&mut it, "--signal-out")?),
            "--events-out" => opts.events_out = Some(take_value(&mut it, "--events-out")?),
            flag if flag.starts_with("--") => {
                if !opts.obs.take_flag(flag, &mut it)? {
                    return Err(CliError::Usage(format!("unknown flag {flag}")));
                }
            }
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [workload] => {
            opts.workload = workload.clone();
            Ok(opts)
        }
        [] => Err(CliError::Usage(format!("{cmd} requires a workload"))),
        _ => Err(CliError::Usage(format!("{cmd} takes one workload"))),
    }
}

fn expect_end<'a, I: Iterator<Item = &'a String>>(mut it: I) -> Result<(), CliError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(CliError::Usage(format!("unexpected argument {extra}"))),
    }
}

fn take_value<'a, I: Iterator<Item = &'a String>>(
    it: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

fn take_parsed<'a, I: Iterator<Item = &'a String>, T: std::str::FromStr>(
    it: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<T, CliError> {
    let raw = take_value(it, flag)?;
    raw.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {raw}")))
}

/// Parses `--threads N`, rejecting 0 (there is no zero-worker pipeline).
fn take_threads<'a, I: Iterator<Item = &'a String>>(
    it: &mut std::iter::Peekable<I>,
) -> Result<usize, CliError> {
    let n: usize = take_parsed(it, "--threads")?;
    if n == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    Ok(n)
}

/// The usage text printed by `emprof help`.
pub const USAGE: &str = "\
emprof — memory profiling via EM emanations (reproduction of MICRO'18)

USAGE:
  emprof devices
      List the modeled devices and their parameters.

  emprof simulate <workload> [--device NAME] [--bandwidth HZ] [--scale F]
                  [--seed N] [--threads N] [--signal-out FILE]
                  [--events-out FILE] [--metrics FILE] [--trace FILE]
                  [--verbose-stats]
      Simulate a workload on a device model, synthesize its EM capture,
      and profile it with EMPROF. Workloads: microbench:TM:CM, ammp,
      bzip2, crafty, equake, gzip, mcf, parser, twolf, vortex, vpr,
      boot, sensor-filter, block-transfer, table-crypto.

  emprof profile <signal.csv> --rate HZ --clock HZ [--threads N]
                 [--events-out FILE] [--metrics FILE] [--trace FILE]
                 [--verbose-stats]
      Run the EMPROF detector on an externally captured magnitude signal
      (one-column CSV with a `magnitude` header).

  emprof stats <workload> [same flags as simulate]
      Run the simulate pipeline with telemetry on and print a report:
      per-stage wall time, cache hit/miss counters, streaming throughput.

  emprof demo
      End-to-end demonstration against known ground truth.

PARALLELISM (simulate / profile / stats):
  --threads N      worker threads for the analysis pipeline; the output is
                   identical for every setting. Defaults to the EMPROF_THREADS
                   environment variable, then the hardware's parallelism.
                   --threads 1 forces the plain sequential code path.

TELEMETRY (simulate / profile / stats):
  --metrics FILE   write a metrics snapshot as JSON lines
  --trace FILE     write individual span occurrences as JSON lines
  --verbose-stats  append the human-readable telemetry table
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_devices_and_demo() {
        assert_eq!(parse(&argv("devices")).unwrap(), Command::Devices);
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_simulate_with_flags() {
        let cmd = parse(&argv(
            "simulate mcf --device alcatel --bandwidth 20e6 --scale 0.5 --seed 9 \
             --signal-out sig.csv --events-out ev.csv",
        ))
        .unwrap();
        match cmd {
            Command::Simulate(o) => {
                assert_eq!(o.workload, "mcf");
                assert_eq!(o.device, "alcatel");
                assert_eq!(o.bandwidth_hz, 20e6);
                assert_eq!(o.scale, 0.5);
                assert_eq!(o.seed, 9);
                assert_eq!(o.signal_out.as_deref(), Some("sig.csv"));
                assert_eq!(o.events_out.as_deref(), Some("ev.csv"));
            }
            other => panic!("expected simulate, got {other:?}"),
        }
    }

    #[test]
    fn simulate_defaults() {
        match parse(&argv("simulate boot")).unwrap() {
            Command::Simulate(o) => {
                assert_eq!(o.device, "olimex");
                assert_eq!(o.bandwidth_hz, 40e6);
                assert_eq!(o.threads, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_threads_flag() {
        match parse(&argv("simulate boot --threads 4")).unwrap() {
            Command::Simulate(o) => assert_eq!(o.threads, Some(4)),
            other => panic!("{other:?}"),
        }
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1e9 --threads 1")).unwrap() {
            Command::Profile(o) => assert_eq!(o.threads, Some(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("simulate boot --threads 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate boot --threads lots")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_profile() {
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1.008e9")).unwrap() {
            Command::Profile(o) => {
                assert_eq!(o.signal_path, "cap.csv");
                assert_eq!(o.sample_rate_hz, 40e6);
                assert_eq!(o.clock_hz, 1.008e9);
                assert!(o.events_out.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_telemetry_flags() {
        match parse(&argv(
            "simulate mcf --metrics m.jsonl --trace t.jsonl --verbose-stats",
        ))
        .unwrap()
        {
            Command::Simulate(o) => {
                assert_eq!(o.obs.metrics_out.as_deref(), Some("m.jsonl"));
                assert_eq!(o.obs.trace_out.as_deref(), Some("t.jsonl"));
                assert!(o.obs.verbose_stats);
                assert!(o.obs.active());
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1e9 --metrics m.jsonl"))
            .unwrap()
        {
            Command::Profile(o) => {
                assert_eq!(o.obs.metrics_out.as_deref(), Some("m.jsonl"));
                assert!(!o.obs.verbose_stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_implies_verbose_stats() {
        match parse(&argv("stats microbench:64:4 --seed 2")).unwrap() {
            Command::Stats(o) => {
                assert_eq!(o.workload, "microbench:64:4");
                assert!(o.obs.verbose_stats);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse(&argv("stats")), Err(CliError::Usage(_))));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("simulate")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("simulate a b")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate mcf --bandwidth nope")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate mcf --wat 3")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("profile cap.csv --rate 40e6")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("devices extra")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("profile --rate 1 --clock 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = CliError::Usage("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
