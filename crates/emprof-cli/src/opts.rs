//! Command-line parsing (hand-rolled; the crate stays dependency-light).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the modeled devices.
    Devices,
    /// Simulate a workload, capture it, and profile the capture.
    Simulate(SimulateOpts),
    /// Profile an existing magnitude-CSV capture.
    Profile(ProfileOpts),
    /// Run a workload pipeline and report its telemetry.
    Stats(SimulateOpts),
    /// Run the end-to-end demonstration.
    Demo,
    /// Run the network profiling service.
    Serve(ServeOpts),
    /// Run the sharded fleet front tier over a set of serve backends.
    Router(RouterOpts),
    /// Stream a magnitude CSV to a running service.
    Push(PushOpts),
    /// Tail the finalized-event stream of a running service.
    Watch(WatchOpts),
    /// Live per-session dashboard over the METRICS poll.
    Top(TopOpts),
    /// Fetch flight-recorder dumps from a running service.
    DumpFlight(DumpFlightOpts),
    /// Persist a magnitude capture into a durable journal.
    Record(RecordOpts),
    /// Re-drive the detectors from a journaled capture.
    Replay(ReplayOpts),
    /// Dump the segment-level health of a journal directory.
    JournalInspect(InspectOpts),
    /// Range statistics over a journal directory or a running service.
    Query(QueryOpts),
    /// Print usage.
    Help,
}

/// Telemetry output options shared by the pipeline-running commands.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsOpts {
    /// Write a metrics snapshot as JSON lines to this path.
    pub metrics_out: Option<String>,
    /// Write individual span occurrences as JSON lines to this path.
    pub trace_out: Option<String>,
    /// Append a human-readable telemetry table to the report.
    pub verbose_stats: bool,
}

impl ObsOpts {
    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some() || self.verbose_stats
    }

    /// Consumes `arg` if it is a telemetry flag; returns whether it was.
    fn take_flag<'a, I: Iterator<Item = &'a String>>(
        &mut self,
        arg: &str,
        it: &mut std::iter::Peekable<I>,
    ) -> Result<bool, CliError> {
        match arg {
            "--metrics" => self.metrics_out = Some(take_value(it, "--metrics")?),
            "--trace" => self.trace_out = Some(take_value(it, "--trace")?),
            "--verbose-stats" => self.verbose_stats = true,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Options of `emprof simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOpts {
    /// Workload spec string (e.g. `mcf`, `microbench:256:1`, `boot`).
    pub workload: String,
    /// Device model name (`alcatel`, `samsung`, `olimex`, `sesc`).
    pub device: String,
    /// Measurement bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Length scale for scalable workloads.
    pub scale: f64,
    /// Capture/workload seed.
    pub seed: u64,
    /// Worker threads for the analysis pipeline (`None` = the
    /// `EMPROF_THREADS` environment variable, falling back to the
    /// hardware's available parallelism; `1` forces the sequential path).
    pub threads: Option<usize>,
    /// Write the captured magnitude signal to this CSV path.
    pub signal_out: Option<String>,
    /// Write the detected events to this CSV path.
    pub events_out: Option<String>,
    /// Fault-plan spec injected into the capture before analysis
    /// (`none`, `chaos`, or a `dropout=…,corrupt=…` spec string).
    pub fault_plan: Option<String>,
    /// Seed for the fault injector.
    pub fault_seed: u64,
    /// Run the detectors with online probe calibration enabled.
    pub adaptive: bool,
    /// Synthesize a second (memory-probe) capture and cross-validate
    /// the CPU-probe events against it before reporting.
    pub dual_probe: bool,
    /// Telemetry outputs.
    pub obs: ObsOpts,
}

impl Default for SimulateOpts {
    fn default() -> Self {
        SimulateOpts {
            workload: String::new(),
            device: "olimex".to_string(),
            bandwidth_hz: 40e6,
            scale: 0.1,
            seed: 1,
            threads: None,
            signal_out: None,
            events_out: None,
            fault_plan: None,
            fault_seed: 1,
            adaptive: false,
            dual_probe: false,
            obs: ObsOpts::default(),
        }
    }
}

/// Options of `emprof profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOpts {
    /// Path of the magnitude CSV to analyze.
    pub signal_path: String,
    /// Capture sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Profiled core clock in Hz.
    pub clock_hz: f64,
    /// Worker threads for the detector (`None` = environment/hardware
    /// default, `1` forces the sequential path).
    pub threads: Option<usize>,
    /// Write the detected events to this CSV path.
    pub events_out: Option<String>,
    /// Run the detector with online probe calibration enabled.
    pub adaptive: bool,
    /// Telemetry outputs.
    pub obs: ObsOpts,
}

/// Options of `emprof serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Ingest worker threads (`None` = the `EMPROF_THREADS` environment
    /// variable, falling back to the hardware's available parallelism).
    pub threads: Option<usize>,
    /// Per-session bounded queue capacity, in frames.
    pub queue_frames: usize,
    /// Shed oldest sample batches instead of blocking when a queue fills.
    pub shed: bool,
    /// Seconds of silence before a session is reaped and finalized.
    pub idle_timeout_secs: u64,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
    /// Run for this many seconds, then drain and report (`None` = forever).
    pub duration_secs: Option<u64>,
    /// Send HEARTBEAT frames on quiet connections at this many seconds
    /// (`None` = no heartbeats).
    pub heartbeat_secs: Option<u64>,
    /// Chaos testing: fault-plan spec applied to every ingested batch.
    pub fault_plan: Option<String>,
    /// Base seed for the per-session chaos injectors.
    pub fault_seed: u64,
    /// Durability: journal every session under this directory so event
    /// delivery is exactly-once across server restarts.
    pub journal_dir: Option<String>,
    /// Serve Prometheus-format telemetry over HTTP at this address
    /// (`host:port`; port 0 picks an ephemeral port).
    pub metrics_addr: Option<String>,
    /// Where flight-recorder dumps land on session faults (falls back
    /// to the journal directory; with neither, dumps are skipped).
    pub flight_dir: Option<String>,
    /// Telemetry outputs.
    pub obs: ObsOpts,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:7700".to_string(),
            threads: None,
            queue_frames: 64,
            shed: false,
            idle_timeout_secs: 60,
            max_sessions: 256,
            duration_secs: None,
            heartbeat_secs: None,
            fault_plan: None,
            fault_seed: 1,
            journal_dir: None,
            metrics_addr: None,
            flight_dir: None,
            obs: ObsOpts::default(),
        }
    }
}

/// One backend of `emprof router`, parsed from `name=addr[=journal]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterBackend {
    /// Ring name (stable across address changes).
    pub name: String,
    /// `host:port` of the backend's session listener.
    pub addr: String,
    /// The backend's journal directory as visible to the router; unset
    /// disables journal handoff (migrations off this backend are lossy).
    pub journal_dir: Option<String>,
}

/// Options of `emprof router`.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterOpts {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// The backend fleet (at least one entry).
    pub backends: Vec<RouterBackend>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub replicas: usize,
    /// Milliseconds between health probes per backend.
    pub probe_ms: u64,
    /// Consecutive probe failures before a backend is marked down.
    pub down_after: u32,
    /// Seconds of silence before a detached router session is forgotten.
    pub idle_timeout_secs: u64,
    /// Run for this many seconds, then report (`None` = forever).
    pub duration_secs: Option<u64>,
    /// Serve Prometheus-format telemetry over HTTP at this address.
    pub metrics_addr: Option<String>,
}

impl Default for RouterOpts {
    fn default() -> Self {
        RouterOpts {
            addr: "127.0.0.1:7800".to_string(),
            backends: Vec::new(),
            replicas: 64,
            probe_ms: 500,
            down_after: 2,
            idle_timeout_secs: 60,
            duration_secs: None,
            metrics_addr: None,
        }
    }
}

/// Options of `emprof record`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordOpts {
    /// Path of the magnitude CSV to persist.
    pub signal_path: String,
    /// Journal directory to create (stale contents are replaced).
    pub journal_dir: String,
    /// Capture sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Profiled core clock in Hz.
    pub clock_hz: f64,
    /// Device label stored in the journal's identity checkpoint.
    pub device: String,
    /// Samples per journaled batch record.
    pub frame: usize,
}

/// Options of `emprof replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOpts {
    /// Journal directory to replay.
    pub journal_dir: String,
    /// Write the replayed events to this CSV path.
    pub events_out: Option<String>,
}

/// Options of `emprof journal-inspect`.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectOpts {
    /// Journal directory to inspect (read-only).
    pub journal_dir: String,
}

/// Options of `emprof query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOpts {
    /// Journal directory to query locally (exclusive with `addr`).
    pub journal_dir: Option<String>,
    /// Running service (or router) to query remotely (exclusive with
    /// `journal_dir`).
    pub addr: Option<String>,
    /// Window start, inclusive, in sample indexes.
    pub t0: u64,
    /// Window end, inclusive, in sample indexes.
    pub t1: u64,
    /// Event-rate timeline bucket width in samples (0 = no timeline).
    pub bucket_samples: u64,
    /// Sessions to include (repeat `--session`; empty = all).
    pub sessions: Vec<u64>,
    /// Emit the result as one JSON document instead of the table.
    pub json: bool,
    /// Socket read timeout in seconds (remote only).
    pub timeout_secs: u64,
    /// Reconnect attempts per failed query (remote only, 0 disables).
    pub retries: u32,
}

impl Default for QueryOpts {
    fn default() -> Self {
        QueryOpts {
            journal_dir: None,
            addr: None,
            t0: 0,
            t1: u64::MAX,
            bucket_samples: 0,
            sessions: Vec::new(),
            json: false,
            timeout_secs: 60,
            retries: 5,
        }
    }
}

/// Options of `emprof push`.
#[derive(Debug, Clone, PartialEq)]
pub struct PushOpts {
    /// Path of the magnitude CSV to stream.
    pub signal_path: String,
    /// Service address.
    pub addr: String,
    /// Capture sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Profiled core clock in Hz.
    pub clock_hz: f64,
    /// Samples per SAMPLES batch sent to the service.
    pub frame: usize,
    /// Device label reported in the HELLO handshake.
    pub device: String,
    /// Write the served events to this CSV path.
    pub events_out: Option<String>,
    /// Socket read timeout in seconds.
    pub timeout_secs: u64,
    /// Reconnect-and-resume attempts per failed operation (0 disables).
    pub retries: u32,
    /// Fault-plan spec injected into the stream before it is sent
    /// (client-side chaos; the served events still match a local batch
    /// run on the same faulted signal).
    pub fault_plan: Option<String>,
    /// Seed for the fault injector.
    pub fault_seed: u64,
    /// Ask the service to run its detector with online calibration.
    pub adaptive: bool,
}

/// Options of `emprof watch`.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchOpts {
    /// Service address.
    pub addr: String,
    /// Milliseconds between polls.
    pub interval_ms: u64,
    /// Stop after this many polls (`None` = until interrupted).
    pub polls: Option<u64>,
    /// Socket read timeout in seconds.
    pub timeout_secs: u64,
    /// Reconnect attempts per failed poll (0 disables).
    pub retries: u32,
}

/// Options of `emprof top`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopOpts {
    /// Service addresses (repeat `--addr` for a merged fleet view).
    pub addrs: Vec<String>,
    /// Milliseconds between METRICS polls.
    pub interval_ms: u64,
    /// Print one dashboard frame and exit.
    pub once: bool,
    /// Stop after this many polls (`None` = until interrupted).
    pub polls: Option<u64>,
    /// Socket read timeout in seconds.
    pub timeout_secs: u64,
    /// Reconnect attempts per failed poll (0 disables).
    pub retries: u32,
}

impl Default for TopOpts {
    fn default() -> Self {
        TopOpts {
            addrs: vec!["127.0.0.1:7700".to_string()],
            interval_ms: 1_000,
            once: false,
            polls: None,
            timeout_secs: 60,
            retries: 5,
        }
    }
}

/// Options of `emprof dump-flight`.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpFlightOpts {
    /// Service address.
    pub addr: String,
    /// Session to dump (`0` = every registered session).
    pub session: u64,
    /// Write each dump to this directory instead of stdout.
    pub out_dir: Option<String>,
    /// Socket read timeout in seconds.
    pub timeout_secs: u64,
    /// Reconnect attempts per failed fetch (0 disables).
    pub retries: u32,
}

impl Default for DumpFlightOpts {
    fn default() -> Self {
        DumpFlightOpts {
            addr: "127.0.0.1:7700".to_string(),
            session: 0,
            out_dir: None,
            timeout_secs: 60,
            retries: 5,
        }
    }
}

/// Errors produced while parsing or executing a command.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The arguments did not form a valid command.
    Usage(String),
    /// A runtime failure (I/O, bad CSV, unknown workload, ...).
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses a full argument list (excluding argv\[0\]).
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown commands, unknown flags,
/// missing values, or unparsable numbers.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "devices" => expect_end(it).map(|()| Command::Devices),
        "demo" => expect_end(it).map(|()| Command::Demo),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "serve" => parse_serve(it).map(Command::Serve),
        "router" => parse_router(it).map(Command::Router),
        "push" => parse_push(it).map(Command::Push),
        "watch" => parse_watch(it).map(Command::Watch),
        "top" => parse_top(it).map(Command::Top),
        "dump-flight" => parse_dump_flight(it).map(Command::DumpFlight),
        "record" => parse_record(it).map(Command::Record),
        "replay" => parse_replay(it).map(Command::Replay),
        "journal-inspect" => parse_inspect(it).map(Command::JournalInspect),
        "query" => parse_query(it).map(Command::Query),
        "simulate" => parse_simulate(it, "simulate").map(Command::Simulate),
        "stats" => parse_simulate(it, "stats").map(|mut opts| {
            // The whole point of `stats` is the telemetry table.
            opts.obs.verbose_stats = true;
            Command::Stats(opts)
        }),
        "profile" => {
            let mut positional = Vec::new();
            let mut rate = None;
            let mut clock = None;
            let mut threads = None;
            let mut events_out = None;
            let mut adaptive = false;
            let mut obs = ObsOpts::default();
            let mut it = it.peekable();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--rate" => rate = Some(take_parsed(&mut it, "--rate")?),
                    "--clock" => clock = Some(take_parsed(&mut it, "--clock")?),
                    "--threads" => threads = Some(take_threads(&mut it)?),
                    "--adaptive" => adaptive = true,
                    "--events-out" => {
                        events_out = Some(take_value(&mut it, "--events-out")?)
                    }
                    flag if flag.starts_with("--") => {
                        if !obs.take_flag(flag, &mut it)? {
                            return Err(CliError::Usage(format!("unknown flag {flag}")));
                        }
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            let signal_path = match positional.as_slice() {
                [p] => p.clone(),
                _ => {
                    return Err(CliError::Usage(
                        "profile requires exactly one signal CSV path".into(),
                    ))
                }
            };
            Ok(Command::Profile(ProfileOpts {
                signal_path,
                sample_rate_hz: rate
                    .ok_or_else(|| CliError::Usage("profile requires --rate".into()))?,
                clock_hz: clock
                    .ok_or_else(|| CliError::Usage("profile requires --clock".into()))?,
                threads,
                events_out,
                adaptive,
                obs,
            }))
        }
        other => Err(CliError::Usage(format!("unknown command {other}"))),
    }
}

/// Parses the shared `simulate`/`stats` argument form.
fn parse_simulate<'a, I: Iterator<Item = &'a String>>(
    it: I,
    cmd: &str,
) -> Result<SimulateOpts, CliError> {
    let mut opts = SimulateOpts::default();
    let mut positional = Vec::new();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--device" => opts.device = take_value(&mut it, "--device")?,
            "--bandwidth" => opts.bandwidth_hz = take_parsed(&mut it, "--bandwidth")?,
            "--scale" => opts.scale = take_parsed(&mut it, "--scale")?,
            "--seed" => opts.seed = take_parsed(&mut it, "--seed")?,
            "--threads" => opts.threads = Some(take_threads(&mut it)?),
            "--signal-out" => opts.signal_out = Some(take_value(&mut it, "--signal-out")?),
            "--events-out" => opts.events_out = Some(take_value(&mut it, "--events-out")?),
            "--fault-plan" => opts.fault_plan = Some(take_value(&mut it, "--fault-plan")?),
            "--fault-seed" => opts.fault_seed = take_parsed(&mut it, "--fault-seed")?,
            "--adaptive" => opts.adaptive = true,
            "--dual-probe" => opts.dual_probe = true,
            flag if flag.starts_with("--") => {
                if !opts.obs.take_flag(flag, &mut it)? {
                    return Err(CliError::Usage(format!("unknown flag {flag}")));
                }
            }
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [workload] => {
            opts.workload = workload.clone();
            Ok(opts)
        }
        [] => Err(CliError::Usage(format!("{cmd} requires a workload"))),
        _ => Err(CliError::Usage(format!("{cmd} takes one workload"))),
    }
}

/// Parses the `emprof serve` argument form.
fn parse_serve<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<ServeOpts, CliError> {
    let mut opts = ServeOpts::default();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = take_value(&mut it, "--addr")?,
            "--threads" => opts.threads = Some(take_threads(&mut it)?),
            "--queue-frames" => {
                opts.queue_frames = take_parsed(&mut it, "--queue-frames")?;
                if opts.queue_frames == 0 {
                    return Err(CliError::Usage("--queue-frames must be at least 1".into()));
                }
            }
            "--shed" => opts.shed = true,
            "--idle-timeout" => {
                opts.idle_timeout_secs = take_parsed(&mut it, "--idle-timeout")?;
            }
            "--max-sessions" => {
                opts.max_sessions = take_parsed(&mut it, "--max-sessions")?;
                if opts.max_sessions == 0 {
                    return Err(CliError::Usage("--max-sessions must be at least 1".into()));
                }
            }
            "--duration" => opts.duration_secs = Some(take_parsed(&mut it, "--duration")?),
            "--heartbeat" => {
                let secs: u64 = take_parsed(&mut it, "--heartbeat")?;
                if secs == 0 {
                    return Err(CliError::Usage("--heartbeat must be at least 1".into()));
                }
                opts.heartbeat_secs = Some(secs);
            }
            "--fault-plan" => opts.fault_plan = Some(take_value(&mut it, "--fault-plan")?),
            "--fault-seed" => opts.fault_seed = take_parsed(&mut it, "--fault-seed")?,
            "--journal" => opts.journal_dir = Some(take_value(&mut it, "--journal")?),
            "--metrics-addr" => {
                opts.metrics_addr = Some(take_value(&mut it, "--metrics-addr")?);
            }
            "--flight-dir" => opts.flight_dir = Some(take_value(&mut it, "--flight-dir")?),
            flag => {
                if !(flag.starts_with("--") && opts.obs.take_flag(flag, &mut it)?) {
                    return Err(CliError::Usage(format!("serve: unknown argument {flag}")));
                }
            }
        }
    }
    Ok(opts)
}

/// Parses one `--backends` entry: `name=addr[=journal]` or a bare
/// `host:port` (auto-named `b<i>` by position).
fn parse_backend(entry: &str, index: usize) -> Result<RouterBackend, CliError> {
    let parts: Vec<&str> = entry.splitn(3, '=').collect();
    let backend = match parts.as_slice() {
        [addr] => RouterBackend {
            name: format!("b{index}"),
            addr: (*addr).to_string(),
            journal_dir: None,
        },
        [name, addr] => RouterBackend {
            name: (*name).to_string(),
            addr: (*addr).to_string(),
            journal_dir: None,
        },
        [name, addr, journal] => RouterBackend {
            name: (*name).to_string(),
            addr: (*addr).to_string(),
            journal_dir: Some((*journal).to_string()),
        },
        _ => unreachable!("splitn(3) yields 1..=3 parts"),
    };
    if backend.name.is_empty() || backend.addr.is_empty() {
        return Err(CliError::Usage(format!(
            "--backends entry {entry:?} needs name=addr[=journal] or host:port"
        )));
    }
    Ok(backend)
}

/// Parses the `emprof router` argument form.
fn parse_router<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<RouterOpts, CliError> {
    let mut opts = RouterOpts::default();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = take_value(&mut it, "--addr")?,
            "--backends" => {
                let raw = take_value(&mut it, "--backends")?;
                for entry in raw.split(',').filter(|e| !e.is_empty()) {
                    opts.backends.push(parse_backend(entry, opts.backends.len())?);
                }
            }
            "--replicas" => {
                opts.replicas = take_parsed(&mut it, "--replicas")?;
                if opts.replicas == 0 {
                    return Err(CliError::Usage("--replicas must be at least 1".into()));
                }
            }
            "--probe-ms" => {
                opts.probe_ms = take_parsed(&mut it, "--probe-ms")?;
                if opts.probe_ms == 0 {
                    return Err(CliError::Usage("--probe-ms must be at least 1".into()));
                }
            }
            "--down-after" => {
                opts.down_after = take_parsed(&mut it, "--down-after")?;
                if opts.down_after == 0 {
                    return Err(CliError::Usage("--down-after must be at least 1".into()));
                }
            }
            "--idle-timeout" => {
                opts.idle_timeout_secs = take_parsed(&mut it, "--idle-timeout")?;
            }
            "--duration" => opts.duration_secs = Some(take_parsed(&mut it, "--duration")?),
            "--metrics-addr" => {
                opts.metrics_addr = Some(take_value(&mut it, "--metrics-addr")?);
            }
            other => {
                return Err(CliError::Usage(format!("router: unknown argument {other}")));
            }
        }
    }
    if opts.backends.is_empty() {
        return Err(CliError::Usage(
            "router requires --backends name=addr[=journal][,...]".into(),
        ));
    }
    Ok(opts)
}

/// Parses the `emprof record` argument form.
fn parse_record<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<RecordOpts, CliError> {
    let mut positional = Vec::new();
    let mut journal = None;
    let mut rate = None;
    let mut clock = None;
    let mut device = "record".to_string();
    let mut frame = 8_192usize;
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal = Some(take_value(&mut it, "--journal")?),
            "--rate" => rate = Some(take_parsed(&mut it, "--rate")?),
            "--clock" => clock = Some(take_parsed(&mut it, "--clock")?),
            "--device" => device = take_value(&mut it, "--device")?,
            "--frame" => {
                frame = take_parsed(&mut it, "--frame")?;
                if frame == 0 {
                    return Err(CliError::Usage("--frame must be at least 1".into()));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("record: unknown flag {flag}")));
            }
            _ => positional.push(arg.clone()),
        }
    }
    let signal_path = match positional.as_slice() {
        [p] => p.clone(),
        _ => {
            return Err(CliError::Usage(
                "record requires exactly one signal CSV path".into(),
            ))
        }
    };
    Ok(RecordOpts {
        signal_path,
        journal_dir: journal
            .ok_or_else(|| CliError::Usage("record requires --journal".into()))?,
        sample_rate_hz: rate
            .ok_or_else(|| CliError::Usage("record requires --rate".into()))?,
        clock_hz: clock.ok_or_else(|| CliError::Usage("record requires --clock".into()))?,
        device,
        frame,
    })
}

/// Parses the `emprof replay` argument form.
fn parse_replay<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<ReplayOpts, CliError> {
    let mut journal = None;
    let mut events_out = None;
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal = Some(take_value(&mut it, "--journal")?),
            "--events-out" => events_out = Some(take_value(&mut it, "--events-out")?),
            other => {
                return Err(CliError::Usage(format!("replay: unknown argument {other}")));
            }
        }
    }
    Ok(ReplayOpts {
        journal_dir: journal
            .ok_or_else(|| CliError::Usage("replay requires --journal".into()))?,
        events_out,
    })
}

/// Parses the `emprof journal-inspect` argument form.
fn parse_inspect<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<InspectOpts, CliError> {
    let mut positional = Vec::new();
    for arg in it {
        if arg.starts_with("--") {
            return Err(CliError::Usage(format!(
                "journal-inspect: unknown flag {arg}"
            )));
        }
        positional.push(arg.clone());
    }
    match positional.as_slice() {
        [dir] => Ok(InspectOpts {
            journal_dir: dir.clone(),
        }),
        _ => Err(CliError::Usage(
            "journal-inspect requires exactly one journal directory".into(),
        )),
    }
}

/// Parses the `emprof query` argument form.
fn parse_query<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<QueryOpts, CliError> {
    let mut opts = QueryOpts::default();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => opts.journal_dir = Some(take_value(&mut it, "--journal")?),
            "--addr" => opts.addr = Some(take_value(&mut it, "--addr")?),
            "--t0" => opts.t0 = take_parsed(&mut it, "--t0")?,
            "--t1" => opts.t1 = take_parsed(&mut it, "--t1")?,
            "--bucket" => opts.bucket_samples = take_parsed(&mut it, "--bucket")?,
            "--session" => opts.sessions.push(take_parsed(&mut it, "--session")?),
            "--json" => opts.json = true,
            "--timeout" => {
                opts.timeout_secs = take_parsed(&mut it, "--timeout")?;
                if opts.timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout must be at least 1".into()));
                }
            }
            "--retries" => opts.retries = take_parsed(&mut it, "--retries")?,
            other => {
                return Err(CliError::Usage(format!("query: unknown argument {other}")));
            }
        }
    }
    match (&opts.journal_dir, &opts.addr) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "query takes --journal DIR or --addr HOST:PORT, not both".into(),
        )),
        (None, None) => Err(CliError::Usage(
            "query requires --journal DIR or --addr HOST:PORT".into(),
        )),
        _ => Ok(opts),
    }
}

/// Parses the `emprof push` argument form.
fn parse_push<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<PushOpts, CliError> {
    let mut positional = Vec::new();
    let mut addr = "127.0.0.1:7700".to_string();
    let mut rate = None;
    let mut clock = None;
    let mut frame = 8_192usize;
    let mut device = "push".to_string();
    let mut events_out = None;
    let mut timeout_secs = 60u64;
    let mut retries = 5u32;
    let mut fault_plan = None;
    let mut fault_seed = 1u64;
    let mut adaptive = false;
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value(&mut it, "--addr")?,
            "--adaptive" => adaptive = true,
            "--rate" => rate = Some(take_parsed(&mut it, "--rate")?),
            "--clock" => clock = Some(take_parsed(&mut it, "--clock")?),
            "--frame" => {
                frame = take_parsed(&mut it, "--frame")?;
                if frame == 0 {
                    return Err(CliError::Usage("--frame must be at least 1".into()));
                }
            }
            "--device" => device = take_value(&mut it, "--device")?,
            "--events-out" => events_out = Some(take_value(&mut it, "--events-out")?),
            "--timeout" => {
                timeout_secs = take_parsed(&mut it, "--timeout")?;
                if timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout must be at least 1".into()));
                }
            }
            "--retries" => retries = take_parsed(&mut it, "--retries")?,
            "--fault-plan" => fault_plan = Some(take_value(&mut it, "--fault-plan")?),
            "--fault-seed" => fault_seed = take_parsed(&mut it, "--fault-seed")?,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("push: unknown flag {flag}")));
            }
            _ => positional.push(arg.clone()),
        }
    }
    let signal_path = match positional.as_slice() {
        [p] => p.clone(),
        _ => {
            return Err(CliError::Usage(
                "push requires exactly one signal CSV path".into(),
            ))
        }
    };
    Ok(PushOpts {
        signal_path,
        addr,
        sample_rate_hz: rate
            .ok_or_else(|| CliError::Usage("push requires --rate".into()))?,
        clock_hz: clock.ok_or_else(|| CliError::Usage("push requires --clock".into()))?,
        frame,
        device,
        events_out,
        timeout_secs,
        retries,
        fault_plan,
        fault_seed,
        adaptive,
    })
}

/// Parses the `emprof watch` argument form.
fn parse_watch<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<WatchOpts, CliError> {
    let mut opts = WatchOpts {
        addr: "127.0.0.1:7700".to_string(),
        interval_ms: 500,
        polls: None,
        timeout_secs: 60,
        retries: 5,
    };
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = take_value(&mut it, "--addr")?,
            "--interval-ms" => opts.interval_ms = take_parsed(&mut it, "--interval-ms")?,
            "--polls" => opts.polls = Some(take_parsed(&mut it, "--polls")?),
            "--timeout" => {
                opts.timeout_secs = take_parsed(&mut it, "--timeout")?;
                if opts.timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout must be at least 1".into()));
                }
            }
            "--retries" => opts.retries = take_parsed(&mut it, "--retries")?,
            other => {
                return Err(CliError::Usage(format!("watch: unknown argument {other}")));
            }
        }
    }
    Ok(opts)
}

/// Parses the `emprof top` argument form.
fn parse_top<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<TopOpts, CliError> {
    let mut opts = TopOpts::default();
    let mut it = it.peekable();
    let mut addrs = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addrs.push(take_value(&mut it, "--addr")?),
            "--interval-ms" => opts.interval_ms = take_parsed(&mut it, "--interval-ms")?,
            "--once" => opts.once = true,
            "--polls" => opts.polls = Some(take_parsed(&mut it, "--polls")?),
            "--timeout" => {
                opts.timeout_secs = take_parsed(&mut it, "--timeout")?;
                if opts.timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout must be at least 1".into()));
                }
            }
            "--retries" => opts.retries = take_parsed(&mut it, "--retries")?,
            other => {
                return Err(CliError::Usage(format!("top: unknown argument {other}")));
            }
        }
    }
    if !addrs.is_empty() {
        opts.addrs = addrs;
    }
    Ok(opts)
}

/// Parses the `emprof dump-flight` argument form.
fn parse_dump_flight<'a, I: Iterator<Item = &'a String>>(
    it: I,
) -> Result<DumpFlightOpts, CliError> {
    let mut opts = DumpFlightOpts::default();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = take_value(&mut it, "--addr")?,
            "--session" => opts.session = take_parsed(&mut it, "--session")?,
            "--out" => opts.out_dir = Some(take_value(&mut it, "--out")?),
            "--timeout" => {
                opts.timeout_secs = take_parsed(&mut it, "--timeout")?;
                if opts.timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout must be at least 1".into()));
                }
            }
            "--retries" => opts.retries = take_parsed(&mut it, "--retries")?,
            other => {
                return Err(CliError::Usage(format!(
                    "dump-flight: unknown argument {other}"
                )));
            }
        }
    }
    Ok(opts)
}

fn expect_end<'a, I: Iterator<Item = &'a String>>(mut it: I) -> Result<(), CliError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(CliError::Usage(format!("unexpected argument {extra}"))),
    }
}

fn take_value<'a, I: Iterator<Item = &'a String>>(
    it: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

fn take_parsed<'a, I: Iterator<Item = &'a String>, T: std::str::FromStr>(
    it: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<T, CliError> {
    let raw = take_value(it, flag)?;
    raw.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {raw}")))
}

/// Parses `--threads N`, rejecting 0 (there is no zero-worker pipeline).
fn take_threads<'a, I: Iterator<Item = &'a String>>(
    it: &mut std::iter::Peekable<I>,
) -> Result<usize, CliError> {
    let n: usize = take_parsed(it, "--threads")?;
    if n == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    Ok(n)
}

/// The usage text printed by `emprof help`.
pub const USAGE: &str = "\
emprof — memory profiling via EM emanations (reproduction of MICRO'18)

USAGE:
  emprof devices
      List the modeled devices and their parameters.

  emprof simulate <workload> [--device NAME] [--bandwidth HZ] [--scale F]
                  [--seed N] [--threads N] [--signal-out FILE]
                  [--events-out FILE] [--fault-plan SPEC] [--fault-seed N]
                  [--adaptive] [--dual-probe]
                  [--metrics FILE] [--trace FILE] [--verbose-stats]
      Simulate a workload on a device model, synthesize its EM capture,
      and profile it with EMPROF. Workloads: microbench:TM:CM, ammp,
      bzip2, crafty, equake, gzip, mcf, parser, twolf, vortex, vpr,
      boot, sensor-filter, block-transfer, table-crypto.

  emprof profile <signal.csv> --rate HZ --clock HZ [--threads N]
                 [--events-out FILE] [--adaptive] [--metrics FILE]
                 [--trace FILE] [--verbose-stats]
      Run the EMPROF detector on an externally captured magnitude signal
      (one-column CSV with a `magnitude` header).

  emprof stats <workload> [same flags as simulate]
      Run the simulate pipeline with telemetry on and print a report:
      per-stage wall time, cache hit/miss counters, streaming throughput.

  emprof demo
      End-to-end demonstration against known ground truth.

  emprof serve [--addr HOST:PORT] [--threads N] [--queue-frames N] [--shed]
               [--idle-timeout SECS] [--max-sessions N] [--duration SECS]
               [--heartbeat SECS] [--fault-plan SPEC] [--fault-seed N]
               [--journal DIR] [--metrics-addr HOST:PORT] [--metrics FILE]
               [--trace FILE] [--verbose-stats]
      Run the network profiling service: one streaming EMPROF detector per
      connected producer, a bounded ingest queue per session, and a worker
      pool draining them. A full queue blocks that producer's socket
      (explicit backpressure); --shed instead drops oldest sample batches
      and counts them. Defaults: 127.0.0.1:7700, 64 queued frames,
      60 s idle timeout, 256 sessions. --duration N drains after N seconds
      and prints the aggregate stats (omit it to serve until interrupted).
      --heartbeat N sends liveness frames on quiet connections every N
      seconds so clients with short timeouts survive idle periods. The
      idle timeout doubles as the resume window: a client that loses its
      connection can reconnect and resume its session within it.
      --journal DIR journals every session (samples, finalized events,
      delivery cursor) in append-only CRC-checked segments under DIR:
      event delivery becomes exactly-once across reply loss AND server
      restarts — bind recovers the journaled sessions and clients resume
      against the restarted process.
      --metrics-addr HOST:PORT additionally serves the same telemetry in
      Prometheus text exposition format over plain HTTP at
      GET /metrics (scrapable by any Prometheus-compatible collector).
      --flight-dir DIR writes flight-recorder dumps there on session
      faults (default: next to the journals; with neither flag, dumps
      stay poll-only).

  emprof router --backends NAME=ADDR[=JOURNAL][,...] [--addr HOST:PORT]
                [--replicas N] [--probe-ms MS] [--down-after N]
                [--idle-timeout SECS] [--duration SECS]
                [--metrics-addr HOST:PORT]
      Run the sharded fleet front tier: clients speak the normal wire
      protocol to the router (default 127.0.0.1:7800), which places each
      session on a backend via a consistent-hash ring (N virtual nodes
      per backend, default 64) and proxies its frames. Backends are
      health-probed every MS milliseconds (default 500) and marked down
      after N consecutive failures (default 2, with jittered exponential
      backoff between retries). When a backend dies, its sessions are
      migrated to the ring's next owner: with a =JOURNAL path (the
      backend's --journal directory as visible to the router), the
      journal is replayed into the new owner and delivery stays
      exactly-once — events through a kill are bit-for-bit what a
      single node would have delivered; without one the migration is
      best-effort and counted as lossy. CLUSTER_JOIN frames grow,
      drain, or remove backends at runtime. --metrics-addr serves
      GET /metrics with per-backend health, session counts, and
      migration counters.

  emprof record <signal.csv> --journal DIR --rate HZ --clock HZ
                [--device NAME] [--frame N]
      Persist a magnitude capture into a fresh durable journal at DIR
      (identity checkpoint + CRC-checked sample batches of N samples,
      default 8192). The journal replays byte-exactly with `emprof
      replay` on any machine.

  emprof replay --journal DIR [--events-out FILE]
      Re-drive the batch and streaming detectors from a journaled
      capture (tolerating torn tails: recovery truncates to the last
      valid record) and print the profile; the two detectors are
      cross-checked bit-for-bit. A journal holding already-finalized
      events (from a crashed `serve --journal`) is verified against
      the recomputed profile instead.

  emprof journal-inspect <dir>
      Dump per-segment health of a journal directory without modifying
      it: record counts by kind, valid vs on-disk bytes, torn tails,
      footer status (ok / missing / MISMATCH), the highest journaled
      event sequence, and layout anomalies such as duplicate or
      overlapping base indexes.

  emprof query (--journal DIR | --addr HOST:PORT) [--t0 N] [--t1 N]
               [--session ID]... [--bucket N] [--json]
               [--timeout SECS] [--retries N]
      Evaluate range statistics over journaled sessions: stall-latency
      percentiles (p50/p90/p99), event and degraded counts, refresh
      collisions, and (with --bucket) an event-rate timeline over
      [--t0, --t1] in sample indexes. `--journal` reads a directory
      directly (read-only, footer-indexed segment pruning); `--addr`
      asks a `serve --journal` node — or a router, which fans out and
      merges across its fleet. Results are bit-identical to
      recomputing the same statistic from a full `emprof replay`.

  emprof push <signal.csv> --rate HZ --clock HZ [--addr HOST:PORT]
              [--frame N] [--device NAME] [--events-out FILE]
              [--timeout SECS] [--retries N] [--fault-plan SPEC]
              [--fault-seed N] [--adaptive]
      Stream a magnitude CSV to a running service in N-sample batches
      (default 8192) and print the served profile summary. The events are
      bit-for-bit what `emprof profile` reports for the same file.
      Non-finite samples in the CSV are dropped (and counted) before
      streaming. On transport loss the push reconnects with exponential
      backoff and resumes, up to --retries times (default 5).

  emprof watch [--addr HOST:PORT] [--interval-ms MS] [--polls N]
               [--timeout SECS] [--retries N]
      Tail the service's finalized-event stream and aggregate stats,
      polling every MS milliseconds (default 500) until interrupted or,
      with --polls N, for a bounded number of polls. Transport losses
      are cured by reconnecting with the same cursor.

  emprof top [--addr HOST:PORT]... [--interval-ms MS] [--once] [--polls N]
             [--timeout SECS] [--retries N]
      Live fleet dashboard over the service's METRICS poll: one row per
      registered session (queue depth, samples/s, events delivered vs
      acknowledged, delivery lag, sheds, idle time) plus server totals
      and health, refreshed every MS milliseconds (default 1000).
      Repeat --addr to merge several nodes into one fleet view: rows
      gain a node column and a fleet-total summary line follows the
      per-node totals. Between polls the client computes sample/event
      deltas itself, so the rates shown are wire-derived, not
      server-trusted. --once prints a single frame and exits
      (scripting/smoke tests).

  emprof dump-flight [--addr HOST:PORT] [--session ID] [--out DIR]
                     [--timeout SECS] [--retries N]
      Fetch per-session flight-recorder rings from a running service as
      self-contained JSON documents (--session 0 or omitted = every
      registered session). With --out DIR each dump is written to
      DIR/flight-session-<id>.json; otherwise dumps go to stdout. The
      same dumps are written automatically next to the journals when a
      journaled session dies of a transport loss or session fault.

CALIBRATION (simulate / profile / push):
  --adaptive       run the detectors with the online probe-calibration
                   loop on: per-block SNR/dip-contrast tracking adapts the
                   detection threshold under probe drift and marks events
                   detected during degraded stretches with a confidence
                   bit. Off (the default) keeps the legacy fixed-threshold
                   path bit-identically. push forwards the choice to the
                   service in its HELLO config.
  --dual-probe     (simulate only) synthesize a second, memory-side probe
                   from the same workload and cross-validate every CPU
                   event against DRAM burst activity: LLC-miss stalls
                   without memory-probe corroboration are rejected as
                   single-probe artifacts.

FAULT INJECTION (simulate / serve / push):
  --fault-plan SPEC   deterministic signal-plane chaos: `none`, `chaos`,
                      or a spec like
                      `dropout=5e-4:8..64,corrupt=2e-3,gain=1e-4:0.5..1.5,
                      shift=5e-5:0.35:128..512` (rates per sample).
                      simulate/push corrupt the signal before analysis or
                      streaming; serve corrupts every ingested batch.
  --fault-seed N      injector seed (faults reproduce exactly per seed).

PARALLELISM (simulate / profile / stats / serve):
  --threads N      worker threads for the analysis pipeline (and the serve
                   ingest pool); the output is identical for every setting.
                   When the flag is absent the EMPROF_THREADS environment
                   variable is consulted, then the hardware's available
                   parallelism. --threads 1 forces the sequential path.

TELEMETRY (simulate / profile / stats / serve):
  --metrics FILE   write a metrics snapshot as JSON lines
  --trace FILE     write individual span occurrences as JSON lines
  --verbose-stats  append the human-readable telemetry table
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_devices_and_demo() {
        assert_eq!(parse(&argv("devices")).unwrap(), Command::Devices);
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_simulate_with_flags() {
        let cmd = parse(&argv(
            "simulate mcf --device alcatel --bandwidth 20e6 --scale 0.5 --seed 9 \
             --signal-out sig.csv --events-out ev.csv",
        ))
        .unwrap();
        match cmd {
            Command::Simulate(o) => {
                assert_eq!(o.workload, "mcf");
                assert_eq!(o.device, "alcatel");
                assert_eq!(o.bandwidth_hz, 20e6);
                assert_eq!(o.scale, 0.5);
                assert_eq!(o.seed, 9);
                assert_eq!(o.signal_out.as_deref(), Some("sig.csv"));
                assert_eq!(o.events_out.as_deref(), Some("ev.csv"));
            }
            other => panic!("expected simulate, got {other:?}"),
        }
    }

    #[test]
    fn simulate_defaults() {
        match parse(&argv("simulate boot")).unwrap() {
            Command::Simulate(o) => {
                assert_eq!(o.device, "olimex");
                assert_eq!(o.bandwidth_hz, 40e6);
                assert_eq!(o.threads, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_threads_flag() {
        match parse(&argv("simulate boot --threads 4")).unwrap() {
            Command::Simulate(o) => assert_eq!(o.threads, Some(4)),
            other => panic!("{other:?}"),
        }
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1e9 --threads 1")).unwrap() {
            Command::Profile(o) => assert_eq!(o.threads, Some(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("simulate boot --threads 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate boot --threads lots")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_profile() {
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1.008e9")).unwrap() {
            Command::Profile(o) => {
                assert_eq!(o.signal_path, "cap.csv");
                assert_eq!(o.sample_rate_hz, 40e6);
                assert_eq!(o.clock_hz, 1.008e9);
                assert!(o.events_out.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_calibration_flags() {
        match parse(&argv("simulate mcf --adaptive --dual-probe")).unwrap() {
            Command::Simulate(o) => {
                assert!(o.adaptive);
                assert!(o.dual_probe);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("simulate mcf")).unwrap() {
            Command::Simulate(o) => {
                assert!(!o.adaptive);
                assert!(!o.dual_probe);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1e9 --adaptive")).unwrap() {
            Command::Profile(o) => assert!(o.adaptive),
            other => panic!("{other:?}"),
        }
        match parse(&argv("push cap.csv --rate 40e6 --clock 1e9 --adaptive")).unwrap() {
            Command::Push(o) => assert!(o.adaptive),
            other => panic!("{other:?}"),
        }
        // --dual-probe is a simulate-only flag.
        assert!(matches!(
            parse(&argv("profile cap.csv --rate 1 --clock 1 --dual-probe")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("push cap.csv --rate 1 --clock 1 --dual-probe")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_telemetry_flags() {
        match parse(&argv(
            "simulate mcf --metrics m.jsonl --trace t.jsonl --verbose-stats",
        ))
        .unwrap()
        {
            Command::Simulate(o) => {
                assert_eq!(o.obs.metrics_out.as_deref(), Some("m.jsonl"));
                assert_eq!(o.obs.trace_out.as_deref(), Some("t.jsonl"));
                assert!(o.obs.verbose_stats);
                assert!(o.obs.active());
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("profile cap.csv --rate 40e6 --clock 1e9 --metrics m.jsonl"))
            .unwrap()
        {
            Command::Profile(o) => {
                assert_eq!(o.obs.metrics_out.as_deref(), Some("m.jsonl"));
                assert!(!o.obs.verbose_stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_implies_verbose_stats() {
        match parse(&argv("stats microbench:64:4 --seed 2")).unwrap() {
            Command::Stats(o) => {
                assert_eq!(o.workload, "microbench:64:4");
                assert!(o.obs.verbose_stats);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse(&argv("stats")), Err(CliError::Usage(_))));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("simulate")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("simulate a b")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate mcf --bandwidth nope")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate mcf --wat 3")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("profile cap.csv --rate 40e6")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("devices extra")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("profile --rate 1 --clock 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_serve() {
        assert_eq!(parse(&argv("serve")).unwrap(), Command::Serve(ServeOpts::default()));
        match parse(&argv(
            "serve --addr 0.0.0.0:9000 --threads 3 --queue-frames 16 --shed \
             --idle-timeout 5 --max-sessions 8 --duration 2 --verbose-stats",
        ))
        .unwrap()
        {
            Command::Serve(o) => {
                assert_eq!(o.addr, "0.0.0.0:9000");
                assert_eq!(o.threads, Some(3));
                assert_eq!(o.queue_frames, 16);
                assert!(o.shed);
                assert_eq!(o.idle_timeout_secs, 5);
                assert_eq!(o.max_sessions, 8);
                assert_eq!(o.duration_secs, Some(2));
                assert!(o.obs.verbose_stats);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve --queue-frames 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("serve extra")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_push() {
        match parse(&argv(
            "push cap.csv --rate 40e6 --clock 1e9 --addr 10.0.0.2:7700 \
             --frame 4096 --device olimex --events-out ev.csv",
        ))
        .unwrap()
        {
            Command::Push(o) => {
                assert_eq!(o.signal_path, "cap.csv");
                assert_eq!(o.addr, "10.0.0.2:7700");
                assert_eq!(o.sample_rate_hz, 40e6);
                assert_eq!(o.clock_hz, 1e9);
                assert_eq!(o.frame, 4096);
                assert_eq!(o.device, "olimex");
                assert_eq!(o.events_out.as_deref(), Some("ev.csv"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("push cap.csv --rate 40e6")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("push --rate 1 --clock 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("push cap.csv --rate 1 --clock 1 --frame 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_watch() {
        match parse(&argv("watch --addr 10.0.0.2:7700 --interval-ms 50 --polls 3")).unwrap()
        {
            Command::Watch(o) => {
                assert_eq!(o.addr, "10.0.0.2:7700");
                assert_eq!(o.interval_ms, 50);
                assert_eq!(o.polls, Some(3));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("watch")).unwrap() {
            Command::Watch(o) => {
                assert_eq!(o.addr, "127.0.0.1:7700");
                assert_eq!(o.interval_ms, 500);
                assert_eq!(o.polls, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("watch --wat")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_top() {
        assert_eq!(parse(&argv("top")).unwrap(), Command::Top(TopOpts::default()));
        match parse(&argv(
            "top --addr 10.0.0.2:7700 --interval-ms 250 --once --polls 3 \
             --timeout 5 --retries 1",
        ))
        .unwrap()
        {
            Command::Top(o) => {
                assert_eq!(o.addrs, vec!["10.0.0.2:7700".to_string()]);
                assert_eq!(o.interval_ms, 250);
                assert!(o.once);
                assert_eq!(o.polls, Some(3));
                assert_eq!(o.timeout_secs, 5);
                assert_eq!(o.retries, 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse(&argv("top --wat")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("top --timeout 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_top_fleet_addrs() {
        // Repeated --addr builds the merged fleet view in order.
        match parse(&argv("top --addr 10.0.0.2:7700 --addr 10.0.0.3:7700 --once")).unwrap() {
            Command::Top(o) => {
                assert_eq!(
                    o.addrs,
                    vec!["10.0.0.2:7700".to_string(), "10.0.0.3:7700".to_string()]
                );
                assert!(o.once);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_router() {
        match parse(&argv(
            "router --addr 0.0.0.0:7800 \
             --backends a=10.0.0.2:7700=/data/a,b=10.0.0.3:7700 \
             --replicas 128 --probe-ms 250 --down-after 3 --idle-timeout 30 \
             --duration 5 --metrics-addr 127.0.0.1:9101",
        ))
        .unwrap()
        {
            Command::Router(o) => {
                assert_eq!(o.addr, "0.0.0.0:7800");
                assert_eq!(o.backends.len(), 2);
                assert_eq!(o.backends[0].name, "a");
                assert_eq!(o.backends[0].addr, "10.0.0.2:7700");
                assert_eq!(o.backends[0].journal_dir.as_deref(), Some("/data/a"));
                assert_eq!(o.backends[1].name, "b");
                assert_eq!(o.backends[1].journal_dir, None);
                assert_eq!(o.replicas, 128);
                assert_eq!(o.probe_ms, 250);
                assert_eq!(o.down_after, 3);
                assert_eq!(o.idle_timeout_secs, 30);
                assert_eq!(o.duration_secs, Some(5));
                assert_eq!(o.metrics_addr.as_deref(), Some("127.0.0.1:9101"));
            }
            other => panic!("{other:?}"),
        }
        // Bare addresses are auto-named by position.
        match parse(&argv("router --backends 10.0.0.2:7700,10.0.0.3:7700")).unwrap() {
            Command::Router(o) => {
                assert_eq!(o.backends[0].name, "b0");
                assert_eq!(o.backends[1].name, "b1");
                assert_eq!(o.addr, "127.0.0.1:7800");
            }
            other => panic!("{other:?}"),
        }
        // A backend list is mandatory; malformed entries are rejected.
        assert!(matches!(parse(&argv("router")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("router --backends =1.2.3.4:5")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("router --backends a=1:1 --replicas 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("router --backends a=1:1 --wat")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_flight_dir() {
        match parse(&argv("serve --flight-dir /tmp/flights")).unwrap() {
            Command::Serve(o) => {
                assert_eq!(o.flight_dir.as_deref(), Some("/tmp/flights"));
                assert_eq!(o.journal_dir, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve --flight-dir")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_dump_flight() {
        assert_eq!(
            parse(&argv("dump-flight")).unwrap(),
            Command::DumpFlight(DumpFlightOpts::default())
        );
        match parse(&argv(
            "dump-flight --addr 10.0.0.2:7700 --session 3 --out /tmp/dumps --timeout 5",
        ))
        .unwrap()
        {
            Command::DumpFlight(o) => {
                assert_eq!(o.addr, "10.0.0.2:7700");
                assert_eq!(o.session, 3);
                assert_eq!(o.out_dir.as_deref(), Some("/tmp/dumps"));
                assert_eq!(o.timeout_secs, 5);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("dump-flight --session banana")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("dump-flight extra")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_metrics_addr() {
        match parse(&argv("serve --metrics-addr 127.0.0.1:9100")).unwrap() {
            Command::Serve(o) => {
                assert_eq!(o.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve(ServeOpts::default())
        );
        assert!(matches!(
            parse(&argv("serve --metrics-addr")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_documents_serving_and_threads_env() {
        assert!(USAGE.contains("emprof serve"));
        assert!(USAGE.contains("emprof router"));
        assert!(USAGE.contains("--backends"));
        assert!(USAGE.contains("--flight-dir"));
        assert!(USAGE.contains("emprof push"));
        assert!(USAGE.contains("emprof watch"));
        assert!(USAGE.contains("emprof top"));
        assert!(USAGE.contains("emprof dump-flight"));
        assert!(USAGE.contains("--metrics-addr"));
        assert!(USAGE.contains("GET /metrics"));
        assert!(USAGE.contains("EMPROF_THREADS"));
        assert!(USAGE.contains("--fault-plan"));
        assert!(USAGE.contains("--heartbeat"));
        assert!(USAGE.contains("--retries"));
        assert!(USAGE.contains("emprof record"));
        assert!(USAGE.contains("emprof replay"));
        assert!(USAGE.contains("emprof journal-inspect"));
        assert!(USAGE.contains("emprof query"));
        assert!(USAGE.contains("--journal DIR"));
        assert!(USAGE.contains("exactly-once"));
    }

    #[test]
    fn parses_query_flags() {
        match parse(&argv(
            "query --journal /tmp/j --t0 100 --t1 900 --session 1 --session 7 \
             --bucket 50 --json",
        ))
        .unwrap()
        {
            Command::Query(o) => {
                assert_eq!(o.journal_dir.as_deref(), Some("/tmp/j"));
                assert_eq!(o.addr, None);
                assert_eq!(o.t0, 100);
                assert_eq!(o.t1, 900);
                assert_eq!(o.sessions, vec![1, 7]);
                assert_eq!(o.bucket_samples, 50);
                assert!(o.json);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("query --addr 127.0.0.1:7070 --timeout 5 --retries 2")).unwrap() {
            Command::Query(o) => {
                assert_eq!(o.addr.as_deref(), Some("127.0.0.1:7070"));
                assert_eq!(o.journal_dir, None);
                assert_eq!(o.t0, 0);
                assert_eq!(o.t1, u64::MAX);
                assert!(o.sessions.is_empty());
                assert_eq!(o.timeout_secs, 5);
                assert_eq!(o.retries, 2);
                assert!(!o.json);
            }
            other => panic!("{other:?}"),
        }
        // Exactly one of --journal / --addr.
        assert!(matches!(parse(&argv("query")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("query --journal /tmp/j --addr 127.0.0.1:7070")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("query --journal /tmp/j --timeout 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("query --journal /tmp/j --bogus")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_journal_flags() {
        match parse(&argv("serve --journal /tmp/j")).unwrap() {
            Command::Serve(o) => assert_eq!(o.journal_dir.as_deref(), Some("/tmp/j")),
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "record cap.csv --journal /tmp/j --rate 40e6 --clock 1e9 \
             --device olimex --frame 4096",
        ))
        .unwrap()
        {
            Command::Record(o) => {
                assert_eq!(o.signal_path, "cap.csv");
                assert_eq!(o.journal_dir, "/tmp/j");
                assert_eq!(o.sample_rate_hz, 40e6);
                assert_eq!(o.clock_hz, 1e9);
                assert_eq!(o.device, "olimex");
                assert_eq!(o.frame, 4096);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("replay --journal /tmp/j --events-out ev.csv")).unwrap() {
            Command::Replay(o) => {
                assert_eq!(o.journal_dir, "/tmp/j");
                assert_eq!(o.events_out.as_deref(), Some("ev.csv"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("journal-inspect /tmp/j")).unwrap() {
            Command::JournalInspect(o) => assert_eq!(o.journal_dir, "/tmp/j"),
            other => panic!("{other:?}"),
        }
        // Required flags and positionals are enforced.
        assert!(matches!(
            parse(&argv("record cap.csv --rate 1 --clock 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("record --journal /tmp/j --rate 1 --clock 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("record cap.csv --journal /tmp/j --rate 1 --clock 1 --frame 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("replay")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("journal-inspect")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("journal-inspect a b")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_fault_flags() {
        match parse(&argv("simulate mcf --fault-plan chaos --fault-seed 7")).unwrap() {
            Command::Simulate(o) => {
                assert_eq!(o.fault_plan.as_deref(), Some("chaos"));
                assert_eq!(o.fault_seed, 7);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "serve --heartbeat 2 --fault-plan dropout=1e-3:4..16 --fault-seed 3",
        ))
        .unwrap()
        {
            Command::Serve(o) => {
                assert_eq!(o.heartbeat_secs, Some(2));
                assert_eq!(o.fault_plan.as_deref(), Some("dropout=1e-3:4..16"));
                assert_eq!(o.fault_seed, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve --heartbeat 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_resilience_flags() {
        match parse(&argv(
            "push cap.csv --rate 40e6 --clock 1e9 --timeout 5 --retries 2 \
             --fault-plan chaos --fault-seed 9",
        ))
        .unwrap()
        {
            Command::Push(o) => {
                assert_eq!(o.timeout_secs, 5);
                assert_eq!(o.retries, 2);
                assert_eq!(o.fault_plan.as_deref(), Some("chaos"));
                assert_eq!(o.fault_seed, 9);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("push cap.csv --rate 1 --clock 1")).unwrap() {
            Command::Push(o) => {
                assert_eq!(o.timeout_secs, 60);
                assert_eq!(o.retries, 5);
                assert!(o.fault_plan.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("watch --timeout 3 --retries 0")).unwrap() {
            Command::Watch(o) => {
                assert_eq!(o.timeout_secs, 3);
                assert_eq!(o.retries, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("watch --timeout 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("push cap.csv --rate 1 --clock 1 --timeout 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = CliError::Usage("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
